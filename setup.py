"""Thin setup.py shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in editable mode on offline machines whose
toolchain predates PEP 660 (``python setup.py develop``).
"""
from setuptools import setup

setup()
