"""Ports and arcs of the data path (Definition 2.1).

A *port* is the basic abstraction of the input/output behaviour of a data
manipulation unit; it separates the specification of a vertex's operation
from its implementation.  Ports are identified globally by a
:class:`PortId` — the owning vertex's name plus the port's local name —
which guarantees the paper's requirement ``I ∩ O = ∅`` as long as each
port name is unique within its vertex and its direction is fixed.

An *arc* ``(O, I) ∈ A ⊆ O × I`` connects an output port to an input port.
Arcs carry their own names because the control mapping
``C : S → 2^A`` (Definition 2.2) needs to reference individual arcs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """Port direction; fixed at creation."""

    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class PortId:
    """Globally unique port reference: ``vertex.port``."""

    vertex: str
    port: str

    def __str__(self) -> str:
        return f"{self.vertex}.{self.port}"

    @staticmethod
    def parse(text: str) -> "PortId":
        """Inverse of ``str``: ``"v.p"`` → ``PortId("v", "p")``."""
        vertex, _, port = text.partition(".")
        if not vertex or not port:
            raise ValueError(f"malformed port reference {text!r}")
        return PortId(vertex, port)


@dataclass(frozen=True)
class Arc:
    """A connection from an output port to an input port.

    Attributes
    ----------
    name:
        Unique arc identifier within the data path (referenced by the
        control mapping ``C``).
    source:
        The output port the arc reads from.
    target:
        The input port the arc drives.
    """

    name: str
    source: PortId
    target: PortId

    def __str__(self) -> str:
        return f"{self.name}: {self.source} -> {self.target}"
