"""The data path ``D = (V, I, O, A, B)`` — Definition 2.1.

A directed port graph over the algebraic structure defined in
:mod:`repro.datapath.operations`.  The class stores vertices by name and
arcs by name (arcs need identities because the control mapping ``C`` of
Definition 2.2 maps control states to *sets of arcs*).

Structure-only: how the data path computes is defined by the simulator in
:mod:`repro.semantics.simulator`, mirroring the paper's separation between
the structural definition (Section 2) and the behaviour (Definition 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import DefinitionError
from .operations import OpKind, Operation
from .ports import Arc, PortId
from .vertex import Vertex


@dataclass
class DataPath:
    """A mutable data-path graph with named vertices and arcs."""

    name: str = "datapath"
    vertices: dict[str, Vertex] = field(default_factory=dict)
    arcs: dict[str, Arc] = field(default_factory=dict)
    # index: input PortId -> set of arc names driving it
    _into: dict[PortId, set[str]] = field(default_factory=dict)
    # index: output PortId -> set of arc names reading it
    _from: dict[PortId, set[str]] = field(default_factory=dict)
    _arc_counter: itertools.count = field(default_factory=itertools.count)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.name in self.vertices:
            raise DefinitionError(f"duplicate vertex name {vertex.name!r}")
        self.vertices[vertex.name] = vertex
        return vertex

    def connect(self, source: PortId | str, target: PortId | str,
                name: str | None = None) -> Arc:
        """Add an arc ``(O, I)`` from an output port to an input port.

        ``source``/``target`` accept either :class:`PortId` or the string
        form ``"vertex.port"``.  Returns the created arc; a fresh unique
        name (``a0``, ``a1``, …) is generated when none is given.
        """
        src = PortId.parse(source) if isinstance(source, str) else source
        dst = PortId.parse(target) if isinstance(target, str) else target
        self._check_port(src, OpKind.COM, expect_output=True)
        self._check_port(dst, OpKind.COM, expect_output=False)
        if name is None:
            name = f"a{next(self._arc_counter)}"
            while name in self.arcs:
                name = f"a{next(self._arc_counter)}"
        elif name in self.arcs:
            raise DefinitionError(f"duplicate arc name {name!r}")
        arc = Arc(name, src, dst)
        self.arcs[name] = arc
        self._into.setdefault(dst, set()).add(name)
        self._from.setdefault(src, set()).add(name)
        return arc

    def remove_arc(self, name: str) -> None:
        arc = self.arcs.pop(name, None)
        if arc is None:
            raise DefinitionError(f"unknown arc {name!r}")
        self._into[arc.target].discard(name)
        self._from[arc.source].discard(name)

    def remove_vertex(self, name: str) -> None:
        """Remove a vertex; all arcs touching it must be removed first."""
        if name not in self.vertices:
            raise DefinitionError(f"unknown vertex {name!r}")
        touching = [a.name for a in self.arcs.values()
                    if a.source.vertex == name or a.target.vertex == name]
        if touching:
            raise DefinitionError(
                f"vertex {name!r} still has arcs {sorted(touching)}"
            )
        del self.vertices[name]

    def _check_port(self, port: PortId, _kind, *, expect_output: bool) -> None:
        vertex = self.vertices.get(port.vertex)
        if vertex is None:
            raise DefinitionError(f"unknown vertex {port.vertex!r}")
        if expect_output:
            if port.port not in vertex.out_ports:
                raise DefinitionError(
                    f"{port} is not an output port (arcs run O → I)"
                )
            if vertex.operation(port.port).kind is OpKind.OUTPUT:
                raise DefinitionError(
                    f"{port} is an environment sink and cannot drive arcs"
                )
        else:
            if port.port not in vertex.in_ports:
                raise DefinitionError(
                    f"{port} is not an input port (arcs run O → I)"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def vertex(self, name: str) -> Vertex:
        try:
            return self.vertices[name]
        except KeyError:
            raise DefinitionError(f"unknown vertex {name!r}") from None

    def arc(self, name: str) -> Arc:
        try:
            return self.arcs[name]
        except KeyError:
            raise DefinitionError(f"unknown arc {name!r}") from None

    def arcs_into(self, port: PortId) -> list[Arc]:
        """All arcs driving an input port ("pending arcs", Def. 3.1(10))."""
        return [self.arcs[n] for n in sorted(self._into.get(port, ()))]

    def arcs_from(self, port: PortId) -> list[Arc]:
        """All arcs reading an output port (fan-out is unrestricted)."""
        return [self.arcs[n] for n in sorted(self._from.get(port, ()))]

    def vertex_in_arcs(self, vertex: str) -> list[Arc]:
        v = self.vertex(vertex)
        return [a for p in v.input_ids() for a in self.arcs_into(p)]

    def vertex_out_arcs(self, vertex: str) -> list[Arc]:
        v = self.vertex(vertex)
        return [a for p in v.output_ids() for a in self.arcs_from(p)]

    def operation_of(self, port: PortId) -> Operation:
        """``B(O)`` — the operation on an output port."""
        return self.vertex(port.vertex).operation(port.port)

    # -- external structure (Definition 3.3) ----------------------------
    def input_vertices(self) -> list[Vertex]:
        """``V_i`` — external vertices supplying values from outside."""
        return [v for v in self.vertices.values() if v.is_input_vertex]

    def output_vertices(self) -> list[Vertex]:
        """``V_o`` — external vertices consuming values to outside."""
        return [v for v in self.vertices.values() if v.is_output_vertex]

    def external_vertices(self) -> list[Vertex]:
        """``V_e = V_i ∪ V_o``."""
        return [v for v in self.vertices.values() if v.is_external]

    def external_arcs(self) -> list[Arc]:
        """``A_e`` — arcs touching an external port (Definition 3.3)."""
        external = {v.name for v in self.external_vertices()}
        return [a for a in self.arcs.values()
                if a.source.vertex in external or a.target.vertex in external]

    def is_external_arc(self, name: str) -> bool:
        arc = self.arc(name)
        return (self.vertex(arc.source.vertex).is_external
                or self.vertex(arc.target.vertex).is_external)

    # ------------------------------------------------------------------
    # statistics / copying
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_arcs(self) -> int:
        return len(self.arcs)

    def sequential_vertices(self) -> list[Vertex]:
        return [v for v in self.vertices.values() if v.is_sequential]

    def combinational_vertices(self) -> list[Vertex]:
        return [v for v in self.vertices.values() if v.is_combinational]

    def copy(self) -> "DataPath":
        clone = DataPath(name=self.name)
        clone.vertices = dict(self.vertices)  # Vertex is frozen → safe to share
        clone.arcs = dict(self.arcs)          # Arc is frozen → safe to share
        clone._into = {k: set(v) for k, v in self._into.items()}
        clone._from = {k: set(v) for k, v in self._from.items()}
        clone._arc_counter = itertools.count(
            max((int(n[1:]) for n in self.arcs if n.startswith("a") and n[1:].isdigit()),
                default=-1) + 1
        )
        return clone

    def structure_equal(self, other: "DataPath") -> bool:
        """Equality of V, ports, B (by operation name) and A (by name)."""
        if set(self.vertices) != set(other.vertices):
            return False
        for name, mine in self.vertices.items():
            if mine.signature() != other.vertices[name].signature():
                return False
        if set(self.arcs) != set(other.arcs):
            return False
        return all(self.arcs[n] == other.arcs[n] for n in self.arcs)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DataPath({self.name!r}: |V|={self.num_vertices}, "
                f"|A|={self.num_arcs})")
