"""The operation set ``OP`` and its SEQ/COM partition (Definition 2.1).

Every output port of a data-path vertex is mapped (by ``B``) to an
operation that defines the functional relation between that output port
and the vertex's input ports.  Operations are partitioned into

* ``COM`` — combinational: the output takes the *present* value of the
  expression over the inputs (strict in :data:`~repro.semantics.values.UNDEF`);
* ``SEQ`` — sequential: the output takes the *last defined* value of the
  expression (Definition 3.1(9)) — i.e. the vertex holds state.

Two pseudo-kinds mark the boundary with the environment (Definition 3.3):
``INPUT`` for input vertices (single output port whose value is supplied
by the environment) and ``OUTPUT`` for output vertices (single input port
that consumes values).  They are not members of the paper's ``OP`` set but
make the external-vertex structure explicit and checkable.

Each operation carries an area and delay figure used by the synthesis
cost model; the numbers are relative units in the style of 1980s HLS
literature (an adder = 1.0 area, 1.0 delay), not silicon measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..errors import DefinitionError
from ..values import UNDEF, Value, as_word, strict


class OpKind(enum.Enum):
    """Partition of the operation set (Definition 2.1 + external roles)."""

    COM = "combinational"
    SEQ = "sequential"
    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Operation:
    """One member of ``OP``: a named functional relation output ← inputs.

    Attributes
    ----------
    name:
        Operation identifier (``"add"``, ``"reg"``, …).  Two vertices have
        "the same operational definition" (Definition 4.6) iff their output
        ports map to operations with equal names.
    kind:
        SEQ / COM / INPUT / OUTPUT.
    arity:
        Number of input values consumed; ``-1`` means variadic.
    func:
        The value function.  ``None`` for INPUT/OUTPUT pseudo-operations
        and for plain registers, whose behaviour (latch the input) is
        implemented by the simulator.
    area / delay:
        Relative cost figures for the synthesis cost model.
    """

    name: str
    kind: OpKind
    arity: int
    func: Callable[..., Value] | None = None
    area: float = 1.0
    delay: float = 1.0

    @property
    def is_sequential(self) -> bool:
        return self.kind is OpKind.SEQ

    @property
    def is_combinational(self) -> bool:
        return self.kind is OpKind.COM

    def evaluate(self, *args: Value) -> Value:
        """Apply the value function (strict in UNDEF).

        Combinational operations take ``arity`` arguments.  Sequential
        operations with a next-state function (e.g. the accumulator) take
        the *current state* first, then their ``arity`` port inputs.
        """
        if self.func is None:
            raise DefinitionError(
                f"operation {self.name!r} has no value function"
            )
        expected = self.arity + (1 if self.kind is OpKind.SEQ else 0)
        if self.arity >= 0 and len(args) != expected:
            raise DefinitionError(
                f"operation {self.name!r} expects {expected} argument(s), "
                f"got {len(args)}"
            )
        return as_word(self.func(*args))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}/{self.kind.value}"


def _safe_div(a: int, b: int) -> Value:
    return UNDEF if b == 0 else int(a / b) if (a < 0) != (b < 0) and a % b else a // b


def _safe_mod(a: int, b: int) -> Value:
    return UNDEF if b == 0 else a - b * (int(a / b) if (a < 0) != (b < 0) and a % b else a // b)


def _mux(sel: int, a: int, b: int) -> int:
    """2-way multiplexer: select ``a`` when ``sel`` is non-zero, else ``b``."""
    return a if sel else b


# ---------------------------------------------------------------------------
# The standard operation library.  Delay/area figures follow the usual HLS
# convention: ripple add = 1 unit; multiply ≈ 4–8 units of both.
# ---------------------------------------------------------------------------
_STANDARD: dict[str, Operation] = {}


def _register_op(op: Operation) -> Operation:
    if op.name in _STANDARD:
        raise DefinitionError(f"duplicate standard operation {op.name!r}")
    _STANDARD[op.name] = op
    return op


ADD = _register_op(Operation("add", OpKind.COM, 2, strict(lambda a, b: a + b), 1.0, 1.0))
SUB = _register_op(Operation("sub", OpKind.COM, 2, strict(lambda a, b: a - b), 1.0, 1.0))
MUL = _register_op(Operation("mul", OpKind.COM, 2, strict(lambda a, b: a * b), 8.0, 4.0))
DIV = _register_op(Operation("div", OpKind.COM, 2, strict(_safe_div), 12.0, 8.0))
MOD = _register_op(Operation("mod", OpKind.COM, 2, strict(_safe_mod), 12.0, 8.0))
NEG = _register_op(Operation("neg", OpKind.COM, 1, strict(lambda a: -a), 0.6, 0.5))
ABS = _register_op(Operation("abs", OpKind.COM, 1, strict(abs), 0.6, 0.5))
MIN = _register_op(Operation("min", OpKind.COM, 2, strict(min), 1.2, 1.2))
MAX = _register_op(Operation("max", OpKind.COM, 2, strict(max), 1.2, 1.2))
SHL = _register_op(Operation("shl", OpKind.COM, 2, strict(lambda a, b: a << b if b >= 0 else UNDEF), 0.8, 0.5))
SHR = _register_op(Operation("shr", OpKind.COM, 2, strict(lambda a, b: a >> b if b >= 0 else UNDEF), 0.8, 0.5))

EQ = _register_op(Operation("eq", OpKind.COM, 2, strict(lambda a, b: int(a == b)), 0.8, 0.6))
NE = _register_op(Operation("ne", OpKind.COM, 2, strict(lambda a, b: int(a != b)), 0.8, 0.6))
LT = _register_op(Operation("lt", OpKind.COM, 2, strict(lambda a, b: int(a < b)), 0.9, 0.8))
LE = _register_op(Operation("le", OpKind.COM, 2, strict(lambda a, b: int(a <= b)), 0.9, 0.8))
GT = _register_op(Operation("gt", OpKind.COM, 2, strict(lambda a, b: int(a > b)), 0.9, 0.8))
GE = _register_op(Operation("ge", OpKind.COM, 2, strict(lambda a, b: int(a >= b)), 0.9, 0.8))

AND = _register_op(Operation("and", OpKind.COM, 2, strict(lambda a, b: int(bool(a) and bool(b))), 0.3, 0.2))
OR = _register_op(Operation("or", OpKind.COM, 2, strict(lambda a, b: int(bool(a) or bool(b))), 0.3, 0.2))
NOT = _register_op(Operation("not", OpKind.COM, 1, strict(lambda a: int(not a)), 0.2, 0.1))
XOR = _register_op(Operation("xor", OpKind.COM, 2, strict(lambda a, b: int(bool(a) != bool(b))), 0.3, 0.2))

BAND = _register_op(Operation("band", OpKind.COM, 2, strict(lambda a, b: a & b), 0.4, 0.2))
BOR = _register_op(Operation("bor", OpKind.COM, 2, strict(lambda a, b: a | b), 0.4, 0.2))
BXOR = _register_op(Operation("bxor", OpKind.COM, 2, strict(lambda a, b: a ^ b), 0.4, 0.2))

IDENTITY = _register_op(Operation("id", OpKind.COM, 1, strict(lambda a: a), 0.1, 0.05))
MUX = _register_op(Operation("mux", OpKind.COM, 3, strict(_mux), 0.5, 0.3))

#: Plain register: sequential, arity 1; the simulator implements the latch.
REG = _register_op(Operation("reg", OpKind.SEQ, 1, None, 2.0, 0.4))

#: Accumulating register (`acc += in`), an example of a SEQ operation whose
#: next state is a function of input and current state.
ACC = _register_op(
    Operation("acc", OpKind.SEQ, 1, strict(lambda current, incoming: current + incoming), 3.0, 1.2)
)

#: Environment boundary pseudo-operations (Definition 3.3).
EXTERNAL_INPUT = _register_op(Operation("ext_in", OpKind.INPUT, 0, None, 0.5, 0.1))
EXTERNAL_OUTPUT = _register_op(Operation("ext_out", OpKind.OUTPUT, 1, None, 0.5, 0.1))


def constant_op(value: int) -> Operation:
    """A zero-input combinational operation producing ``value``.

    Constants are vertices in the data path (wired-constant units); each
    distinct value gets its own operation name so that Definition 4.6's
    "same operational definition" test treats different constants as
    different operations.
    """
    word = as_word(value)
    return Operation(f"const[{word}]", OpKind.COM, 0, lambda: word, 0.1, 0.0)


def get_operation(name: str) -> Operation:
    """Look up a standard operation by name.

    Constant operations (``const[k]``) are synthesised on the fly so that
    serialisation can round-trip them.
    """
    if name in _STANDARD:
        return _STANDARD[name]
    if name.startswith("const[") and name.endswith("]"):
        return constant_op(int(name[len("const["):-1]))
    raise DefinitionError(f"unknown operation {name!r}")


def standard_operations() -> dict[str, Operation]:
    """A copy of the standard operation registry (name → Operation)."""
    return dict(_STANDARD)


#: Binary operator symbol → operation name, used by the frontend.
BINARY_SYMBOLS: dict[str, str] = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "&&": "and", "||": "or", "&": "band", "|": "bor", "^": "bxor",
    "<<": "shl", ">>": "shr",
}

#: Unary operator symbol → operation name, used by the frontend.
UNARY_SYMBOLS: dict[str, str] = {"-": "neg", "!": "not"}
