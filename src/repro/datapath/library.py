"""Module library: ready-made vertex constructors with cost models.

The paper assumes "some modules exist in a module library which can
perform the defined operations of the data path" (Section 2).  This module
is that library: each helper builds a :class:`~repro.datapath.vertex.Vertex`
with the conventional port naming used throughout the synthesis pipeline

* binary operators: inputs ``l``, ``r``; output ``o``;
* unary operators: input ``i``; output ``o``;
* registers: input ``d``; output ``q``;
* multiplexers: inputs ``sel``, ``a``, ``b``; output ``o``;
* environment pads: input vertices expose output ``out``; output vertices
  expose input ``in`` (plus the sink record port ``snk``).

Area and delay figures are taken from the operation table
(:mod:`repro.datapath.operations`).
"""

from __future__ import annotations

from ..errors import DefinitionError
from ..values import Value
from .operations import EXTERNAL_INPUT, EXTERNAL_OUTPUT, REG, ACC, OpKind, constant_op, get_operation
from .vertex import Vertex

#: Port names for binary combinational units.
BINARY_PORTS = ("l", "r")


def operator(name: str, op_name: str) -> Vertex:
    """A combinational operator vertex for any standard operation.

    Binary operations get ports ``l``/``r``; unary get ``i``; 3-input
    (``mux``) get ``sel``/``a``/``b``.  Output port is always ``o``.
    """
    op = get_operation(op_name)
    if op.kind is not OpKind.COM:
        raise DefinitionError(f"operation {op_name!r} is not combinational")
    if op.arity == 2:
        ins: tuple[str, ...] = BINARY_PORTS
    elif op.arity == 1:
        ins = ("i",)
    elif op.arity == 3:
        ins = ("sel", "a", "b")
    elif op.arity == 0:
        ins = ()
    else:  # pragma: no cover - no standard op has other arities
        raise DefinitionError(f"unsupported arity {op.arity} for {op_name!r}")
    return Vertex(name, ins, ("o",), {"o": op})


def adder(name: str) -> Vertex:
    return operator(name, "add")


def subtractor(name: str) -> Vertex:
    return operator(name, "sub")


def multiplier(name: str) -> Vertex:
    return operator(name, "mul")


def divider(name: str) -> Vertex:
    return operator(name, "div")


def comparator(name: str, relation: str = "lt") -> Vertex:
    if relation not in {"eq", "ne", "lt", "le", "gt", "ge"}:
        raise DefinitionError(f"unknown comparison relation {relation!r}")
    return operator(name, relation)


def mux(name: str) -> Vertex:
    return operator(name, "mux")


def inverter(name: str) -> Vertex:
    return operator(name, "not")


def register(name: str, init: Value | None = None) -> Vertex:
    """A plain register: latches ``d`` into ``q`` when its arc closes."""
    initial = {} if init is None else {"q": init}
    return Vertex(name, ("d",), ("q",), {"q": REG}, initial)


def accumulator(name: str, init: Value = 0) -> Vertex:
    """An accumulating register: ``q ← q + d`` on each activation."""
    return Vertex(name, ("d",), ("q",), {"q": ACC}, {"q": init})


def constant(name: str, value: int) -> Vertex:
    """A wired constant: zero-input combinational vertex."""
    return Vertex(name, (), ("o",), {"o": constant_op(value)})


def input_pad(name: str) -> Vertex:
    """An input vertex (Definition 3.3): one output port ``out`` fed by
    the environment."""
    return Vertex(name, (), ("out",), {"out": EXTERNAL_INPUT})


def output_pad(name: str) -> Vertex:
    """An output vertex (Definition 3.3): one input port ``in``.

    The record port ``snk`` carries the ``ext_out`` pseudo-operation so
    that the pad's consumed-value history is observable to the simulator;
    it can never drive an arc (the data path refuses arcs from OUTPUT-kind
    ports).
    """
    return Vertex(name, ("in",), ("snk",), {"snk": EXTERNAL_OUTPUT})


#: name → constructor, for serialisation and the frontend.
CONSTRUCTORS = {
    "adder": adder,
    "subtractor": subtractor,
    "multiplier": multiplier,
    "divider": divider,
    "mux": mux,
    "inverter": inverter,
    "register": register,
    "accumulator": accumulator,
    "input_pad": input_pad,
    "output_pad": output_pad,
}


def vertex_area(vertex: Vertex) -> float:
    """Area of one vertex: the sum of its output operations' areas."""
    return sum(op.area for op in vertex.ops.values())


def vertex_delay(vertex: Vertex) -> float:
    """Worst-case propagation delay through one vertex."""
    return max((op.delay for op in vertex.ops.values()), default=0.0)
