"""Data-path vertices: data manipulation nodes (Definition 2.1).

A vertex models a hardware unit — a register, an arithmetic operator, a
multiplexer, a communication pad.  It owns a tuple of input ports and a
tuple of output ports, and the mapping ``B`` assigns an
:class:`~repro.datapath.operations.Operation` to every *output* port
(input ports carry no operation; they merely receive values over arcs).

External vertices (Definition 3.3) are modelled explicitly:

* an **input vertex** has no input ports and a single output port whose
  operation kind is ``INPUT`` — its value stream comes from the
  environment;
* an **output vertex** has a single input port, no meaningful output, and
  operation kind ``OUTPUT`` on a phantom port record — we give it a single
  port mapped to ``ext_out`` so the port-structure equality test of
  Definition 4.6 stays uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import DefinitionError
from ..values import UNDEF, Value
from .operations import OpKind, Operation
from .ports import PortId


@dataclass(frozen=True)
class Vertex:
    """One data manipulation node.

    Attributes
    ----------
    name:
        Unique identifier within the data path.
    in_ports / out_ports:
        Local port names, ordered.  Order matters: it defines the argument
        order of the operations on the output ports.
    ops:
        ``B`` restricted to this vertex — mapping from *output port name*
        to :class:`Operation`.  Every output port must be mapped.
    init:
        Initial values for sequential output ports (reset state).  Ports
        not listed start :data:`~repro.semantics.values.UNDEF`.
    """

    name: str
    in_ports: tuple[str, ...]
    out_ports: tuple[str, ...]
    ops: Mapping[str, Operation]
    init: Mapping[str, Value] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.in_ports)) != len(self.in_ports):
            raise DefinitionError(f"vertex {self.name!r} has duplicate input ports")
        if len(set(self.out_ports)) != len(self.out_ports):
            raise DefinitionError(f"vertex {self.name!r} has duplicate output ports")
        overlap = set(self.in_ports) & set(self.out_ports)
        if overlap:
            raise DefinitionError(
                f"vertex {self.name!r}: ports {sorted(overlap)} are both input "
                "and output (I ∩ O must be empty)"
            )
        for port in self.out_ports:
            if port not in self.ops:
                raise DefinitionError(
                    f"vertex {self.name!r}: output port {port!r} has no operation"
                )
        for port in self.ops:
            if port not in self.out_ports:
                raise DefinitionError(
                    f"vertex {self.name!r}: operation mapped to unknown output "
                    f"port {port!r}"
                )
        for port in self.init:
            if port not in self.out_ports:
                raise DefinitionError(
                    f"vertex {self.name!r}: initial value for unknown port {port!r}"
                )

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_sequential(self) -> bool:
        """True iff the vertex holds state between control steps.

        SEQ operations latch values; environment pads (INPUT/OUTPUT kinds)
        also hold their current/last value between activations, so for the
        purposes of Definition 3.2(5) ("every control state must drive at
        least one sequential vertex") they count as sequential.
        """
        return any(
            op.kind in (OpKind.SEQ, OpKind.INPUT, OpKind.OUTPUT)
            for op in self.ops.values()
        )

    @property
    def is_combinational(self) -> bool:
        """True iff all output operations are combinational (COM)."""
        return bool(self.ops) and all(
            op.kind is OpKind.COM for op in self.ops.values()
        )

    @property
    def is_input_vertex(self) -> bool:
        """Definition 3.3: a single output port fed by the environment."""
        return any(op.kind is OpKind.INPUT for op in self.ops.values())

    @property
    def is_output_vertex(self) -> bool:
        """Definition 3.3: a single input port consumed by the environment."""
        return any(op.kind is OpKind.OUTPUT for op in self.ops.values())

    @property
    def is_external(self) -> bool:
        return self.is_input_vertex or self.is_output_vertex

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port_id(self, port: str) -> PortId:
        if port not in self.in_ports and port not in self.out_ports:
            raise DefinitionError(f"vertex {self.name!r} has no port {port!r}")
        return PortId(self.name, port)

    def input_ids(self) -> list[PortId]:
        return [PortId(self.name, p) for p in self.in_ports]

    def output_ids(self) -> list[PortId]:
        return [PortId(self.name, p) for p in self.out_ports]

    def operation(self, port: str) -> Operation:
        try:
            return self.ops[port]
        except KeyError:
            raise DefinitionError(
                f"vertex {self.name!r} has no operation on port {port!r}"
            ) from None

    def initial_value(self, port: str) -> Value:
        return self.init.get(port, UNDEF)

    # ------------------------------------------------------------------
    # Definition 4.6 support
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Operational definition + port structure, for merger legality.

        Two vertices are mergeable (Definition 4.6) only if they "have the
        same operational definition and port structure": equal port name
        tuples and equal operation names per output port.  Initial values
        of sequential ports are included — merging registers with
        different reset states would not preserve semantics.
        """
        return (
            self.in_ports,
            self.out_ports,
            tuple((p, self.ops[p].name) for p in self.out_ports),
            tuple(sorted((p, self.init.get(p, UNDEF) is UNDEF,
                          self.init.get(p, None) if self.init.get(p, UNDEF) is not UNDEF else None)
                         for p in self.out_ports)),
        )

    def renamed(self, new_name: str) -> "Vertex":
        """A copy of this vertex under a different name."""
        return Vertex(new_name, self.in_ports, self.out_ports, dict(self.ops),
                      dict(self.init))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ops = ",".join(f"{p}:{op.name}" for p, op in self.ops.items())
        return f"Vertex({self.name}: in={list(self.in_ports)} out=[{ops}])"
