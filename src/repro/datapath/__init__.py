"""Data-path substrate: the data-flow half of the computation model.

Public surface:

* :class:`~repro.datapath.graph.DataPath` — the port graph
  ``D = (V, I, O, A, B)`` of Definition 2.1;
* :class:`~repro.datapath.vertex.Vertex`,
  :class:`~repro.datapath.ports.PortId`,
  :class:`~repro.datapath.ports.Arc` — its elements;
* :mod:`~repro.datapath.operations` — the operation algebra (SEQ/COM);
* :mod:`~repro.datapath.library` — ready-made module constructors with
  area/delay cost models;
* :mod:`~repro.datapath.validate` — structural validation and the
  combinational-loop detector used by the properly-designed check.
"""

from .graph import DataPath
from .library import (
    CONSTRUCTORS,
    accumulator,
    adder,
    comparator,
    constant,
    divider,
    input_pad,
    inverter,
    multiplier,
    mux,
    operator,
    output_pad,
    register,
    subtractor,
    vertex_area,
    vertex_delay,
)
from .operations import (
    BINARY_SYMBOLS,
    UNARY_SYMBOLS,
    OpKind,
    Operation,
    constant_op,
    get_operation,
    standard_operations,
)
from .ports import Arc, Direction, PortId
from .validate import (
    assert_valid,
    combinational_cycle,
    topological_com_order,
    datapath_diagnostics,
    validate_datapath,
)
from .vertex import Vertex

__all__ = [
    "DataPath",
    "Vertex",
    "PortId",
    "Arc",
    "Direction",
    "OpKind",
    "Operation",
    "get_operation",
    "constant_op",
    "standard_operations",
    "BINARY_SYMBOLS",
    "UNARY_SYMBOLS",
    "operator",
    "adder",
    "subtractor",
    "multiplier",
    "divider",
    "comparator",
    "mux",
    "inverter",
    "register",
    "accumulator",
    "constant",
    "input_pad",
    "output_pad",
    "CONSTRUCTORS",
    "vertex_area",
    "vertex_delay",
    "datapath_diagnostics",
    "validate_datapath",
    "assert_valid",
    "combinational_cycle",
    "topological_com_order",
]
