"""Structural validation of data paths.

Two kinds of checks live here:

* **global well-formedness** (:func:`validate_datapath`) — every arc's
  endpoints exist with the right directions (enforced on construction,
  re-checked here defensively), external vertices have the port shape of
  Definition 3.3, and every combinational input is reachable from some
  driver;
* **combinational-loop detection** (:func:`combinational_cycle`) over an
  arbitrary *subset* of arcs — the properly-designed rule 3.2(4) requires
  the subgraph associated with each control state to be free of
  combinational loops, so the checker calls this once per control state
  with the state's active arc set.
"""

from __future__ import annotations

from typing import Iterable

from ..diagnostics import Diagnostic, Location
from ..errors import ValidationError
from .graph import DataPath
from .operations import OpKind
from .ports import PortId

_HINT = "repair the data-path structure before any other analysis"


def datapath_diagnostics(dp: DataPath) -> list[Diagnostic]:
    """Well-formedness findings as structured diagnostics (rule ``DP000``).

    Checks:
    1. external vertices have the exact port structure of Definition 3.3;
    2. arcs reference existing ports with correct directions;
    3. no arc is driven by an environment sink port;
    4. input-vertex output ports and output-vertex input ports are
       connected (dangling pads are almost always a modelling error).
    """
    def problem(message: str, *locations: Location) -> Diagnostic:
        return Diagnostic("DP000", "error", message, locations, hint=_HINT)

    problems: list[Diagnostic] = []
    for vertex in dp.vertices.values():
        at_vertex = Location("vertex", vertex.name)
        if vertex.is_input_vertex:
            if vertex.in_ports or len(vertex.out_ports) != 1:
                problems.append(problem(
                    f"input vertex {vertex.name!r} must have no input ports "
                    "and exactly one output port (Definition 3.3)", at_vertex))
            if not dp.arcs_from(PortId(vertex.name, vertex.out_ports[0])):
                problems.append(problem(
                    f"input vertex {vertex.name!r} drives no arc", at_vertex))
        if vertex.is_output_vertex:
            if len(vertex.in_ports) != 1:
                problems.append(problem(
                    f"output vertex {vertex.name!r} must have exactly one "
                    "input port (Definition 3.3)", at_vertex))
            elif not dp.arcs_into(PortId(vertex.name, vertex.in_ports[0])):
                problems.append(problem(
                    f"output vertex {vertex.name!r} receives no arc",
                    at_vertex))
    for arc in dp.arcs.values():
        at_arc = Location("arc", arc.name)
        src_vertex = dp.vertices.get(arc.source.vertex)
        dst_vertex = dp.vertices.get(arc.target.vertex)
        if src_vertex is None or arc.source.port not in src_vertex.out_ports:
            problems.append(problem(
                f"arc {arc.name!r} has dangling source {arc.source}",
                at_arc, Location("port", str(arc.source))))
            continue
        if dst_vertex is None or arc.target.port not in dst_vertex.in_ports:
            problems.append(problem(
                f"arc {arc.name!r} has dangling target {arc.target}",
                at_arc, Location("port", str(arc.target))))
            continue
        if src_vertex.operation(arc.source.port).kind is OpKind.OUTPUT:
            problems.append(problem(
                f"arc {arc.name!r} is driven by environment sink {arc.source}",
                at_arc, Location("port", str(arc.source))))
    return problems


def validate_datapath(dp: DataPath) -> list[str]:
    """Return a list of problems (empty = valid).

    Deprecated shim kept for source compatibility: the messages of
    :func:`datapath_diagnostics`, which callers should prefer for
    structured rule ids, severities and location anchors.
    """
    return [d.message for d in datapath_diagnostics(dp)]


def assert_valid(dp: DataPath) -> None:
    """Raise :class:`~repro.errors.ValidationError` on the first problem."""
    problems = validate_datapath(dp)
    if problems:
        raise ValidationError("; ".join(problems))


def combinational_cycle(dp: DataPath, arc_names: Iterable[str]) -> list[str] | None:
    """Find a combinational loop within a subset of arcs, if any.

    Builds the vertex-level dependence graph restricted to the given arcs:
    an edge ``u → v`` exists when an arc runs from an output port of ``u``
    to an input port of ``v`` *and* ``v`` propagates combinationally
    (``v`` is a COM vertex — SEQ vertices and environment pads break
    combinational paths).  Returns a cycle as a vertex-name list, or
    ``None`` when the subgraph is loop-free (rule 3.2(4) satisfied).
    """
    edges: dict[str, set[str]] = {}
    for name in arc_names:
        arc = dp.arc(name)
        target_vertex = dp.vertex(arc.target.vertex)
        if not target_vertex.is_combinational:
            continue
        edges.setdefault(arc.source.vertex, set()).add(arc.target.vertex)

    # iterative DFS with colouring; returns the first cycle found
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[str, int] = {}
    parent: dict[str, str] = {}

    for root in list(edges):
        if colour.get(root, WHITE) is not WHITE:
            continue
        stack: list[tuple[str, Iterable[str]]] = [(root, iter(sorted(edges.get(root, ()))))]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state == GREY:
                    # reconstruct the cycle child → … → node → child
                    cycle = [child, node]
                    walker = node
                    while walker != child and walker in parent:
                        walker = parent[walker]
                        if walker != child:
                            cycle.append(walker)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(edges.get(child, ())))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def topological_com_order(dp: DataPath, arc_names: Iterable[str]) -> list[str]:
    """Topological order of COM vertices under the given active arcs.

    Used by the simulator to evaluate the combinational fixpoint in a
    single pass.  Raises :class:`~repro.errors.ValidationError` when the
    active subgraph contains a combinational loop.
    """
    arc_list = list(arc_names)
    cycle = combinational_cycle(dp, arc_list)
    if cycle is not None:
        raise ValidationError(
            f"combinational loop among active vertices: {' -> '.join(cycle)}"
        )
    com = {v.name for v in dp.vertices.values() if v.is_combinational}
    indegree: dict[str, int] = {v: 0 for v in com}
    out_edges: dict[str, list[str]] = {v: [] for v in com}
    for name in arc_list:
        arc = dp.arc(name)
        if arc.target.vertex in com:
            if arc.source.vertex in com:
                out_edges[arc.source.vertex].append(arc.target.vertex)
                indegree[arc.target.vertex] += 1
    ready = sorted(v for v, d in indegree.items() if d == 0)
    order: list[str] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in out_edges[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return order
