"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

``check DESIGN``
    Compile and run the Definition 3.2 properly-designed verification.
``lint DESIGN… [--all] [--format text|json|sarif] [--fail-on SEV]
[--rules ID,…] [--baseline FILE] [--write-baseline FILE]``
    Run the structural design-rule checker (:mod:`repro.analysis.lint`)
    — no reachability enumeration — and report diagnostics with stable
    rule ids; exits 1 when findings at/above ``--fail-on`` remain.
``simulate DESIGN [--input name=v1,v2,…]… [--max-steps N] [--profile]
[--profile-json PATH] [--naive] [--seed N] [--checkpoint-dir DIR
--checkpoint-every N] [--resume] [--backend interpreter|vector]``
    Execute against an environment and print the external events;
    ``--profile`` adds step/evaluation/cache metrics (``--profile-json``
    emits them machine-readable, ``--naive`` disables the incremental
    fast path, ``--seed`` resolves firing choice through a seeded RNG).
    ``--checkpoint-every`` persists durable snapshots into
    ``--checkpoint-dir``; ``--resume`` continues from the newest intact
    one with a byte-identical trace.  ``--backend vector`` runs the
    compiled vector backend (:mod:`repro.semantics.vector`) instead of
    the interpreter — same trace, compiled execution.
``faults DESIGN [--fault SPEC]… [--faults-file PATH] [--auto N]
[--seed N] [--format text|json] [--output PATH] [--checkpoint PATH]
[--journal PATH] [--resume] [--backend interpreter|vector]``
    Run a fault-injection campaign (:mod:`repro.faults`): each fault is
    injected into its own run with the runtime Definition 3.2 monitors
    attached, and the report classifies every fault as masked /
    detected / silent against the golden run's external event
    structure.  ``--journal`` fsyncs every verdict as it settles;
    ``--resume`` restarts a killed campaign without re-running journaled
    faults.  ``--backend vector`` fans the campaign as vectorised
    16-fault batches sharing each golden run (identical verdicts and
    journal records).  Exits 0 when every fault was masked or detected, 1 on a
    silent deviation, 2 on usage or infrastructure errors, 130 when
    interrupted.
``synthesize DESIGN [--w-time F] [--w-area F] [--limit op=N]… ``
    Run the CAMAD-style optimizer and report the before/after metrics.
``dot DESIGN [--view datapath|petri|system]``
    Emit Graphviz DOT to stdout.
``export DESIGN``
    Emit the JSON serialisation to stdout.
``netlist DESIGN``
    Emit a structural RTL-flavoured netlist (one-hot FSM + datapath).
``cosim DESIGN [--input …]``
    Co-simulate the netlist interpretation against the model semantics.
``batch JOBFILE [--workers N] [--cache DIR] [--timeout S] [--retries N]
[--journal PATH] [--resume] [--quarantine-after N] [--hang-timeout S]
[--server URL [--tenant T] [--priority P]]``
    Run a job file (see :mod:`repro.runtime.jobs`) through the batch
    engine and report per-job outcomes plus fleet metrics; with a
    ``--journal`` the batch survives SIGKILL and ``--resume`` replays
    settled jobs from the log.  With ``--server`` the same job file is
    submitted over HTTP to a running ``repro serve`` (identical
    content-addressed keys and byte-identical cached results) and
    polled to completion.  Exits 0 when every job succeeded, 1 on
    failures, 3 when a poison job was quarantined, 130 when interrupted.
``serve [--host H] [--port P] [--shards N] [--service-workers N]
[--cache DIR] [--journal PATH] [--resume] [--rate R] [--burst B]``
    Run the long-lived execution service
    (:mod:`repro.runtime.service`): an HTTP/JSON API accepting the
    declarative job-spec JSON, a durable sharded queue (``--journal`` +
    ``--resume`` survive SIGKILL), per-tenant rate limiting, and worker
    threads sharing one result store.
``cache stats DIR`` / ``cache prune DIR [--max-bytes N] [--max-entries N]``
    Inspect a content-addressed result cache, or atomically evict
    least-recently-used entries until it fits the given bounds.
``sweep DESIGN [--w-time F,F,…] [--w-area F,F,…] [--seeds N,N,…]``
    Fan a synthesis sweep over the objective-weight × seed grid through
    the batch engine (``--emit-jobs PATH`` writes the job file instead
    of running it).
``list``
    List the built-in design zoo.

``DESIGN`` is either a zoo name (``gcd``, ``diffeq``, …) or a path to a
behavioural source file (``.pdl``) / serialised system (``.json``).

``repro --version`` prints the package version.  Library errors exit
with status 2 and a one-line categorised message (``validation error:``,
``execution error:``, ``transform error:``, …) instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .core import check_properly_designed
from .core.system import DataControlSystem
from .designs import ZOO, pad_outputs
from .errors import (
    DefinitionError,
    ExecutionError,
    ParseError,
    ReproError,
    RuntimeFaultError,
    TransformError,
    ValidationError,
)
from .fuzz.corpus import DEFAULT_CORPUS_DIR as _DEFAULT_CORPUS_DIR
from .io import dumps, format_table
from .io.dot import datapath_to_dot, petri_to_dot, system_to_dot
from .semantics import Environment, simulate
from .synthesis import (
    Objective,
    compile_source,
    critical_path,
    optimize,
    optimize_portfolio,
    system_cost,
)


def _load(spec: str) -> tuple[DataControlSystem, Environment]:
    """Resolve a design spec to (system, default environment)."""
    if spec in ZOO:
        design = ZOO[spec]
        return design.build(), design.environment()
    if spec.endswith(".json"):
        from .io import load

        return load(spec), Environment()
    with open(spec, "r", encoding="utf-8") as handle:
        return compile_source(handle.read()), Environment()


def _parse_inputs(pairs: Sequence[str]) -> Environment:
    streams: dict[str, list[int]] = {}
    for pair in pairs:
        name, _, values = pair.partition("=")
        if not values:
            raise ReproError(f"malformed --input {pair!r} "
                             "(expected name=v1,v2,…)")
        streams[name] = [int(v) for v in values.split(",") if v]
    return Environment(streams)


def _environment_for(args: argparse.Namespace,
                     default: Environment) -> Environment:
    """The run's environment: ``--input`` overrides, else the default.

    Shared by every command that accepts ``--input`` (simulate, cosim,
    synthesize, sweep) so the parsing and precedence live in one place.
    """
    return _parse_inputs(args.input) if args.input else default


def _parse_limits(pairs: Sequence[str]) -> dict[str, int]:
    limits: dict[str, int] = {}
    for pair in pairs:
        name, _, cap = pair.partition("=")
        if not cap:
            raise ReproError(f"malformed --limit {pair!r} (expected op=N)")
        limits[name] = int(cap)
    return limits


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [[design.name, design.description] for design in ZOO.values()]
    print(format_table(["design", "description"], rows,
                       title="built-in design zoo"))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    problems = system.validate()
    for problem in problems:
        print(f"warning: {problem}")
    report = check_properly_designed(system)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_equiv(args: argparse.Namespace) -> int:
    from .analysis.sarif import sarif_diagnostics_log
    from .analysis.symbolic import EQUIV_RULES, equivalence_diagnostics
    from .core.equivalence import semantically_equivalent

    left, env_left = _load(args.design)
    right, env_right = _load(args.other)
    env = _parse_inputs(args.input) if args.input else env_left
    if not args.input and not env_left.sequences and env_right.sequences:
        # fall back to whichever side ships default inputs
        env = env_right
    verdict = semantically_equivalent(left, right, env,
                                      max_steps=args.max_steps,
                                      backend=args.backend)
    diagnostics = equivalence_diagnostics(verdict, left=args.design,
                                          right=args.other)
    if args.format == "sarif":
        import json as _json

        log = sarif_diagnostics_log(diagnostics, EQUIV_RULES,
                                    systems=[args.design, args.other])
        _write_json(args.output or "-", _json.dumps(log, indent=2),
                    "SARIF log")
    elif args.format == "json":
        import json as _json

        payload = _json.dumps({
            "format": 1,
            "left": args.design,
            "right": args.other,
            "equivalent": verdict.equivalent,
            "relation": verdict.relation,
            "backend": verdict.backend,
            "reason": verdict.reason,
            "witness": verdict.witness,
        }, indent=2)
        _write_json(args.output or "-", payload, "equivalence report")
    else:
        status = "EQUIVALENT" if verdict.equivalent else "NOT EQUIVALENT"
        print(f"{args.design} vs {args.other}: {status} "
              f"({verdict.relation}, backend={verdict.backend})")
        if verdict.reason:
            print(f"reason: {verdict.reason}")
        witness_text = verdict.witness_text()
        if witness_text:
            print("distinguishing firing sequences:")
            for line in witness_text.splitlines():
                print(f"  {line}")
    return 0 if verdict.equivalent else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import (
        baseline_document,
        load_baseline,
        run_lint,
    )
    from .analysis.sarif import sarif_dumps

    designs = list(args.designs)
    if args.all:
        designs = list(ZOO)
    if not designs:
        raise ReproError("no designs given (name designs or pass --all)")
    rules = [r for spec in args.rules for r in spec.split(",") if r] or None
    known = load_baseline(args.baseline) if args.baseline else frozenset()
    reports = []
    for spec in designs:
        system, _env = _load(spec)
        reports.append(run_lint(system, rules=rules).with_baseline(known))
    if args.write_baseline:
        import json as _json

        _write_json(args.write_baseline,
                    _json.dumps(baseline_document(reports), indent=2),
                    "lint baseline")
        return 0
    if args.format == "sarif":
        _write_json(args.output or "-", sarif_dumps(reports).rstrip("\n"),
                    "SARIF log")
    elif args.format == "json":
        import json as _json

        payload = _json.dumps({"format": 1,
                               "reports": [r.as_dict() for r in reports]},
                              indent=2)
        _write_json(args.output or "-", payload, "lint report")
    else:
        for report in reports:
            print(report.to_text())
    failed = [r.system for r in reports if not r.ok(args.fail_on)]
    if failed:
        print(f"lint failed at --fail-on {args.fail_on}: "
              + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    policy = None
    if args.seed is not None:
        from .semantics import SeededMaximalPolicy

        policy = SeededMaximalPolicy(args.seed)
    hooks = []
    checkpoint = None
    if args.resume and not args.checkpoint_dir:
        raise ReproError("--resume requires --checkpoint-dir")
    if args.checkpoint_every and not args.checkpoint_dir:
        raise ReproError("--checkpoint-every requires --checkpoint-dir")
    if args.checkpoint_dir:
        from .runtime.durable import CheckpointHook, CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        if args.checkpoint_every:
            hooks.append(CheckpointHook(store, args.checkpoint_every))
        if args.resume:
            checkpoint = store.load_latest()
            if checkpoint is not None:
                print(f"resuming from checkpoint at step {checkpoint.step}")
            else:
                print("no usable checkpoint found; starting fresh")
    if args.backend == "vector":
        for flag, present in (("--naive", args.naive),
                              ("--profile", args.profile),
                              ("--profile-json", bool(args.profile_json)),
                              ("--checkpoint-dir",
                               bool(args.checkpoint_dir))):
            if present:
                raise ReproError(
                    f"{flag} is an interpreter-backend option; it cannot "
                    "be combined with --backend vector")
    if hooks or checkpoint is not None:
        from .semantics.simulator import Simulator

        kwargs = {"policy": policy} if policy is not None else {}
        sim = Simulator(system, env, fast=not args.naive, hooks=hooks,
                        **kwargs)
        trace = sim.run(max_steps=args.max_steps, from_checkpoint=checkpoint)
    else:
        trace = simulate(system, env, max_steps=args.max_steps,
                         fast=not args.naive, policy=policy,
                         backend=args.backend)
    print(trace.summary())
    for event in trace.events:
        print(f"  step {event.end:4d}  {event}")
    outputs = pad_outputs(system, trace)
    if outputs:
        print("outputs:")
        for pad, values in sorted(outputs.items()):
            print(f"  {pad} = {values}")
    if args.profile and trace.metrics is not None:
        print(trace.metrics.summary())
    if args.profile_json and trace.metrics is not None:
        payload = trace.metrics.to_json(indent=2)
        if args.profile_json == "-":
            print(payload)
        else:
            with open(args.profile_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"profile written to {args.profile_json}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import (
        FaultSpec,
        generate_faults,
        load_faults,
        run_campaign,
    )

    system, env = _load(args.design)
    env = _environment_for(args, env)
    faults = [FaultSpec.parse(spec) for spec in args.fault]
    if args.faults_file:
        faults.extend(load_faults(args.faults_file))
    if args.auto:
        faults.extend(generate_faults(system, args.auto, seed=args.seed))
    if not faults:
        raise ReproError(
            "no faults given (use --fault, --faults-file or --auto N)")
    from .runtime.supervisor import GracefulShutdown

    with _make_engine(args) as engine, GracefulShutdown() as shutdown:
        report = run_campaign(
            system, faults, env, engine=engine, seed=args.seed,
            max_steps=args.max_steps, checkpoint_path=args.checkpoint,
            journal_path=args.journal, resume=args.resume,
            stop_event=shutdown.stop_event, backend=args.backend,
            chunk_size=args.chunk_size)
    interrupted = shutdown.stop_event.is_set()
    if args.format == "json":
        _write_json(args.output or "-",
                    _json.dumps(report.to_dict(), indent=2, sort_keys=True),
                    "campaign report")
    else:
        if args.output:
            _write_json(args.output,
                        _json.dumps(report.to_dict(), indent=2,
                                    sort_keys=True),
                        "campaign report")
        print(report.to_text())
    if interrupted:
        print("campaign interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    return report.exit_code


def cmd_synthesize(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    objective = Objective(
        w_time=args.w_time, w_area=args.w_area,
        limits=_parse_limits(args.limit) or None,
        environment=env if env.sequences or not system.datapath.input_vertices()
        else None,
        max_steps=args.max_steps,
    )
    if args.portfolio:
        result = optimize_portfolio(system, objective,
                                    max_moves=args.max_moves,
                                    workers=args.workers)
    else:
        result = optimize(system, objective, max_moves=args.max_moves)
    print(result.summary())
    rows = [
        ["critical path (steps)", critical_path(system).steps,
         critical_path(result.system).steps],
        ["area", round(system_cost(system).total, 2),
         round(system_cost(result.system).total, 2)],
        ["functional units",
         sum(1 for v in system.datapath.vertices.values()
             if v.is_combinational),
         sum(1 for v in result.system.datapath.vertices.values()
             if v.is_combinational)],
    ]
    print(format_table(["metric", "before", "after"], rows))
    if args.output:
        from .io import save

        save(result.system, args.output)
        print(f"optimized system written to {args.output}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    renderers = {
        "datapath": lambda: datapath_to_dot(system.datapath),
        "petri": lambda: petri_to_dot(system.net),
        "system": lambda: system_to_dot(system),
    }
    print(renderers[args.view]())
    return 0


def cmd_netlist(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    from .io import to_verilog

    print(to_verilog(system))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    print(dumps(system))
    return 0


def cmd_cosim(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    from .io.rtl_sim import crosscheck

    try:
        trace = crosscheck(system, env, max_cycles=args.max_steps)
    except AssertionError as error:
        print(f"MISMATCH: {error}", file=sys.stderr)
        return 1
    print(f"RTL == model over {trace.cycles} cycle(s)")
    for pad, values in sorted(trace.outputs.items()):
        print(f"  {pad} = {values}")
    return 0


def _make_engine(args: argparse.Namespace, *, journal=None):
    """Build an ExecutionEngine (and optional cache) from CLI options."""
    from .runtime import ExecutionEngine, ResultCache, SupervisorConfig

    cache = ResultCache(args.cache) if args.cache else None
    supervisor = SupervisorConfig(
        hang_timeout=getattr(args, "hang_timeout", None),
        quarantine_after=getattr(args, "quarantine_after", 3))
    return ExecutionEngine(workers=args.workers, timeout=args.timeout,
                           retries=args.retries, cache=cache,
                           supervisor=supervisor, journal=journal)


def _engine_journal(args: argparse.Namespace):
    """Open the batch-level write-ahead journal and its resume map.

    Returns ``(journal, resume_from)`` — with ``--resume`` the existing
    journal is scanned first (torn tails repaired) and every settled key
    with a payload is replayed instead of re-executed.
    """
    if not getattr(args, "journal", None):
        return None, None
    from .runtime import Journal, iter_settled, read_journal

    resume_from = None
    if args.resume:
        resume_from = {
            key: record.get("payload")
            for key, record in iter_settled(read_journal(args.journal))
            if record.get("payload") is not None}
    return Journal(args.journal, fresh=not args.resume), resume_from


def _report_batch(batch, *, metrics_json: str | None = None,
                  results_json: str | None = None) -> int:
    """Print a per-job table plus fleet metrics; nonzero if any job failed."""
    rows = []
    for result in batch:
        rows.append([
            result.key[:10],
            result.spec.kind,
            result.spec.label or "-",
            result.status,
            result.attempts,
            f"{result.run_seconds * 1e3:.1f}",
            result.error or "-",
        ])
    print(format_table(
        ["key", "kind", "label", "status", "attempts", "run_ms", "error"],
        rows, title=f"batch of {len(batch)} job(s)"))
    print(batch.metrics.summary())
    if metrics_json:
        _write_json(metrics_json, batch.metrics.to_json(indent=2),
                    "fleet metrics")
    if results_json:
        import json as _json

        payload = _json.dumps([r.as_dict() for r in batch], indent=2,
                              sort_keys=True)
        _write_json(results_json, payload, "job results")
    if batch.metrics.interrupted:
        print("batch interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    if batch.ok:
        return 0
    # 3 distinguishes "a poison job was quarantined" from plain failure
    return 3 if batch.quarantined() else 1


def _write_json(target: str, payload: str, what: str) -> None:
    if target == "-":
        print(payload)
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    print(f"{what} written to {target}")


def cmd_batch(args: argparse.Namespace) -> int:
    from .runtime import GracefulShutdown, load_job_file

    if args.server:
        from .runtime.service import (
            ServiceClient,
            parse_server_url,
            submit_job_file,
        )

        for flag, present in (("--workers", bool(args.workers)),
                              ("--cache", bool(args.cache)),
                              ("--journal", bool(args.journal)),
                              ("--resume", args.resume)):
            if present:
                raise ReproError(
                    f"{flag} configures the local engine; with --server "
                    "those concerns live on the server (repro serve)")
        client = ServiceClient(parse_server_url(args.server))
        batch = submit_job_file(client, args.jobfile, tenant=args.tenant,
                                priority=args.priority, poll=args.poll,
                                max_seconds=args.max_wait)
        return _report_batch(batch, metrics_json=args.metrics_json,
                             results_json=args.results_json)

    jobs = load_job_file(args.jobfile)
    journal, resume_from = _engine_journal(args)
    try:
        with _make_engine(args, journal=journal) as engine, \
                GracefulShutdown() as shutdown:
            batch = engine.run(jobs, stop_event=shutdown.stop_event,
                               resume_from=resume_from)
    finally:
        if journal is not None:
            journal.close()
    return _report_batch(batch, metrics_json=args.metrics_json,
                         results_json=args.results_json)


def cmd_serve(args: argparse.Namespace) -> int:
    from .runtime import ExecutionEngine, GracefulShutdown, SupervisorConfig
    from .runtime.service import (
        ExecutionService,
        LocalDirBackend,
        make_server,
        serve_forever,
    )

    store = LocalDirBackend(args.cache, max_bytes=args.cache_max_bytes,
                            max_entries=args.cache_max_entries) \
        if args.cache else None

    def engine_factory() -> ExecutionEngine:
        return ExecutionEngine(
            workers=args.workers, timeout=args.timeout,
            retries=args.retries, cache=store,
            supervisor=SupervisorConfig(
                hang_timeout=args.hang_timeout,
                quarantine_after=args.quarantine_after))

    service = ExecutionService(
        store=store, journal_path=args.journal, resume=args.resume,
        shards=args.shards, rate=args.rate, burst=args.burst,
        workers=args.service_workers, engine_factory=engine_factory,
        lease_seconds=args.lease_seconds, max_pending=args.max_pending)
    server = make_server(service, host=args.host, port=args.port,
                         verbose=args.verbose,
                         max_inflight=args.max_inflight)
    host, port = server.server_address[:2]
    replayed = service.replayed
    pending = service.queue.depth()
    print(f"repro serve listening on http://{host}:{port} "
          f"({args.shards} shard(s), {args.service_workers} worker(s)"
          + (f", journal {args.journal}" if args.journal else "") + ")")
    if args.resume:
        print(f"resumed from journal: {replayed} settled job(s) replayed, "
              f"{pending} re-queued")
    sys.stdout.flush()
    with service, GracefulShutdown() as shutdown:
        drained = serve_forever(server, stop_event=shutdown.stop_event,
                                drain_grace=args.drain_grace)
    if shutdown.stop_event.is_set():
        # signal-initiated stop: drained or not, the convention is the
        # interrupted exit code so wrappers treat it like ^C everywhere
        print("repro serve drained and shut down" if drained
              else "repro serve shut down with work still queued "
                   "(journal replays it on --resume)", file=sys.stderr)
        return 130
    print("repro serve shut down cleanly")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from time import monotonic

    from .runtime import GracefulShutdown
    from .runtime.chaos import ChaosProxy, policy_from_args

    policy = policy_from_args(args.policy, args.fault, args.seed)
    if args.emit_policy:
        policy.save(args.emit_policy)
        print(f"chaos policy written to {args.emit_policy} "
              f"({len(policy.faults)} fault(s), seed {policy.seed})")
        return 0
    proxy = ChaosProxy(args.upstream, policy, host=args.host,
                       port=args.port, io_timeout=args.io_timeout)
    with proxy, GracefulShutdown() as shutdown:
        print(f"repro chaos proxying {proxy.url} -> {args.upstream} "
              f"({len(policy.faults)} fault(s), seed {policy.seed})")
        sys.stdout.flush()
        deadline = (monotonic() + args.max_seconds
                    if args.max_seconds is not None else None)
        while not shutdown.stop_event.wait(0.2):
            if deadline is not None and monotonic() >= deadline:
                break
    metrics = proxy.metrics()
    if args.metrics_out:
        _write_json(args.metrics_out,
                    json.dumps(metrics, indent=2, sort_keys=True),
                    "chaos metrics")
    print(f"chaos proxy stopped: {metrics['requests']} request(s), "
          f"{metrics['injected_total']} fault(s) injected")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .runtime import ResultCache

    cache = ResultCache(args.dir)
    stats = cache.stats()
    if args.cache_command == "stats":
        rows = [["entries", stats["entries"]],
                ["bytes", stats["bytes"]],
                ["directory", args.dir]]
        print(format_table(["stat", "value"], rows,
                           title="result cache"))
        return 0
    # prune
    if args.max_bytes is None and args.max_entries is None:
        raise ReproError(
            "cache prune needs a bound: --max-bytes and/or --max-entries")
    removed = cache.prune(max_bytes=args.max_bytes,
                          max_entries=args.max_entries)
    after = cache.stats()
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}: "
          f"{stats['entries']} -> {after['entries']} entries, "
          f"{stats['bytes']} -> {after['bytes']} bytes")
    return 0


def _parse_floats(text: str) -> list[float]:
    return [float(v) for v in text.split(",") if v]


def _parse_ints(text: str) -> list[int]:
    return [int(v) for v in text.split(",") if v]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .runtime import synthesize_job, write_job_file

    system, env = _load(args.design)
    env = _environment_for(args, env)
    environment = (env if env.sequences
                   or not system.datapath.input_vertices() else None)
    w_times = _parse_floats(args.w_time)
    w_areas = _parse_floats(args.w_area)
    seeds = _parse_ints(args.seeds) if args.seeds else []
    jobs = []
    for w_time in w_times:
        for w_area in w_areas:
            objective = Objective(w_time=w_time, w_area=w_area,
                                  limits=_parse_limits(args.limit) or None,
                                  environment=environment,
                                  max_steps=args.max_steps)
            point = f"{args.design}:w_time={w_time:g},w_area={w_area:g}"
            if seeds:
                jobs.extend(
                    synthesize_job(system, objective,
                                   algorithm="random+greedy", seed=seed,
                                   max_moves=args.max_moves,
                                   label=f"{point},seed={seed}")
                    for seed in seeds)
            else:
                jobs.append(synthesize_job(system, objective,
                                           algorithm="greedy",
                                           max_moves=args.max_moves,
                                           label=point))
    if args.emit_jobs:
        write_job_file(args.emit_jobs, jobs)
        print(f"{len(jobs)} job(s) written to {args.emit_jobs}")
        return 0
    from .runtime import GracefulShutdown

    journal, resume_from = _engine_journal(args)
    try:
        with _make_engine(args, journal=journal) as engine, \
                GracefulShutdown() as shutdown:
            batch = engine.run(jobs, stop_event=shutdown.stop_event,
                               resume_from=resume_from)
    finally:
        if journal is not None:
            journal.close()
    rows = []
    for result in batch:
        payload = result.payload or {}
        rows.append([
            result.spec.label,
            result.status,
            f"{payload.get('initial_objective', float('nan')):.2f}"
            if payload else "-",
            f"{payload.get('final_objective', float('nan')):.2f}"
            if payload else "-",
            len(payload.get("moves", [])) if payload else "-",
        ])
    print(format_table(
        ["sweep point", "status", "initial", "final", "moves"],
        rows, title=f"synthesis sweep over {len(batch)} point(s)"))
    print(batch.metrics.summary())
    if args.metrics_json:
        _write_json(args.metrics_json, batch.metrics.to_json(indent=2),
                    "fleet metrics")
    if batch.metrics.interrupted:
        print("sweep interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    return 0 if batch.ok else 1


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = serial in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds (pool backend)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a failed/crashed job")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--metrics-json", metavar="PATH",
                        help="write fleet metrics as JSON ('-' for stdout)")
    parser.add_argument("--journal", metavar="PATH",
                        help="write-ahead journal (fsynced per record) "
                             "making the run resumable after a crash")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the --journal instead of "
                             "starting fresh (settled jobs are not re-run)")
    parser.add_argument("--quarantine-after", type=int, default=3,
                        metavar="N",
                        help="quarantine a job after N worker crashes on "
                             "its key (default 3)")
    parser.add_argument("--hang-timeout", type=float, default=None,
                        metavar="S",
                        help="SIGKILL workers whose heartbeat is silent "
                             "for S seconds (default: hang detection off)")


def _fuzz_report_text(report) -> list[str]:
    lines = [
        f"fuzz campaign: seed={report.config.seed} "
        f"cases={report.config.cases} "
        f"oracles={','.join(report.config.oracles)}",
        f"  cases run     {report.cases_run}"
        + (" (truncated by --time-budget)" if report.truncated else ""),
        f"  divergences   {sum(report.buckets.values())} "
        f"({len(report.buckets)} bucket(s))",
        f"  explained     "
        + (", ".join(f"{k}={v}"
                     for k, v in sorted(report.explained.items()))
           or "none"),
        f"  skipped       "
        + (", ".join(f"{k}={v}" for k, v in sorted(report.skipped.items()))
           or "none"),
        f"  shrink steps  {report.shrink_steps}",
        f"  elapsed       {report.elapsed_seconds:.1f}s "
        f"({report.cases_per_second:.0f} cases/s)",
    ]
    for record in report.divergences:
        lines.append(f"  [{record['fingerprint']}] {record['oracle']}/"
                     f"{record['kind']} seed={record['seed']} "
                     f"x{report.buckets[record['fingerprint']]}: "
                     f"{record['detail']}")
    return lines


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    import json as _json

    from .fuzz import evaluate_replay, load_corpus, replay_entry

    directory = args.replay
    entries = load_corpus(directory)
    if not entries:
        print(f"no corpus entries under {directory!r}", file=sys.stderr)
        return 0
    results = []
    failed = 0
    for entry in entries:
        ok, detail = evaluate_replay(entry, replay_entry(
            entry, max_steps=args.max_steps))
        failed += 0 if ok else 1
        results.append({"id": entry.id, "expect": entry.expect,
                        "ok": ok, "detail": detail})
    if args.format == "json":
        payload = _json.dumps({"format": 1, "corpus": directory,
                               "entries": results,
                               "failed": failed}, indent=2)
        _write_json(args.output or "-", payload, "corpus replay report")
    else:
        for result in results:
            status = "ok" if result["ok"] else "FAIL"
            print(f"[{status}] {result['id']} ({result['expect']}): "
                  f"{result['detail']}")
        print(f"replayed {len(results)} corpus entries, {failed} failed")
    return 1 if failed else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json as _json

    from .fuzz import FuzzConfig, entry_from_record, run_fuzz, save_entry
    from .fuzz.oracles import ORACLES

    if args.replay is not None:
        return _cmd_fuzz_replay(args)
    oracles = tuple(name.strip() for name in args.oracles.split(",")
                    if name.strip())
    for name in oracles:
        if name not in ORACLES:
            raise DefinitionError(f"unknown oracle {name!r}; choose from "
                                  f"{', '.join(ORACLES)}")
    if args.cases < 0:
        raise DefinitionError("--cases must be >= 0")
    if args.min_places < 1 or args.max_places < args.min_places:
        raise DefinitionError("--min-places/--max-places must satisfy "
                              "1 <= min <= max")
    config = FuzzConfig(
        seed=args.seed, cases=args.cases, offset=args.offset,
        min_places=args.min_places, max_places=args.max_places,
        mutation_rate=args.mutation_rate, quirk_rate=args.quirk_rate,
        oracles=oracles, shrink=not args.no_shrink,
        max_steps=args.max_steps, max_markings=args.max_markings,
        time_budget=args.time_budget)

    if args.emit_jobs:
        from .runtime import fuzz_job, write_job_file

        if args.shards < 1:
            raise DefinitionError("--shards must be >= 1")
        shard_size = -(-args.cases // args.shards)  # ceil division
        jobs = []
        for start in range(0, args.cases, shard_size):
            jobs.append(fuzz_job(
                seed=args.seed, cases=min(shard_size, args.cases - start),
                offset=args.offset + start, min_places=args.min_places,
                max_places=args.max_places,
                mutation_rate=args.mutation_rate,
                quirk_rate=args.quirk_rate, oracles=list(oracles),
                shrink=not args.no_shrink, max_steps=args.max_steps,
                max_markings=args.max_markings))
        write_job_file(args.emit_jobs, jobs)
        print(f"{len(jobs)} fuzz job(s) written to {args.emit_jobs} "
              f"(run with: repro batch {args.emit_jobs})")
        return 0

    report = run_fuzz(config)
    pinned = []
    if args.corpus_dir and report.divergences:
        for record in report.divergences:
            entry = entry_from_record(record, expect="xfail")
            pinned.append(save_entry(args.corpus_dir, entry))
    if args.format == "json":
        payload = _json.dumps(dict(report.to_dict(), pinned=pinned),
                              indent=2)
        _write_json(args.output or "-", payload, "fuzz report")
    else:
        for line in _fuzz_report_text(report):
            print(line)
        for path in pinned:
            print(f"  pinned repro: {path}")
        print("ok" if report.ok else "DIVERGED")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data/control flow hardware synthesis "
                    "(Peng, ICPP 1988 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in design zoo") \
        .set_defaults(func=cmd_list)

    p_check = sub.add_parser("check",
                             help="verify Definition 3.2 (properly designed)")
    p_check.add_argument("design")
    p_check.set_defaults(func=cmd_check)

    p_equiv = sub.add_parser(
        "equiv",
        help="check two designs for semantic equivalence (Def. 4.1)",
        description="Exit 0 when equivalent, 1 when a distinguishing "
                    "behaviour was found (printed as a replayable firing "
                    "sequence), 2 on error.")
    p_equiv.add_argument("design", help="zoo name, .json, or source file")
    p_equiv.add_argument("other", help="the candidate equivalent design")
    p_equiv.add_argument("--backend", choices=("explicit", "symbolic"),
                         default="symbolic",
                         help="verification engine (default: symbolic)")
    p_equiv.add_argument("--input", action="append", default=[],
                         metavar="NAME=V1,V2,…",
                         help="input stream (repeatable); defaults to the "
                              "left design's built-in inputs")
    p_equiv.add_argument("--max-steps", type=int, default=10_000)
    p_equiv.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text")
    p_equiv.add_argument("--output", metavar="FILE",
                         help="write json/sarif output here ('-' = stdout)")
    p_equiv.set_defaults(func=cmd_equiv)

    p_lint = sub.add_parser(
        "lint", help="run the structural design-rule checker")
    p_lint.add_argument("designs", nargs="*",
                        help="zoo names / .pdl / .json files")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every design in the zoo")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    p_lint.add_argument("--fail-on", default="error",
                        choices=("info", "warning", "error", "never"),
                        help="exit nonzero when a finding at/above this "
                             "severity remains (default: error)")
    p_lint.add_argument("--rules", action="append", default=[],
                        metavar="ID[,ID…]",
                        help="run only these rule ids (repeatable)")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="suppress findings whose fingerprints are "
                             "recorded in this baseline file")
    p_lint.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the baseline "
                             "and exit 0")
    p_lint.add_argument("--output", metavar="PATH",
                        help="write json/sarif output here instead of "
                             "stdout")
    p_lint.set_defaults(func=cmd_lint)

    p_sim = sub.add_parser("simulate", help="execute against an environment")
    p_sim.add_argument("design")
    p_sim.add_argument("--input", action="append", default=[],
                       metavar="NAME=V1,V2,…",
                       help="input stream (repeatable)")
    p_sim.add_argument("--max-steps", type=int, default=100_000)
    p_sim.add_argument("--profile", action="store_true",
                       help="print step/evaluation/cache metrics")
    p_sim.add_argument("--profile-json", metavar="PATH",
                       help="write the metrics as JSON ('-' for stdout)")
    p_sim.add_argument("--naive", action="store_true",
                       help="disable the incremental fast path "
                            "(reference evaluator)")
    p_sim.add_argument("--seed", type=int, default=None,
                       help="resolve firing choice through a seeded RNG "
                            "(reproducible nondeterminism)")
    p_sim.add_argument("--checkpoint-dir", metavar="DIR",
                       help="rotating durable checkpoint store for this "
                            "run (see --checkpoint-every / --resume)")
    p_sim.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="persist a checkpoint every N steps into "
                            "--checkpoint-dir")
    p_sim.add_argument("--resume", action="store_true",
                       help="resume from the newest intact checkpoint in "
                            "--checkpoint-dir")
    p_sim.add_argument("--backend", choices=("interpreter", "vector"),
                       default="interpreter",
                       help="execution backend: the two-phase interpreter "
                            "or the compiled vector backend "
                            "(byte-identical traces)")
    p_sim.set_defaults(func=cmd_simulate)

    p_faults = sub.add_parser(
        "faults", help="run a fault-injection campaign with runtime "
                       "monitors and the deviation oracle")
    p_faults.add_argument("design")
    p_faults.add_argument("--fault", action="append", default=[],
                          metavar="KIND:TARGET[:OPTS]",
                          help="inject one fault, e.g. "
                               "stuck_at:alu.o:value=undef,start=3 "
                               "(repeatable)")
    p_faults.add_argument("--faults-file", metavar="PATH",
                          help="JSON fault list "
                               "(repro.faults.save_faults)")
    p_faults.add_argument("--auto", type=int, default=0, metavar="N",
                          help="generate N structurally valid faults "
                               "from the campaign seed")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="campaign seed: derives per-fault RNGs "
                               "and the firing policy (default 0)")
    p_faults.add_argument("--input", action="append", default=[],
                          metavar="NAME=V1,V2,…",
                          help="input stream (repeatable)")
    p_faults.add_argument("--max-steps", type=int, default=10_000)
    p_faults.add_argument("--format", choices=("text", "json"),
                          default="text")
    p_faults.add_argument("--output", metavar="PATH",
                          help="write the JSON report here "
                               "('-' for stdout)")
    p_faults.add_argument("--checkpoint", metavar="PATH",
                          help="resumable report file: completed faults "
                               "are not re-run")
    p_faults.add_argument("--backend", choices=("interpreter", "vector"),
                          default="interpreter",
                          help="campaign backend: one job per fault, or "
                               "vectorised fault batches sharing each "
                               "golden run (identical verdicts)")
    p_faults.add_argument("--chunk-size", type=int, default=16, metavar="N",
                          help="faults per vecbatch job under --backend "
                               "vector (default 16; never changes verdicts "
                               "or journal keys)")
    _add_engine_options(p_faults)
    p_faults.set_defaults(func=cmd_faults)

    p_syn = sub.add_parser("synthesize", help="run the optimizer")
    p_syn.add_argument("design")
    p_syn.add_argument("--w-time", type=float, default=1.0)
    p_syn.add_argument("--w-area", type=float, default=1.0)
    p_syn.add_argument("--limit", action="append", default=[],
                       metavar="OP=N", help="resource limit (repeatable)")
    p_syn.add_argument("--input", action="append", default=[],
                       metavar="NAME=V1,V2,…",
                       help="environment for measured latency")
    p_syn.add_argument("--max-moves", type=int, default=32)
    p_syn.add_argument("--max-steps", type=int, default=100_000)
    p_syn.add_argument("--output", help="write optimized system as JSON")
    p_syn.add_argument("--portfolio", action="store_true",
                       help="multi-start portfolio search instead of one "
                            "greedy descent")
    p_syn.add_argument("--workers", type=int, default=0,
                       help="fan portfolio starts over N worker processes")
    p_syn.set_defaults(func=cmd_synthesize)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT")
    p_dot.add_argument("design")
    p_dot.add_argument("--view", choices=("datapath", "petri", "system"),
                       default="system")
    p_dot.set_defaults(func=cmd_dot)

    p_exp = sub.add_parser("export", help="emit JSON serialisation")
    p_exp.add_argument("design")
    p_exp.set_defaults(func=cmd_export)

    p_net = sub.add_parser("netlist",
                           help="emit a structural RTL-flavoured netlist")
    p_net.add_argument("design")
    p_net.set_defaults(func=cmd_netlist)

    p_cosim = sub.add_parser(
        "cosim", help="co-simulate the netlist interpretation vs the model")
    p_cosim.add_argument("design")
    p_cosim.add_argument("--input", action="append", default=[],
                         metavar="NAME=V1,V2,…")
    p_cosim.add_argument("--max-steps", type=int, default=100_000)
    p_cosim.set_defaults(func=cmd_cosim)

    p_batch = sub.add_parser(
        "batch", help="run a job file through the batch engine")
    p_batch.add_argument("jobfile", help="JSON job file "
                                         "(repro.runtime.write_job_file)")
    _add_engine_options(p_batch)
    p_batch.add_argument("--results-json", metavar="PATH",
                         help="write per-job results as JSON "
                              "('-' for stdout)")
    p_batch.add_argument("--server", metavar="URL",
                         help="submit over HTTP to a running repro serve "
                              "instead of executing locally (same specs, "
                              "same content-addressed keys)")
    p_batch.add_argument("--tenant", default="default",
                         help="tenant lane for --server submissions")
    p_batch.add_argument("--priority", type=int, default=0,
                         help="priority for --server submissions "
                              "(higher runs first)")
    p_batch.add_argument("--poll", type=float, default=0.1, metavar="S",
                         help="poll interval while waiting on --server")
    p_batch.add_argument("--max-wait", type=float, default=600.0,
                         metavar="S",
                         help="give up waiting on --server after S seconds")
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP execution service (async job API, "
                      "sharded durable queue, shared result store)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8750,
                         help="listen port (0 = pick a free port)")
    p_serve.add_argument("--shards", type=int, default=8,
                         help="queue partition count (default 8)")
    p_serve.add_argument("--service-workers", type=int, default=1,
                         metavar="N",
                         help="in-process worker threads draining the "
                              "queue (default 1; 0 = accept only, attach "
                              "workers remotely)")
    p_serve.add_argument("--rate", type=float, default=None,
                         help="per-tenant token-bucket refill "
                              "(submissions/second; default unlimited)")
    p_serve.add_argument("--burst", type=float, default=None,
                         help="per-tenant token-bucket capacity "
                              "(default 2x rate)")
    p_serve.add_argument("--lease-seconds", type=float, default=60.0,
                         metavar="S",
                         help="re-queue claims not settled within S "
                              "seconds (remote-worker death insurance)")
    p_serve.add_argument("--cache-max-bytes", type=int, default=None,
                         metavar="N",
                         help="LRU-evict the --cache store above N bytes")
    p_serve.add_argument("--cache-max-entries", type=int, default=None,
                         metavar="N",
                         help="LRU-evict the --cache store above N entries")
    p_serve.add_argument("--max-pending", type=int, default=None,
                         metavar="N",
                         help="shed submissions (503 + Retry-After) once "
                              "N jobs are queued (default unbounded)")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         metavar="N",
                         help="answer 503 when more than N mutating HTTP "
                              "requests are being handled at once "
                              "(default unbounded; GETs are exempt)")
    p_serve.add_argument("--drain-grace", type=float, default=5.0,
                         metavar="S",
                         help="on SIGTERM/SIGINT, shed new submissions "
                              "and spend up to S seconds settling "
                              "accepted work before stopping (default 5)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    _add_engine_options(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injecting TCP proxy in front of a repro "
                      "serve instance (deterministic, seeded)")
    p_chaos.add_argument("upstream",
                         help="server to shield, host:port or URL")
    p_chaos.add_argument("--host", default="127.0.0.1")
    p_chaos.add_argument("--port", type=int, default=0,
                         help="proxy listen port (default: pick free)")
    p_chaos.add_argument("--fault", action="append", default=[],
                         metavar="SPEC",
                         help="KIND[:ROUTE[:k=v,...]] — kinds: refuse, "
                              "reset, delay, truncate, corrupt, partition;"
                              " e.g. reset:/v1/jobs:p=0.2,start=3 "
                              "(repeatable; default: a representative mix)")
    p_chaos.add_argument("--policy", default=None, metavar="FILE",
                         help="JSON chaos policy (see --emit-policy)")
    p_chaos.add_argument("--seed", type=int, default=None,
                         help="override the policy seed")
    p_chaos.add_argument("--emit-policy", default=None, metavar="FILE",
                         help="write the resolved policy as JSON and exit")
    p_chaos.add_argument("--max-seconds", type=float, default=None,
                         metavar="S",
                         help="stop after S seconds (default: until "
                              "SIGTERM/SIGINT)")
    p_chaos.add_argument("--io-timeout", type=float, default=30.0,
                         metavar="S",
                         help="per-connection relay timeout (default 30)")
    p_chaos.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write injection counters as JSON on exit "
                              "('-' for stdout)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune a content-addressed result cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser("stats", help="entry/byte counts")
    p_cstats.add_argument("dir", help="cache directory")
    p_cstats.set_defaults(func=cmd_cache)
    p_cprune = cache_sub.add_parser(
        "prune", help="atomically evict least-recently-used entries "
                      "until under the given bounds")
    p_cprune.add_argument("dir", help="cache directory")
    p_cprune.add_argument("--max-bytes", type=int, default=None, metavar="N")
    p_cprune.add_argument("--max-entries", type=int, default=None,
                          metavar="N")
    p_cprune.set_defaults(func=cmd_cache)

    p_sweep = sub.add_parser(
        "sweep", help="fan a synthesis sweep through the batch engine")
    p_sweep.add_argument("design")
    p_sweep.add_argument("--w-time", default="1.0",
                         metavar="F[,F…]", help="objective time weights")
    p_sweep.add_argument("--w-area", default="1.0",
                         metavar="F[,F…]", help="objective area weights")
    p_sweep.add_argument("--seeds", default="",
                         metavar="N[,N…]",
                         help="random-walk seeds (empty = one greedy "
                              "descent per weight point)")
    p_sweep.add_argument("--limit", action="append", default=[],
                         metavar="OP=N", help="resource limit (repeatable)")
    p_sweep.add_argument("--input", action="append", default=[],
                         metavar="NAME=V1,V2,…",
                         help="environment for measured latency")
    p_sweep.add_argument("--max-moves", type=int, default=32)
    p_sweep.add_argument("--max-steps", type=int, default=100_000)
    p_sweep.add_argument("--emit-jobs", metavar="PATH",
                         help="write the job file instead of running it")
    _add_engine_options(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="generative fuzzing with cross-backend differential oracles")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    p_fuzz.add_argument("--cases", type=int, default=200,
                        help="number of cases to generate (default 200)")
    p_fuzz.add_argument("--offset", type=int, default=0,
                        help="case index offset, for sharded campaigns")
    p_fuzz.add_argument("--min-places", type=int, default=4)
    p_fuzz.add_argument("--max-places", type=int, default=24,
                        help="net size range per case (default 4..24)")
    p_fuzz.add_argument("--mutation-rate", type=float, default=0.25,
                        help="fraction of cases that break a Def. 3.2 "
                             "clause (default 0.25)")
    p_fuzz.add_argument("--quirk-rate", type=float, default=0.06,
                        help="fraction of degenerate-shape cases "
                             "(default 0.06)")
    p_fuzz.add_argument("--oracles", default=",".join(
        ("trace", "analysis", "monitor")),
        help="comma-separated oracle subset (default all three)")
    p_fuzz.add_argument("--max-steps", type=int, default=256,
                        help="simulation step cap per case (default 256)")
    p_fuzz.add_argument("--max-markings", type=int, default=4096,
                        help="reachability budget per case (default 4096)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of divergences")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop early after this many seconds")
    p_fuzz.add_argument("--corpus-dir", metavar="DIR",
                        help="pin shrunk divergences as corpus files here")
    p_fuzz.add_argument("--replay", nargs="?", const=_DEFAULT_CORPUS_DIR,
                        metavar="DIR",
                        help="replay the pinned corpus instead of fuzzing "
                             f"(default dir: {_DEFAULT_CORPUS_DIR})")
    p_fuzz.add_argument("--emit-jobs", metavar="PATH",
                        help="write fuzz job specs instead of running")
    p_fuzz.add_argument("--shards", type=int, default=1,
                        help="split --emit-jobs into N sharded jobs")
    p_fuzz.add_argument("--format", choices=("text", "json"),
                        default="text")
    p_fuzz.add_argument("--output", metavar="PATH",
                        help="write the JSON report here instead of stdout")
    p_fuzz.set_defaults(func=cmd_fuzz)

    return parser


#: Most specific classes first — the first match labels the message.
_ERROR_LABELS: tuple[tuple[type, str], ...] = (
    (ValidationError, "validation error"),
    (RuntimeFaultError, "runtime fault"),
    (ExecutionError, "execution error"),
    (TransformError, "transform error"),
    (ParseError, "parse error"),
    (DefinitionError, "definition error"),
    (ReproError, "error"),
)


def _error_label(error: ReproError) -> str:
    for kind, label in _ERROR_LABELS:
        if isinstance(error, kind):
            return label
    return "error"  # pragma: no cover - table covers the hierarchy


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"{_error_label(error)}: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro list | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except KeyboardInterrupt:
        # journals/caches flush per record, so partial state is on disk
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
