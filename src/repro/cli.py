"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

``check DESIGN``
    Compile and run the Definition 3.2 properly-designed verification.
``lint DESIGN… [--all] [--format text|json|sarif] [--fail-on SEV]
[--rules ID,…] [--baseline FILE] [--write-baseline FILE]``
    Run the structural design-rule checker (:mod:`repro.analysis.lint`)
    — no reachability enumeration — and report diagnostics with stable
    rule ids; exits 1 when findings at/above ``--fail-on`` remain.
``simulate DESIGN [--input name=v1,v2,…]… [--max-steps N] [--profile]
[--profile-json PATH] [--naive] [--seed N] [--checkpoint-dir DIR
--checkpoint-every N] [--resume] [--backend interpreter|vector]``
    Execute against an environment and print the external events;
    ``--profile`` adds step/evaluation/cache metrics (``--profile-json``
    emits them machine-readable, ``--naive`` disables the incremental
    fast path, ``--seed`` resolves firing choice through a seeded RNG).
    ``--checkpoint-every`` persists durable snapshots into
    ``--checkpoint-dir``; ``--resume`` continues from the newest intact
    one with a byte-identical trace.  ``--backend vector`` runs the
    compiled vector backend (:mod:`repro.semantics.vector`) instead of
    the interpreter — same trace, compiled execution.
``faults DESIGN [--fault SPEC]… [--faults-file PATH] [--auto N]
[--seed N] [--format text|json] [--output PATH] [--checkpoint PATH]
[--journal PATH] [--resume] [--backend interpreter|vector]``
    Run a fault-injection campaign (:mod:`repro.faults`): each fault is
    injected into its own run with the runtime Definition 3.2 monitors
    attached, and the report classifies every fault as masked /
    detected / silent against the golden run's external event
    structure.  ``--journal`` fsyncs every verdict as it settles;
    ``--resume`` restarts a killed campaign without re-running journaled
    faults.  ``--backend vector`` fans the campaign as vectorised
    16-fault batches sharing each golden run (identical verdicts and
    journal records).  Exits 0 when every fault was masked or detected, 1 on a
    silent deviation, 2 on usage or infrastructure errors, 130 when
    interrupted.
``synthesize DESIGN [--w-time F] [--w-area F] [--limit op=N]… ``
    Run the CAMAD-style optimizer and report the before/after metrics.
``dot DESIGN [--view datapath|petri|system]``
    Emit Graphviz DOT to stdout.
``export DESIGN``
    Emit the JSON serialisation to stdout.
``netlist DESIGN``
    Emit a structural RTL-flavoured netlist (one-hot FSM + datapath).
``cosim DESIGN [--input …]``
    Co-simulate the netlist interpretation against the model semantics.
``batch JOBFILE [--workers N] [--cache DIR] [--timeout S] [--retries N]
[--journal PATH] [--resume] [--quarantine-after N] [--hang-timeout S]``
    Run a job file (see :mod:`repro.runtime.jobs`) through the batch
    engine and report per-job outcomes plus fleet metrics; with a
    ``--journal`` the batch survives SIGKILL and ``--resume`` replays
    settled jobs from the log.  Exits 0 when every job succeeded, 1 on
    failures, 3 when a poison job was quarantined, 130 when interrupted.
``sweep DESIGN [--w-time F,F,…] [--w-area F,F,…] [--seeds N,N,…]``
    Fan a synthesis sweep over the objective-weight × seed grid through
    the batch engine (``--emit-jobs PATH`` writes the job file instead
    of running it).
``list``
    List the built-in design zoo.

``DESIGN`` is either a zoo name (``gcd``, ``diffeq``, …) or a path to a
behavioural source file (``.pdl``) / serialised system (``.json``).

``repro --version`` prints the package version.  Library errors exit
with status 2 and a one-line categorised message (``validation error:``,
``execution error:``, ``transform error:``, …) instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .core import check_properly_designed
from .core.system import DataControlSystem
from .designs import ZOO, pad_outputs
from .errors import (
    DefinitionError,
    ExecutionError,
    ParseError,
    ReproError,
    RuntimeFaultError,
    TransformError,
    ValidationError,
)
from .io import dumps, format_table
from .io.dot import datapath_to_dot, petri_to_dot, system_to_dot
from .semantics import Environment, simulate
from .synthesis import (
    Objective,
    compile_source,
    critical_path,
    optimize,
    optimize_portfolio,
    system_cost,
)


def _load(spec: str) -> tuple[DataControlSystem, Environment]:
    """Resolve a design spec to (system, default environment)."""
    if spec in ZOO:
        design = ZOO[spec]
        return design.build(), design.environment()
    if spec.endswith(".json"):
        from .io import load

        return load(spec), Environment()
    with open(spec, "r", encoding="utf-8") as handle:
        return compile_source(handle.read()), Environment()


def _parse_inputs(pairs: Sequence[str]) -> Environment:
    streams: dict[str, list[int]] = {}
    for pair in pairs:
        name, _, values = pair.partition("=")
        if not values:
            raise ReproError(f"malformed --input {pair!r} "
                             "(expected name=v1,v2,…)")
        streams[name] = [int(v) for v in values.split(",") if v]
    return Environment(streams)


def _environment_for(args: argparse.Namespace,
                     default: Environment) -> Environment:
    """The run's environment: ``--input`` overrides, else the default.

    Shared by every command that accepts ``--input`` (simulate, cosim,
    synthesize, sweep) so the parsing and precedence live in one place.
    """
    return _parse_inputs(args.input) if args.input else default


def _parse_limits(pairs: Sequence[str]) -> dict[str, int]:
    limits: dict[str, int] = {}
    for pair in pairs:
        name, _, cap = pair.partition("=")
        if not cap:
            raise ReproError(f"malformed --limit {pair!r} (expected op=N)")
        limits[name] = int(cap)
    return limits


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [[design.name, design.description] for design in ZOO.values()]
    print(format_table(["design", "description"], rows,
                       title="built-in design zoo"))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    problems = system.validate()
    for problem in problems:
        print(f"warning: {problem}")
    report = check_properly_designed(system)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import (
        baseline_document,
        load_baseline,
        run_lint,
    )
    from .analysis.sarif import sarif_dumps

    designs = list(args.designs)
    if args.all:
        designs = list(ZOO)
    if not designs:
        raise ReproError("no designs given (name designs or pass --all)")
    rules = [r for spec in args.rules for r in spec.split(",") if r] or None
    known = load_baseline(args.baseline) if args.baseline else frozenset()
    reports = []
    for spec in designs:
        system, _env = _load(spec)
        reports.append(run_lint(system, rules=rules).with_baseline(known))
    if args.write_baseline:
        import json as _json

        _write_json(args.write_baseline,
                    _json.dumps(baseline_document(reports), indent=2),
                    "lint baseline")
        return 0
    if args.format == "sarif":
        _write_json(args.output or "-", sarif_dumps(reports).rstrip("\n"),
                    "SARIF log")
    elif args.format == "json":
        import json as _json

        payload = _json.dumps({"format": 1,
                               "reports": [r.as_dict() for r in reports]},
                              indent=2)
        _write_json(args.output or "-", payload, "lint report")
    else:
        for report in reports:
            print(report.to_text())
    failed = [r.system for r in reports if not r.ok(args.fail_on)]
    if failed:
        print(f"lint failed at --fail-on {args.fail_on}: "
              + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    policy = None
    if args.seed is not None:
        from .semantics import SeededMaximalPolicy

        policy = SeededMaximalPolicy(args.seed)
    hooks = []
    checkpoint = None
    if args.resume and not args.checkpoint_dir:
        raise ReproError("--resume requires --checkpoint-dir")
    if args.checkpoint_every and not args.checkpoint_dir:
        raise ReproError("--checkpoint-every requires --checkpoint-dir")
    if args.checkpoint_dir:
        from .runtime.durable import CheckpointHook, CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        if args.checkpoint_every:
            hooks.append(CheckpointHook(store, args.checkpoint_every))
        if args.resume:
            checkpoint = store.load_latest()
            if checkpoint is not None:
                print(f"resuming from checkpoint at step {checkpoint.step}")
            else:
                print("no usable checkpoint found; starting fresh")
    if args.backend == "vector":
        for flag, present in (("--naive", args.naive),
                              ("--profile", args.profile),
                              ("--profile-json", bool(args.profile_json)),
                              ("--checkpoint-dir",
                               bool(args.checkpoint_dir))):
            if present:
                raise ReproError(
                    f"{flag} is an interpreter-backend option; it cannot "
                    "be combined with --backend vector")
    if hooks or checkpoint is not None:
        from .semantics.simulator import Simulator

        kwargs = {"policy": policy} if policy is not None else {}
        sim = Simulator(system, env, fast=not args.naive, hooks=hooks,
                        **kwargs)
        trace = sim.run(max_steps=args.max_steps, from_checkpoint=checkpoint)
    else:
        trace = simulate(system, env, max_steps=args.max_steps,
                         fast=not args.naive, policy=policy,
                         backend=args.backend)
    print(trace.summary())
    for event in trace.events:
        print(f"  step {event.end:4d}  {event}")
    outputs = pad_outputs(system, trace)
    if outputs:
        print("outputs:")
        for pad, values in sorted(outputs.items()):
            print(f"  {pad} = {values}")
    if args.profile and trace.metrics is not None:
        print(trace.metrics.summary())
    if args.profile_json and trace.metrics is not None:
        payload = trace.metrics.to_json(indent=2)
        if args.profile_json == "-":
            print(payload)
        else:
            with open(args.profile_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"profile written to {args.profile_json}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import (
        FaultSpec,
        generate_faults,
        load_faults,
        run_campaign,
    )

    system, env = _load(args.design)
    env = _environment_for(args, env)
    faults = [FaultSpec.parse(spec) for spec in args.fault]
    if args.faults_file:
        faults.extend(load_faults(args.faults_file))
    if args.auto:
        faults.extend(generate_faults(system, args.auto, seed=args.seed))
    if not faults:
        raise ReproError(
            "no faults given (use --fault, --faults-file or --auto N)")
    from .runtime.supervisor import GracefulShutdown

    with _make_engine(args) as engine, GracefulShutdown() as shutdown:
        report = run_campaign(
            system, faults, env, engine=engine, seed=args.seed,
            max_steps=args.max_steps, checkpoint_path=args.checkpoint,
            journal_path=args.journal, resume=args.resume,
            stop_event=shutdown.stop_event, backend=args.backend)
    interrupted = shutdown.stop_event.is_set()
    if args.format == "json":
        _write_json(args.output or "-",
                    _json.dumps(report.to_dict(), indent=2, sort_keys=True),
                    "campaign report")
    else:
        if args.output:
            _write_json(args.output,
                        _json.dumps(report.to_dict(), indent=2,
                                    sort_keys=True),
                        "campaign report")
        print(report.to_text())
    if interrupted:
        print("campaign interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    return report.exit_code


def cmd_synthesize(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    objective = Objective(
        w_time=args.w_time, w_area=args.w_area,
        limits=_parse_limits(args.limit) or None,
        environment=env if env.sequences or not system.datapath.input_vertices()
        else None,
        max_steps=args.max_steps,
    )
    if args.portfolio:
        result = optimize_portfolio(system, objective,
                                    max_moves=args.max_moves,
                                    workers=args.workers)
    else:
        result = optimize(system, objective, max_moves=args.max_moves)
    print(result.summary())
    rows = [
        ["critical path (steps)", critical_path(system).steps,
         critical_path(result.system).steps],
        ["area", round(system_cost(system).total, 2),
         round(system_cost(result.system).total, 2)],
        ["functional units",
         sum(1 for v in system.datapath.vertices.values()
             if v.is_combinational),
         sum(1 for v in result.system.datapath.vertices.values()
             if v.is_combinational)],
    ]
    print(format_table(["metric", "before", "after"], rows))
    if args.output:
        from .io import save

        save(result.system, args.output)
        print(f"optimized system written to {args.output}")
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    renderers = {
        "datapath": lambda: datapath_to_dot(system.datapath),
        "petri": lambda: petri_to_dot(system.net),
        "system": lambda: system_to_dot(system),
    }
    print(renderers[args.view]())
    return 0


def cmd_netlist(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    from .io import to_verilog

    print(to_verilog(system))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    system, _env = _load(args.design)
    print(dumps(system))
    return 0


def cmd_cosim(args: argparse.Namespace) -> int:
    system, env = _load(args.design)
    env = _environment_for(args, env)
    from .io.rtl_sim import crosscheck

    try:
        trace = crosscheck(system, env, max_cycles=args.max_steps)
    except AssertionError as error:
        print(f"MISMATCH: {error}", file=sys.stderr)
        return 1
    print(f"RTL == model over {trace.cycles} cycle(s)")
    for pad, values in sorted(trace.outputs.items()):
        print(f"  {pad} = {values}")
    return 0


def _make_engine(args: argparse.Namespace, *, journal=None):
    """Build an ExecutionEngine (and optional cache) from CLI options."""
    from .runtime import ExecutionEngine, ResultCache, SupervisorConfig

    cache = ResultCache(args.cache) if args.cache else None
    supervisor = SupervisorConfig(
        hang_timeout=getattr(args, "hang_timeout", None),
        quarantine_after=getattr(args, "quarantine_after", 3))
    return ExecutionEngine(workers=args.workers, timeout=args.timeout,
                           retries=args.retries, cache=cache,
                           supervisor=supervisor, journal=journal)


def _engine_journal(args: argparse.Namespace):
    """Open the batch-level write-ahead journal and its resume map.

    Returns ``(journal, resume_from)`` — with ``--resume`` the existing
    journal is scanned first (torn tails repaired) and every settled key
    with a payload is replayed instead of re-executed.
    """
    if not getattr(args, "journal", None):
        return None, None
    from .runtime import Journal, iter_settled, read_journal

    resume_from = None
    if args.resume:
        resume_from = {
            key: record.get("payload")
            for key, record in iter_settled(read_journal(args.journal))
            if record.get("payload") is not None}
    return Journal(args.journal, fresh=not args.resume), resume_from


def _report_batch(batch, *, metrics_json: str | None = None,
                  results_json: str | None = None) -> int:
    """Print a per-job table plus fleet metrics; nonzero if any job failed."""
    rows = []
    for result in batch:
        rows.append([
            result.key[:10],
            result.spec.kind,
            result.spec.label or "-",
            result.status,
            result.attempts,
            f"{result.run_seconds * 1e3:.1f}",
            result.error or "-",
        ])
    print(format_table(
        ["key", "kind", "label", "status", "attempts", "run_ms", "error"],
        rows, title=f"batch of {len(batch)} job(s)"))
    print(batch.metrics.summary())
    if metrics_json:
        _write_json(metrics_json, batch.metrics.to_json(indent=2),
                    "fleet metrics")
    if results_json:
        import json as _json

        payload = _json.dumps([r.as_dict() for r in batch], indent=2,
                              sort_keys=True)
        _write_json(results_json, payload, "job results")
    if batch.metrics.interrupted:
        print("batch interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    if batch.ok:
        return 0
    # 3 distinguishes "a poison job was quarantined" from plain failure
    return 3 if batch.quarantined() else 1


def _write_json(target: str, payload: str, what: str) -> None:
    if target == "-":
        print(payload)
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    print(f"{what} written to {target}")


def cmd_batch(args: argparse.Namespace) -> int:
    from .runtime import GracefulShutdown, load_job_file

    jobs = load_job_file(args.jobfile)
    journal, resume_from = _engine_journal(args)
    try:
        with _make_engine(args, journal=journal) as engine, \
                GracefulShutdown() as shutdown:
            batch = engine.run(jobs, stop_event=shutdown.stop_event,
                               resume_from=resume_from)
    finally:
        if journal is not None:
            journal.close()
    return _report_batch(batch, metrics_json=args.metrics_json,
                         results_json=args.results_json)


def _parse_floats(text: str) -> list[float]:
    return [float(v) for v in text.split(",") if v]


def _parse_ints(text: str) -> list[int]:
    return [int(v) for v in text.split(",") if v]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .runtime import synthesize_job, write_job_file

    system, env = _load(args.design)
    env = _environment_for(args, env)
    environment = (env if env.sequences
                   or not system.datapath.input_vertices() else None)
    w_times = _parse_floats(args.w_time)
    w_areas = _parse_floats(args.w_area)
    seeds = _parse_ints(args.seeds) if args.seeds else []
    jobs = []
    for w_time in w_times:
        for w_area in w_areas:
            objective = Objective(w_time=w_time, w_area=w_area,
                                  limits=_parse_limits(args.limit) or None,
                                  environment=environment,
                                  max_steps=args.max_steps)
            point = f"{args.design}:w_time={w_time:g},w_area={w_area:g}"
            if seeds:
                jobs.extend(
                    synthesize_job(system, objective,
                                   algorithm="random+greedy", seed=seed,
                                   max_moves=args.max_moves,
                                   label=f"{point},seed={seed}")
                    for seed in seeds)
            else:
                jobs.append(synthesize_job(system, objective,
                                           algorithm="greedy",
                                           max_moves=args.max_moves,
                                           label=point))
    if args.emit_jobs:
        write_job_file(args.emit_jobs, jobs)
        print(f"{len(jobs)} job(s) written to {args.emit_jobs}")
        return 0
    from .runtime import GracefulShutdown

    journal, resume_from = _engine_journal(args)
    try:
        with _make_engine(args, journal=journal) as engine, \
                GracefulShutdown() as shutdown:
            batch = engine.run(jobs, stop_event=shutdown.stop_event,
                               resume_from=resume_from)
    finally:
        if journal is not None:
            journal.close()
    rows = []
    for result in batch:
        payload = result.payload or {}
        rows.append([
            result.spec.label,
            result.status,
            f"{payload.get('initial_objective', float('nan')):.2f}"
            if payload else "-",
            f"{payload.get('final_objective', float('nan')):.2f}"
            if payload else "-",
            len(payload.get("moves", [])) if payload else "-",
        ])
    print(format_table(
        ["sweep point", "status", "initial", "final", "moves"],
        rows, title=f"synthesis sweep over {len(batch)} point(s)"))
    print(batch.metrics.summary())
    if args.metrics_json:
        _write_json(args.metrics_json, batch.metrics.to_json(indent=2),
                    "fleet metrics")
    if batch.metrics.interrupted:
        print("sweep interrupted; resume with --journal/--resume",
              file=sys.stderr)
        return 130
    return 0 if batch.ok else 1


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = serial in-process)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds (pool backend)")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a failed/crashed job")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--metrics-json", metavar="PATH",
                        help="write fleet metrics as JSON ('-' for stdout)")
    parser.add_argument("--journal", metavar="PATH",
                        help="write-ahead journal (fsynced per record) "
                             "making the run resumable after a crash")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the --journal instead of "
                             "starting fresh (settled jobs are not re-run)")
    parser.add_argument("--quarantine-after", type=int, default=3,
                        metavar="N",
                        help="quarantine a job after N worker crashes on "
                             "its key (default 3)")
    parser.add_argument("--hang-timeout", type=float, default=None,
                        metavar="S",
                        help="SIGKILL workers whose heartbeat is silent "
                             "for S seconds (default: hang detection off)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data/control flow hardware synthesis "
                    "(Peng, ICPP 1988 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in design zoo") \
        .set_defaults(func=cmd_list)

    p_check = sub.add_parser("check",
                             help="verify Definition 3.2 (properly designed)")
    p_check.add_argument("design")
    p_check.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint", help="run the structural design-rule checker")
    p_lint.add_argument("designs", nargs="*",
                        help="zoo names / .pdl / .json files")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every design in the zoo")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    p_lint.add_argument("--fail-on", default="error",
                        choices=("info", "warning", "error", "never"),
                        help="exit nonzero when a finding at/above this "
                             "severity remains (default: error)")
    p_lint.add_argument("--rules", action="append", default=[],
                        metavar="ID[,ID…]",
                        help="run only these rule ids (repeatable)")
    p_lint.add_argument("--baseline", metavar="PATH",
                        help="suppress findings whose fingerprints are "
                             "recorded in this baseline file")
    p_lint.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the baseline "
                             "and exit 0")
    p_lint.add_argument("--output", metavar="PATH",
                        help="write json/sarif output here instead of "
                             "stdout")
    p_lint.set_defaults(func=cmd_lint)

    p_sim = sub.add_parser("simulate", help="execute against an environment")
    p_sim.add_argument("design")
    p_sim.add_argument("--input", action="append", default=[],
                       metavar="NAME=V1,V2,…",
                       help="input stream (repeatable)")
    p_sim.add_argument("--max-steps", type=int, default=100_000)
    p_sim.add_argument("--profile", action="store_true",
                       help="print step/evaluation/cache metrics")
    p_sim.add_argument("--profile-json", metavar="PATH",
                       help="write the metrics as JSON ('-' for stdout)")
    p_sim.add_argument("--naive", action="store_true",
                       help="disable the incremental fast path "
                            "(reference evaluator)")
    p_sim.add_argument("--seed", type=int, default=None,
                       help="resolve firing choice through a seeded RNG "
                            "(reproducible nondeterminism)")
    p_sim.add_argument("--checkpoint-dir", metavar="DIR",
                       help="rotating durable checkpoint store for this "
                            "run (see --checkpoint-every / --resume)")
    p_sim.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="persist a checkpoint every N steps into "
                            "--checkpoint-dir")
    p_sim.add_argument("--resume", action="store_true",
                       help="resume from the newest intact checkpoint in "
                            "--checkpoint-dir")
    p_sim.add_argument("--backend", choices=("interpreter", "vector"),
                       default="interpreter",
                       help="execution backend: the two-phase interpreter "
                            "or the compiled vector backend "
                            "(byte-identical traces)")
    p_sim.set_defaults(func=cmd_simulate)

    p_faults = sub.add_parser(
        "faults", help="run a fault-injection campaign with runtime "
                       "monitors and the deviation oracle")
    p_faults.add_argument("design")
    p_faults.add_argument("--fault", action="append", default=[],
                          metavar="KIND:TARGET[:OPTS]",
                          help="inject one fault, e.g. "
                               "stuck_at:alu.o:value=undef,start=3 "
                               "(repeatable)")
    p_faults.add_argument("--faults-file", metavar="PATH",
                          help="JSON fault list "
                               "(repro.faults.save_faults)")
    p_faults.add_argument("--auto", type=int, default=0, metavar="N",
                          help="generate N structurally valid faults "
                               "from the campaign seed")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="campaign seed: derives per-fault RNGs "
                               "and the firing policy (default 0)")
    p_faults.add_argument("--input", action="append", default=[],
                          metavar="NAME=V1,V2,…",
                          help="input stream (repeatable)")
    p_faults.add_argument("--max-steps", type=int, default=10_000)
    p_faults.add_argument("--format", choices=("text", "json"),
                          default="text")
    p_faults.add_argument("--output", metavar="PATH",
                          help="write the JSON report here "
                               "('-' for stdout)")
    p_faults.add_argument("--checkpoint", metavar="PATH",
                          help="resumable report file: completed faults "
                               "are not re-run")
    p_faults.add_argument("--backend", choices=("interpreter", "vector"),
                          default="interpreter",
                          help="campaign backend: one job per fault, or "
                               "vectorised 16-fault batches sharing each "
                               "golden run (identical verdicts)")
    _add_engine_options(p_faults)
    p_faults.set_defaults(func=cmd_faults)

    p_syn = sub.add_parser("synthesize", help="run the optimizer")
    p_syn.add_argument("design")
    p_syn.add_argument("--w-time", type=float, default=1.0)
    p_syn.add_argument("--w-area", type=float, default=1.0)
    p_syn.add_argument("--limit", action="append", default=[],
                       metavar="OP=N", help="resource limit (repeatable)")
    p_syn.add_argument("--input", action="append", default=[],
                       metavar="NAME=V1,V2,…",
                       help="environment for measured latency")
    p_syn.add_argument("--max-moves", type=int, default=32)
    p_syn.add_argument("--max-steps", type=int, default=100_000)
    p_syn.add_argument("--output", help="write optimized system as JSON")
    p_syn.add_argument("--portfolio", action="store_true",
                       help="multi-start portfolio search instead of one "
                            "greedy descent")
    p_syn.add_argument("--workers", type=int, default=0,
                       help="fan portfolio starts over N worker processes")
    p_syn.set_defaults(func=cmd_synthesize)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT")
    p_dot.add_argument("design")
    p_dot.add_argument("--view", choices=("datapath", "petri", "system"),
                       default="system")
    p_dot.set_defaults(func=cmd_dot)

    p_exp = sub.add_parser("export", help="emit JSON serialisation")
    p_exp.add_argument("design")
    p_exp.set_defaults(func=cmd_export)

    p_net = sub.add_parser("netlist",
                           help="emit a structural RTL-flavoured netlist")
    p_net.add_argument("design")
    p_net.set_defaults(func=cmd_netlist)

    p_cosim = sub.add_parser(
        "cosim", help="co-simulate the netlist interpretation vs the model")
    p_cosim.add_argument("design")
    p_cosim.add_argument("--input", action="append", default=[],
                         metavar="NAME=V1,V2,…")
    p_cosim.add_argument("--max-steps", type=int, default=100_000)
    p_cosim.set_defaults(func=cmd_cosim)

    p_batch = sub.add_parser(
        "batch", help="run a job file through the batch engine")
    p_batch.add_argument("jobfile", help="JSON job file "
                                         "(repro.runtime.write_job_file)")
    _add_engine_options(p_batch)
    p_batch.add_argument("--results-json", metavar="PATH",
                         help="write per-job results as JSON "
                              "('-' for stdout)")
    p_batch.set_defaults(func=cmd_batch)

    p_sweep = sub.add_parser(
        "sweep", help="fan a synthesis sweep through the batch engine")
    p_sweep.add_argument("design")
    p_sweep.add_argument("--w-time", default="1.0",
                         metavar="F[,F…]", help="objective time weights")
    p_sweep.add_argument("--w-area", default="1.0",
                         metavar="F[,F…]", help="objective area weights")
    p_sweep.add_argument("--seeds", default="",
                         metavar="N[,N…]",
                         help="random-walk seeds (empty = one greedy "
                              "descent per weight point)")
    p_sweep.add_argument("--limit", action="append", default=[],
                         metavar="OP=N", help="resource limit (repeatable)")
    p_sweep.add_argument("--input", action="append", default=[],
                         metavar="NAME=V1,V2,…",
                         help="environment for measured latency")
    p_sweep.add_argument("--max-moves", type=int, default=32)
    p_sweep.add_argument("--max-steps", type=int, default=100_000)
    p_sweep.add_argument("--emit-jobs", metavar="PATH",
                         help="write the job file instead of running it")
    _add_engine_options(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    return parser


#: Most specific classes first — the first match labels the message.
_ERROR_LABELS: tuple[tuple[type, str], ...] = (
    (ValidationError, "validation error"),
    (RuntimeFaultError, "runtime fault"),
    (ExecutionError, "execution error"),
    (TransformError, "transform error"),
    (ParseError, "parse error"),
    (DefinitionError, "definition error"),
    (ReproError, "error"),
)


def _error_label(error: ReproError) -> str:
    for kind, label in _ERROR_LABELS:
        if isinstance(error, kind):
            return label
    return "error"  # pragma: no cover - table covers the hierarchy


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"{_error_label(error)}: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro list | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except KeyboardInterrupt:
        # journals/caches flush per record, so partial state is on disk
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
