"""Incidence matrix and P/T-invariants of a Petri net.

The incidence matrix ``N`` has one row per place and one column per
transition, with ``N[p, t] = post(t)[p] - pre(t)[p]`` (token change at
place ``p`` caused by firing ``t``).  Two classical linear-algebraic
consequences are used in the library:

* **State equation** — firing a step with count vector ``σ`` takes marking
  ``m`` to ``m + N·σ``; tests use this as an executable invariant of the
  token game (a property-based check of :mod:`repro.petri.execution`).
* **P-invariants** — integer vectors ``y ≥ 0`` with ``yᵀ·N = 0``.  The
  weighted token sum ``yᵀ·m`` is constant under firing; a net covered by
  positive P-invariants with ``yᵀ·M0 = 1`` is structurally safe, which the
  properly-designed checker exploits as a fast pre-check before falling
  back to reachability analysis.

The null-space computation is exact (fractions.Fraction Gaussian
elimination), so invariants are exact integer vectors — floating point
rank decisions would be unacceptable here.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Sequence

import numpy as np

from .marking import Marking
from .net import PetriNet

_ZERO = Fraction(0)
_ONE = Fraction(1)


def incidence_matrix(net: PetriNet) -> np.ndarray:
    """The |S| × |T| incidence matrix with integer entries.

    Row order follows ``net.place_names()``; column order follows
    ``net.transition_names()``.
    """
    places = net.place_names()
    transitions = net.transition_names()
    p_index = {p: i for i, p in enumerate(places)}
    matrix = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for j, t in enumerate(transitions):
        for p in net.preset(t):
            matrix[p_index[p], j] -= 1
        for p in net.postset(t):
            matrix[p_index[p], j] += 1
    return matrix


def state_equation_delta(net: PetriNet, counts: dict[str, int]) -> dict[str, int]:
    """Marking change ``N·σ`` for a firing-count vector ``σ``."""
    matrix = incidence_matrix(net)
    sigma = np.zeros(len(net.transitions), dtype=np.int64)
    for j, t in enumerate(net.transition_names()):
        sigma[j] = counts.get(t, 0)
    delta = matrix @ sigma
    return {p: int(delta[i]) for i, p in enumerate(net.place_names()) if delta[i]}


def apply_state_equation(net: PetriNet, marking: Marking, counts: dict[str, int]) -> dict[str, int]:
    """``m + N·σ`` as a plain dict (may be negative if σ is not realisable)."""
    delta = state_equation_delta(net, counts)
    result = {p: marking[p] for p in net.place_names()}
    for p, d in delta.items():
        result[p] = result.get(p, 0) + d
    return result


def _rational_nullspace(matrix: np.ndarray) -> list[list[Fraction]]:
    """Exact basis of the (right) null space of ``matrix`` over ℚ.

    Rows are kept as sparse ``{col: Fraction}`` dicts: Petri-net
    incidence matrices have only a handful of nonzeros per row (a
    transition touches its pre- and postset, nothing else), so sparse
    elimination is near-linear where a dense sweep is cubic.  The
    elimination keeps every pivot row at 1 on its own pivot column and
    0 on all other pivot columns; the free-column construction below
    only needs that property, not leftmost-pivot echelon form.
    """
    rows_n, cols = matrix.shape
    pivot_rows: dict[int, dict[int, Fraction]] = {}
    for i in range(rows_n):
        row = {j: Fraction(int(matrix[i, j])) for j in range(cols)
               if matrix[i, j]}
        # eliminate existing pivot columns; the subtractions only ever
        # introduce entries on free columns, so one pass suffices
        for col in sorted(c for c in row if c in pivot_rows):
            factor = row.pop(col)
            for k, v in pivot_rows[col].items():
                if k == col:
                    continue
                value = row.get(k, _ZERO) - factor * v
                if value:
                    row[k] = value
                else:
                    row.pop(k, None)
        if not row:
            continue
        col = min(row)
        pivot = row.pop(col)
        row = {k: v / pivot for k, v in row.items()}
        row[col] = _ONE
        for prow in pivot_rows.values():
            factor = prow.pop(col, None)
            if factor is None:
                continue
            for k, v in row.items():
                if k == col:
                    continue
                value = prow.get(k, _ZERO) - factor * v
                if value:
                    prow[k] = value
                else:
                    prow.pop(k, None)
        pivot_rows[col] = row
    basis: list[list[Fraction]] = []
    for free in range(cols):
        if free in pivot_rows:
            continue
        vector = [_ZERO] * cols
        vector[free] = _ONE
        for col, prow in pivot_rows.items():
            weight = prow.get(free)
            if weight:
                vector[col] = -weight
        basis.append(vector)
    return basis


def _to_integer_vector(vector: Sequence[Fraction]) -> list[int]:
    """Scale a rational vector to the smallest collinear integer vector."""
    denominators = [value.denominator for value in vector]
    lcm = 1
    for d in denominators:
        lcm = lcm * d // gcd(lcm, d)
    ints = [int(value * lcm) for value in vector]
    divisor = 0
    for value in ints:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        ints = [value // divisor for value in ints]
    return ints


def p_invariants(net: PetriNet) -> list[dict[str, int]]:
    """A basis of P-invariants (``yᵀ·N = 0``) as place-weight dicts.

    The basis spans the left null space; individual basis vectors may have
    negative entries (semi-positive invariants are a cone, not a space —
    callers interested in safety should use :func:`positive_p_invariants`).
    """
    matrix = incidence_matrix(net)
    basis = _rational_nullspace(matrix.T)
    places = net.place_names()
    result = []
    for vector in basis:
        ints = _to_integer_vector(vector)
        result.append({p: w for p, w in zip(places, ints) if w})
    return result


def t_invariants(net: PetriNet) -> list[dict[str, int]]:
    """A basis of T-invariants (``N·x = 0``) as transition-count dicts.

    A realisable T-invariant describes a firing sequence that reproduces
    the marking it started from — the cyclic steady state of a loop.
    """
    matrix = incidence_matrix(net)
    basis = _rational_nullspace(matrix)
    transitions = net.transition_names()
    result = []
    for vector in basis:
        ints = _to_integer_vector(vector)
        result.append({t: w for t, w in zip(transitions, ints) if w})
    return result


def positive_p_invariants(net: PetriNet) -> list[dict[str, int]]:
    """Semi-positive P-invariants found in (combinations of) the basis.

    This is a pragmatic extractor, not a complete Farkas enumeration: it
    returns basis vectors that are already semi-positive, after flipping
    sign where the vector is semi-negative.  Sufficient for the structural
    safety pre-check on the nets produced by the synthesis frontend, whose
    sequential regions are covered by {0,1} invariants.
    """
    result = []
    for invariant in p_invariants(net):
        values = list(invariant.values())
        if all(v >= 0 for v in values):
            result.append(invariant)
        elif all(v <= 0 for v in values):
            result.append({p: -w for p, w in invariant.items()})
    return result


def invariant_token_sum(invariant: dict[str, int], marking: Marking) -> int:
    """Weighted token count ``yᵀ·m`` of a marking under an invariant."""
    return sum(weight * marking[place] for place, weight in invariant.items())


def structurally_safe_places(net: PetriNet) -> frozenset[str]:
    """Places proven safe by a semi-positive P-invariant argument.

    A place ``p`` is structurally safe if some semi-positive invariant
    ``y`` has ``y[p] ≥ 1`` and ``yᵀ·M0 ≤ 1``: the weighted token sum is
    conserved, so ``p`` can never hold two tokens.
    """
    initial = net.initial_marking()
    safe: set[str] = set()
    for invariant in positive_p_invariants(net):
        if invariant_token_sum(invariant, initial) <= 1:
            safe.update(p for p, w in invariant.items() if w >= 1)
    return frozenset(safe)
