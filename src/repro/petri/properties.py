"""Behavioural properties of nets: safety, conflicts, deadlock, liveness.

These are the net-level ingredients of the properly-designed check
(Definition 3.2); the full check, which also involves the data path, lives
in :mod:`repro.core.properly_designed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .invariants import structurally_safe_places
from .marking import Marking
from .net import PetriNet
from .reachability import ReachabilityGraph, explore


@dataclass
class SafetyReport:
    """Outcome of a safety (1-boundedness) analysis.

    When the net is unsafe, ``witness`` is a reachable marking with more
    than one token on some place and ``violating_place`` names that place
    (the first over-tokened place of the first such marking found).
    """

    safe: bool
    decided: bool
    method: str
    witness: Marking | None = None
    violating_place: str | None = None
    markings_explored: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.safe and self.decided


def unsafe_witness_message(place: str, marking: Marking) -> str:
    """Human-readable unsafety witness, shared by checker and lint rule."""
    return (f"place {place!r} holds {marking[place]} tokens "
            f"at marking {marking!r}")


def check_safety(net: PetriNet, *, max_markings: int = 100_000) -> SafetyReport:
    """Decide safety, trying a structural proof before exploration.

    1.  If every place is covered by a semi-positive P-invariant with an
        initial weighted token sum ≤ 1, the net is safe — no exploration
        needed (fast path for large synthesised controllers).
    2.  Otherwise fall back to reachability exploration with token bound 1.
    """
    covered = structurally_safe_places(net)
    if covered.issuperset(net.places):
        return SafetyReport(safe=True, decided=True, method="p-invariant")
    graph = explore(net, max_markings=max_markings, token_bound=1)
    if graph.bounded_by > 1:
        witness = None
        violating_place = None
        for m in graph.markings:
            over = sorted(p for p in m if m[p] > 1)
            if over:
                witness, violating_place = m, over[0]
                break
        return SafetyReport(
            safe=False, decided=True, method="reachability",
            witness=witness, violating_place=violating_place,
            markings_explored=graph.num_markings,
        )
    return SafetyReport(
        safe=True, decided=graph.complete, method="reachability",
        markings_explored=graph.num_markings,
    )


def structural_conflicts(net: PetriNet) -> list[tuple[str, str, str]]:
    """Transition pairs competing for a shared input place.

    Returns ``(place, t1, t2)`` triples with ``t1 < t2``.  These are the
    *potential* conflicts of Definition 3.2(3); whether they are resolved
    by mutually exclusive guards is checked at the system level, where
    guard ports are known.
    """
    conflicts: list[tuple[str, str, str]] = []
    for place in net.places:
        sharers = sorted(net.postset(place))
        for i, t1 in enumerate(sharers):
            for t2 in sharers[i + 1:]:
                conflicts.append((place, t1, t2))
    return conflicts


@dataclass
class LivenessReport:
    """Deadlock/termination structure of the reachable marking graph."""

    deadlock_free: bool
    terminating: bool
    deadlock_markings: list[Marking] = field(default_factory=list)
    terminal_markings: list[Marking] = field(default_factory=list)
    complete: bool = True


def check_liveness(net: PetriNet, *, max_markings: int = 100_000) -> LivenessReport:
    """Classify quiescent markings into proper terminations and deadlocks.

    A quiescent marking with zero tokens is a proper termination
    (Definition 3.1(6)); one with tokens remaining is a deadlock.
    """
    graph: ReachabilityGraph = explore(net, max_markings=max_markings)
    deadlocks = [graph.markings[i] for i in graph.deadlocks]
    terminals = [graph.markings[i] for i in graph.terminals]
    return LivenessReport(
        deadlock_free=not deadlocks,
        terminating=bool(terminals) or bool(deadlocks),
        deadlock_markings=deadlocks,
        terminal_markings=terminals,
        complete=graph.complete,
    )


def is_marked_graph(net: PetriNet) -> bool:
    """True iff every place has at most one input and one output transition.

    Marked graphs (decision-free nets) are conflict-free by construction;
    the synthesis frontend emits marked-graph regions for straight-line
    code and only introduces place-sharing at guarded branch points.
    """
    return all(
        len(net.preset(p)) <= 1 and len(net.postset(p)) <= 1 for p in net.places
    )


def is_state_machine(net: PetriNet) -> bool:
    """True iff every transition has exactly one input and one output place."""
    return all(
        len(net.preset(t)) == 1 and len(net.postset(t)) == 1
        for t in net.transitions
    )
