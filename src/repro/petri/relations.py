"""Structural ordering relations over control states (Definition 2.3).

Given the flow relation ``F`` of a net, the paper defines:

* ``F⁺`` — the transitive closure of ``F`` over all control structure
  elements ``X = S ∪ T``;
* ``S_i ⇒ S_j``  iff ``(S_i, S_j) ∈ F⁺``  (S_j is flow-reachable from S_i);
* ``α = ⇒ ∪ ⇐`` — *sequential order*;
* ``∥ = (S × S) ∖ α`` — *parallel order* (we exclude the diagonal: a place
  is not considered parallel with itself).

The closure is computed with a vectorised boolean-matrix repeated-squaring
kernel (numpy), which on the net sizes produced by the synthesis frontend
(hundreds of elements) beats a Python-level DFS by a wide margin and is the
hot path of the data-invariance checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .net import PetriNet


def transitive_closure_bool(adjacency: np.ndarray) -> np.ndarray:
    """Transitive closure of a boolean adjacency matrix.

    Uses repeated squaring: ``R ∪ R² ∪ … ∪ R^n`` stabilises after
    ``⌈log₂ n⌉`` boolean matrix products.  The input is not modified.
    """
    n = adjacency.shape[0]
    if n == 0:
        return adjacency.copy()
    reach = adjacency.astype(bool).copy()
    while True:
        # one squaring step: paths of length ≤ 2k from paths of length ≤ k
        new = reach | (reach @ reach)
        if np.array_equal(new, reach):
            return new
        reach = new


@dataclass
class StructuralRelations:
    """Precomputed ``⇒`` / ``α`` / ``∥`` relations for one net.

    The object snapshots the net's structure at construction time; if the
    net is mutated afterwards, build a new instance.
    """

    net: PetriNet

    def __post_init__(self) -> None:
        self._elements: list[str] = list(self.net.places) + list(self.net.transitions)
        self._index: dict[str, int] = {e: i for i, e in enumerate(self._elements)}
        n = len(self._elements)
        adjacency = np.zeros((n, n), dtype=bool)
        for source, target in self.net.arcs():
            adjacency[self._index[source], self._index[target]] = True
        self._closure = transitive_closure_bool(adjacency)
        self._num_places = len(self.net.places)
        self._place_names: list[str] = list(self.net.places)

    # ------------------------------------------------------------------
    def reaches(self, a: str, b: str) -> bool:
        """``a F⁺ b`` over arbitrary control structure elements."""
        return bool(self._closure[self._index[a], self._index[b]])

    def precedes(self, s_i: str, s_j: str) -> bool:
        """``S_i ⇒ S_j`` (Definition 2.3(3))."""
        return self.reaches(s_i, s_j)

    def sequential(self, s_i: str, s_j: str) -> bool:
        """``S_i α S_j`` — sequential order (Definition 2.3(4))."""
        return self.precedes(s_i, s_j) or self.precedes(s_j, s_i)

    def parallel(self, s_i: str, s_j: str) -> bool:
        """``S_i ∥ S_j`` — parallel order (Definition 2.3(5)).

        Distinct places that are not sequentially ordered.  The diagonal is
        excluded: asking whether a place is parallel with itself returns
        ``False`` (it trivially shares its own associated resources).
        """
        if s_i == s_j:
            return False
        return not self.sequential(s_i, s_j)

    # ------------------------------------------------------------------
    @cached_property
    def place_closure(self) -> np.ndarray:
        """Boolean matrix of ``⇒`` restricted to places (stable order)."""
        idx = [self._index[p] for p in self._place_names]
        return self._closure[np.ix_(idx, idx)]

    @cached_property
    def parallel_pairs(self) -> frozenset[frozenset[str]]:
        """All unordered pairs of places in parallel order."""
        closure = self.place_closure
        either = closure | closure.T
        pairs: set[frozenset[str]] = set()
        n = len(self._place_names)
        rows, cols = np.where(~either)
        for i, j in zip(rows.tolist(), cols.tolist()):
            if i < j:
                pairs.add(frozenset((self._place_names[i], self._place_names[j])))
        return frozenset(pairs)

    @cached_property
    def precedence_pairs(self) -> frozenset[tuple[str, str]]:
        """All ordered place pairs ``(S_i, S_j)`` with ``S_i ⇒ S_j``."""
        closure = self.place_closure
        rows, cols = np.where(closure)
        return frozenset(
            (self._place_names[i], self._place_names[j])
            for i, j in zip(rows.tolist(), cols.tolist())
        )

    def place_names(self) -> list[str]:
        return list(self._place_names)

    def on_cycle(self, element: str) -> bool:
        """True iff the element lies on a directed cycle of ``F``."""
        i = self._index[element]
        return bool(self._closure[i, i])


def dominators(net: PetriNet) -> dict[str, frozenset[str]]:
    """Dominator sets over the flow graph of all net elements.

    A virtual root feeds every initially marked place; element ``d``
    dominates element ``n`` iff every path from the root to ``n`` passes
    through ``d``.  Unreachable elements get an empty dominator set.

    Used for the control-dependence clause of Definition 4.3(d): a place
    dominated by a *guarded* transition can only be marked after that
    guard fired, so its marking depends on the guard's source registers —
    for every branch of an if and every body state of a while, not just
    the states adjacent to the guarded transition.
    """
    elements = list(net.places) + list(net.transitions)
    preds: dict[str, set[str]] = {e: set(net.preset(e)) for e in elements}
    roots = [p for p in net.places if net.initial.get(p, 0) > 0]

    # forward reachability from the roots
    reachable: set[str] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(net.postset(node))

    universe = frozenset(e for e in elements if e in reachable)
    dom: dict[str, frozenset[str]] = {}
    for element in elements:
        if element not in reachable:
            dom[element] = frozenset()
        elif element in roots:
            dom[element] = frozenset({element})
        else:
            dom[element] = universe
    changed = True
    while changed:
        changed = False
        for element in elements:
            if element not in reachable or element in roots:
                continue
            incoming = [dom[p] for p in preds[element] if p in reachable]
            if incoming:
                meet = frozenset.intersection(*incoming)
            else:  # pragma: no cover - reachable node must have a pred
                meet = frozenset()
            updated = meet | {element}
            if updated != dom[element]:
                dom[element] = updated
                changed = True
    return dom
