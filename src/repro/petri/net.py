"""Marked Petri nets — the control substrate of the computation model.

This module implements the plain (un-extended) Petri net ``(S, T, F, M0)``
from Definition 2.2 of the paper:

* ``S`` — a finite set of *S-elements* (places / control states),
* ``T`` — a finite set of *T-elements* (transitions),
* ``F ⊆ (S × T) ∪ (T × S)`` — the flow relation,
* ``M0 : S → {0, 1}`` — the initial marking.

Places and transitions are identified by unique string names.  The guard
mapping ``G`` and control mapping ``C`` that extend this net into a full
data/control flow system live in :mod:`repro.core.system`; keeping the net
itself ignorant of the data path lets the reachability, invariant and
structural-relation algorithms below work on any net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import DefinitionError
from .marking import Marking


@dataclass(frozen=True)
class Place:
    """A Petri-net S-element (control state).

    Attributes
    ----------
    name:
        Unique identifier within the net.
    label:
        Optional human-readable annotation (e.g. the source statement a
        control state was compiled from).
    """

    name: str
    label: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Transition:
    """A Petri-net T-element.

    Attributes
    ----------
    name:
        Unique identifier within the net.
    label:
        Optional human-readable annotation.
    """

    name: str
    label: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass
class PetriNet:
    """A marked Petri net ``(S, T, F, M0)`` with string-named elements.

    The flow relation is stored twice (forward and backward adjacency) so
    preset/postset queries are O(degree).  Mutation is only supported
    through the ``add_*`` / ``remove_*`` methods, which maintain both
    indices and validate names eagerly, raising
    :class:`~repro.errors.DefinitionError` on misuse.
    """

    name: str = "net"
    places: dict[str, Place] = field(default_factory=dict)
    transitions: dict[str, Transition] = field(default_factory=dict)
    # forward adjacency: element name -> set of successor element names
    _succ: dict[str, set[str]] = field(default_factory=dict)
    # backward adjacency: element name -> set of predecessor element names
    _pred: dict[str, set[str]] = field(default_factory=dict)
    initial: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, *, label: str = "", marked: bool = False,
                  tokens: int = 0) -> Place:
        """Add a place.  ``marked=True`` is shorthand for one initial token."""
        self._check_fresh(name)
        place = Place(name, label)
        self.places[name] = place
        self._succ[name] = set()
        self._pred[name] = set()
        count = 1 if marked else int(tokens)
        if count < 0:
            raise DefinitionError(f"negative initial token count for place {name!r}")
        if count:
            self.initial[name] = count
        return place

    def add_transition(self, name: str, *, label: str = "") -> Transition:
        """Add a transition."""
        self._check_fresh(name)
        transition = Transition(name, label)
        self.transitions[name] = transition
        self._succ[name] = set()
        self._pred[name] = set()
        return transition

    def add_arc(self, source: str, target: str) -> None:
        """Add a flow arc.

        Exactly one endpoint must be a place and the other a transition
        (``F ⊆ (S × T) ∪ (T × S)``).  Duplicate arcs are rejected.
        """
        src_is_place = source in self.places
        src_is_trans = source in self.transitions
        dst_is_place = target in self.places
        dst_is_trans = target in self.transitions
        if not (src_is_place or src_is_trans):
            raise DefinitionError(f"unknown flow-arc source {source!r}")
        if not (dst_is_place or dst_is_trans):
            raise DefinitionError(f"unknown flow-arc target {target!r}")
        if src_is_place == dst_is_place:
            raise DefinitionError(
                f"flow arc {source!r} -> {target!r} must connect a place and "
                "a transition (F ⊆ (S×T) ∪ (T×S))"
            )
        if target in self._succ[source]:
            raise DefinitionError(f"duplicate flow arc {source!r} -> {target!r}")
        self._succ[source].add(target)
        self._pred[target].add(source)

    def remove_arc(self, source: str, target: str) -> None:
        """Remove a flow arc; raises if it does not exist."""
        if target not in self._succ.get(source, ()):
            raise DefinitionError(f"no flow arc {source!r} -> {target!r} to remove")
        self._succ[source].discard(target)
        self._pred[target].discard(source)

    def remove_transition(self, name: str) -> None:
        """Remove a transition together with all its flow arcs."""
        if name not in self.transitions:
            raise DefinitionError(f"unknown transition {name!r}")
        for succ in list(self._succ[name]):
            self.remove_arc(name, succ)
        for pred in list(self._pred[name]):
            self.remove_arc(pred, name)
        del self.transitions[name]
        del self._succ[name]
        del self._pred[name]

    def remove_place(self, name: str) -> None:
        """Remove a place together with all its flow arcs and marking."""
        if name not in self.places:
            raise DefinitionError(f"unknown place {name!r}")
        for succ in list(self._succ[name]):
            self.remove_arc(name, succ)
        for pred in list(self._pred[name]):
            self.remove_arc(pred, name)
        del self.places[name]
        del self._succ[name]
        del self._pred[name]
        self.initial.pop(name, None)

    def set_initial(self, name: str, tokens: int = 1) -> None:
        """Set the initial token count of a place."""
        if name not in self.places:
            raise DefinitionError(f"unknown place {name!r}")
        if tokens < 0:
            raise DefinitionError(f"negative initial token count for place {name!r}")
        if tokens:
            self.initial[name] = tokens
        else:
            self.initial.pop(name, None)

    def _check_fresh(self, name: str) -> None:
        if name in self.places or name in self.transitions:
            raise DefinitionError(f"duplicate net element name {name!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def preset(self, name: str) -> frozenset[str]:
        """``•x`` — the set of predecessors of element ``name``."""
        try:
            return frozenset(self._pred[name])
        except KeyError:
            raise DefinitionError(f"unknown net element {name!r}") from None

    def postset(self, name: str) -> frozenset[str]:
        """``x•`` — the set of successors of element ``name``."""
        try:
            return frozenset(self._succ[name])
        except KeyError:
            raise DefinitionError(f"unknown net element {name!r}") from None

    def arcs(self) -> Iterator[tuple[str, str]]:
        """Iterate over all flow arcs as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in sorted(targets):
                yield (source, target)

    def initial_marking(self) -> Marking:
        """The initial marking ``M0`` as a :class:`Marking`."""
        return Marking(self.initial)

    def is_place(self, name: str) -> bool:
        return name in self.places

    def is_transition(self, name: str) -> bool:
        return name in self.transitions

    @property
    def num_arcs(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    def place_names(self) -> list[str]:
        """Place names in insertion order (stable for matrix layouts)."""
        return list(self.places)

    def transition_names(self) -> list[str]:
        """Transition names in insertion order."""
        return list(self.transitions)

    # ------------------------------------------------------------------
    # copying / equality helpers
    # ------------------------------------------------------------------
    def copy(self) -> "PetriNet":
        """Deep-enough copy: shares immutable Place/Transition objects."""
        clone = PetriNet(name=self.name)
        clone.places = dict(self.places)
        clone.transitions = dict(self.transitions)
        clone._succ = {k: set(v) for k, v in self._succ.items()}
        clone._pred = {k: set(v) for k, v in self._pred.items()}
        clone.initial = dict(self.initial)
        return clone

    def structure_equal(self, other: "PetriNet") -> bool:
        """True iff both nets have identical S, T, F and M0 (by name)."""
        return (
            set(self.places) == set(other.places)
            and set(self.transitions) == set(other.transitions)
            and {(s, t) for s, t in self.arcs()} == {(s, t) for s, t in other.arcs()}
            and self.initial == other.initial
        )

    def validate(self) -> None:
        """Check internal index consistency (defensive; used by tests)."""
        for source, targets in self._succ.items():
            for target in targets:
                if source not in self._pred[target]:
                    raise DefinitionError(
                        f"inconsistent adjacency for arc {source!r} -> {target!r}"
                    )
        for name in self.initial:
            if name not in self.places:
                raise DefinitionError(f"initial marking of unknown place {name!r}")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PetriNet({self.name!r}: |S|={len(self.places)}, "
            f"|T|={len(self.transitions)}, |F|={self.num_arcs})"
        )


def chain(net: PetriNet, places: Iterable[str], *, prefix: str = "t") -> list[str]:
    """Connect existing places into a linear chain with fresh transitions.

    ``chain(net, ["s1", "s2", "s3"])`` creates transitions ``t_s1_s2`` and
    ``t_s2_s3`` and the arcs making ``s1 → s2 → s3`` sequential.  Returns
    the created transition names.  This is a convenience used heavily by
    the compiler and by tests.
    """
    names = list(places)
    created: list[str] = []
    for a, b in zip(names, names[1:]):
        tname = f"{prefix}_{a}_{b}"
        if tname in net.transitions or tname in net.places:
            i = 1
            while f"{tname}_{i}" in net.transitions or f"{tname}_{i}" in net.places:
                i += 1
            tname = f"{tname}_{i}"
        net.add_transition(tname)
        net.add_arc(a, tname)
        net.add_arc(tname, b)
        created.append(tname)
    return created
