"""The token game: enabling and firing rules (Definition 3.1(2)–(6)).

The firing rules here are *guard-aware* but data-path-agnostic: a guard
evaluator is passed in as a callable ``guard_eval(transition_name) -> bool``.
Plain nets use :func:`always_true`.  The full data/control flow simulator in
:mod:`repro.semantics.simulator` supplies an evaluator that reads guard
ports from the data path (Definition 3.1(4): multiple guards are OR-ed).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from ..errors import ExecutionError
from .marking import Marking
from .net import PetriNet

GuardEval = Callable[[str], bool]


def always_true(_transition: str) -> bool:
    """Guard evaluator for unguarded nets."""
    return True


def is_enabled(net: PetriNet, marking: Marking, transition: str) -> bool:
    """Definition 3.1(3): a transition is enabled iff every input place
    holds at least one token."""
    return marking.covers(net.preset(transition))


def may_fire(net: PetriNet, marking: Marking, transition: str,
             guard_eval: GuardEval = always_true) -> bool:
    """Definition 3.1(4): a transition may fire iff it is enabled and its
    guard condition evaluates to true."""
    return is_enabled(net, marking, transition) and guard_eval(transition)


def enabled_transitions(net: PetriNet, marking: Marking) -> list[str]:
    """All enabled transitions (ignoring guards), in insertion order."""
    return [t for t in net.transitions if is_enabled(net, marking, t)]


def fireable_transitions(net: PetriNet, marking: Marking,
                         guard_eval: GuardEval = always_true) -> list[str]:
    """All transitions that are enabled *and* guard-true, in insertion order."""
    return [t for t in net.transitions if may_fire(net, marking, t, guard_eval)]


def fire(net: PetriNet, marking: Marking, transition: str,
         guard_eval: GuardEval = always_true) -> Marking:
    """Fire one transition (Definition 3.1(5)) and return the new marking.

    Raises :class:`~repro.errors.ExecutionError` if the transition is not
    fireable at ``marking``.
    """
    if not is_enabled(net, marking, transition):
        raise ExecutionError(f"transition {transition!r} is not enabled")
    if not guard_eval(transition):
        raise ExecutionError(f"guard of transition {transition!r} is false")
    return marking.after_firing(net.preset(transition), net.postset(transition))


def fire_step(net: PetriNet, marking: Marking, transitions: Sequence[str],
              guard_eval: GuardEval = always_true) -> Marking:
    """Fire a *step* — a set of transitions simultaneously.

    The step must be conflict-free at ``marking``: every transition must be
    individually fireable and no two transitions may compete for a token
    (i.e. the multiset of consumed tokens must be covered by the marking).
    This models one synchronous clock tick of the hardware, where several
    independent control-flow streams advance together.
    """
    demand: dict[str, int] = {}
    for t in transitions:
        if not may_fire(net, marking, t, guard_eval):
            raise ExecutionError(f"transition {t!r} is not fireable in this step")
        for place in net.preset(t):
            demand[place] = demand.get(place, 0) + 1
    for place, need in demand.items():
        if marking[place] < need:
            raise ExecutionError(
                f"step {list(transitions)!r} conflicts on place {place!r} "
                f"({need} tokens demanded, {marking[place]} available)"
            )
    consume = [p for t in transitions for p in net.preset(t)]
    produce = [p for t in transitions for p in net.postset(t)]
    return marking.after_firing(consume, produce)


def maximal_step(net: PetriNet, marking: Marking,
                 guard_eval: GuardEval = always_true,
                 priority: Sequence[str] | None = None,
                 rng: "random.Random | None" = None) -> list[str]:
    """Greedily select a maximal conflict-free set of fireable transitions.

    Transitions are considered in ``priority`` order (default: insertion
    order), and a transition joins the step iff the remaining tokens cover
    its preset.  For conflict-free (properly designed) systems the greedy
    choice is canonical: no two fireable transitions ever compete for a
    token, so the "maximal step" is simply *all* fireable transitions.

    ``rng`` (a seeded :class:`random.Random`) shuffles the candidate
    order before the greedy scan — the one entry point for seeded
    nondeterministic choice.  The same seed always yields the same step
    sequence, because the shuffle is the only randomness consumed.
    """
    order = list(priority) if priority is not None else list(net.transitions)
    if rng is not None:
        rng.shuffle(order)
    available: dict[str, int] = dict(marking)
    step: list[str] = []
    for t in order:
        if not may_fire(net, marking, t, guard_eval):
            continue
        preset = net.preset(t)
        if all(available.get(p, 0) >= 1 for p in preset):
            for p in preset:
                available[p] = available.get(p, 0) - 1
            step.append(t)
    return step


class TokenGameCache:
    """Memoized token-game queries over a *fixed* net structure.

    The simulator's control phase asks the same questions at every step —
    which transitions are enabled, what the maximal step looks like — and
    a control state revisited inside a loop asks them for a marking it has
    already seen.  This cache freezes the preset relation into tuples once
    and memoizes the enabled-transition set per marking (markings are
    immutable and hashable), so the steady state of a loop costs one dict
    lookup instead of a full preset scan.

    The net must not be mutated while the cache is alive; all library
    transformations are pure (they build new nets), so the simulator can
    hold one cache per run without invalidation logic.  ``hits`` /
    ``misses`` feed :class:`~repro.semantics.profile.SimMetrics`.
    """

    __slots__ = ("net", "hits", "misses", "max_markings",
                 "_preset", "_sorted_transitions", "_enabled")

    def __init__(self, net: PetriNet, *, max_markings: int = 1 << 16) -> None:
        self.net = net
        self.hits = 0
        self.misses = 0
        self.max_markings = max_markings
        # insertion order preserved: identical to iterating net.transitions
        self._preset: dict[str, tuple[str, ...]] = {
            t: tuple(net.preset(t)) for t in net.transitions
        }
        self._sorted_transitions: tuple[str, ...] = tuple(sorted(net.transitions))
        self._enabled: dict[Marking, tuple[str, ...]] = {}

    @property
    def sorted_transitions(self) -> tuple[str, ...]:
        """All transitions in name order (for sequential priority)."""
        return self._sorted_transitions

    def enabled(self, marking: Marking) -> tuple[str, ...]:
        """Enabled transitions (guards ignored), in insertion order."""
        cached = self._enabled.get(marking)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = tuple(t for t, preset in self._preset.items()
                       if marking.covers(preset))
        if len(self._enabled) < self.max_markings:
            self._enabled[marking] = result
        return result

    def maximal_step(self, marking: Marking,
                     guard_eval: GuardEval = always_true,
                     priority: Sequence[str] | None = None,
                     rng: random.Random | None = None) -> list[str]:
        """Drop-in for :func:`maximal_step`, reusing the memoized
        enabled set.  Produces the exact same step (content and order)
        as the module-level function for any ``priority`` and ``rng``
        (the shuffle is applied to the same base list the module-level
        function shuffles, so both consume the rng identically)."""
        enabled = self.enabled(marking)
        if rng is not None:
            base = list(priority) if priority is not None else list(self._preset)
            rng.shuffle(base)
            admitted = set(enabled)
            order: Iterable[str] = (t for t in base if t in admitted)
        elif priority is None:
            order = enabled
        else:
            admitted = set(enabled)
            order = (t for t in priority if t in admitted)
        available: dict[str, int] = dict(marking)
        step: list[str] = []
        for t in order:
            if not guard_eval(t):
                continue
            preset = self._preset[t]
            if all(available.get(p, 0) >= 1 for p in preset):
                for p in preset:
                    available[p] = available.get(p, 0) - 1
                step.append(t)
        return step


def run_to_completion(net: PetriNet, *, guard_eval: GuardEval = always_true,
                      max_steps: int = 10_000,
                      marking: Marking | None = None,
                      rng: random.Random | None = None) -> tuple[Marking, list[list[str]]]:
    """Play the token game with maximal steps until quiescence.

    Returns the final marking and the fired step sequence.  Terminates when
    no transition can fire (covers both proper termination — no tokens left,
    Definition 3.1(6) — and deadlock) or when ``max_steps`` is exceeded, in
    which case an :class:`~repro.errors.ExecutionError` is raised (the net
    is assumed to be non-terminating).

    ``rng`` seeds the per-step candidate shuffle (see
    :func:`maximal_step`): the same seeded :class:`random.Random` always
    replays the same firing history.
    """
    current = marking if marking is not None else net.initial_marking()
    history: list[list[str]] = []
    for _ in range(max_steps):
        step = maximal_step(net, current, guard_eval, rng=rng)
        if not step:
            return current, history
        current = fire_step(net, current, step, guard_eval)
        history.append(step)
    raise ExecutionError(f"net did not quiesce within {max_steps} steps")
