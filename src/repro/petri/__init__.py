"""Petri-net substrate: the control-flow half of the computation model.

Public surface:

* :class:`~repro.petri.net.PetriNet`, :class:`~repro.petri.net.Place`,
  :class:`~repro.petri.net.Transition` — net construction;
* :class:`~repro.petri.marking.Marking` — immutable token assignments;
* the token game — :func:`~repro.petri.execution.fire`,
  :func:`~repro.petri.execution.fire_step`,
  :func:`~repro.petri.execution.maximal_step`,
  :func:`~repro.petri.execution.run_to_completion`;
* :class:`~repro.petri.relations.StructuralRelations` — the ``⇒``/``α``/``∥``
  orders of Definition 2.3;
* reachability (:func:`~repro.petri.reachability.explore`), invariants
  (:func:`~repro.petri.invariants.p_invariants`), and property checks
  (:func:`~repro.petri.properties.check_safety`).
"""

from .execution import (
    TokenGameCache,
    always_true,
    enabled_transitions,
    fire,
    fire_step,
    fireable_transitions,
    is_enabled,
    maximal_step,
    may_fire,
    run_to_completion,
)
from .invariants import (
    apply_state_equation,
    incidence_matrix,
    invariant_token_sum,
    p_invariants,
    positive_p_invariants,
    structurally_safe_places,
    t_invariants,
)
from .marking import Marking
from .net import PetriNet, Place, Transition, chain
from .properties import (
    LivenessReport,
    SafetyReport,
    check_liveness,
    check_safety,
    is_marked_graph,
    is_state_machine,
    structural_conflicts,
    unsafe_witness_message,
)
from .reachability import (
    ReachabilityGraph,
    coexistent_place_pairs,
    explore,
    firing_sequences,
    is_safe,
    reachable_markings,
)
from .relations import StructuralRelations, dominators, transitive_closure_bool
from .structure import (
    commoner_holds,
    is_free_choice,
    is_siphon,
    is_trap,
    maximal_siphon_within,
    maximal_trap_within,
    minimal_siphons,
    token_free_siphon,
)

__all__ = [
    "PetriNet",
    "Place",
    "Transition",
    "Marking",
    "chain",
    "always_true",
    "is_enabled",
    "may_fire",
    "enabled_transitions",
    "fireable_transitions",
    "fire",
    "fire_step",
    "maximal_step",
    "run_to_completion",
    "TokenGameCache",
    "StructuralRelations",
    "transitive_closure_bool",
    "dominators",
    "is_siphon",
    "is_trap",
    "maximal_siphon_within",
    "maximal_trap_within",
    "minimal_siphons",
    "is_free_choice",
    "commoner_holds",
    "token_free_siphon",
    "ReachabilityGraph",
    "explore",
    "is_safe",
    "reachable_markings",
    "firing_sequences",
    "coexistent_place_pairs",
    "incidence_matrix",
    "apply_state_equation",
    "p_invariants",
    "t_invariants",
    "positive_p_invariants",
    "structurally_safe_places",
    "invariant_token_sum",
    "SafetyReport",
    "LivenessReport",
    "check_safety",
    "check_liveness",
    "structural_conflicts",
    "unsafe_witness_message",
    "is_marked_graph",
    "is_state_machine",
]
