"""Structural net theory: siphons, traps, and Commoner's condition.

Classical structure-based liveness reasoning, complementing the
behavioural (reachability) checks in :mod:`repro.petri.properties`:

* a **siphon** is a place set ``D`` with ``•D ⊆ D•`` — once empty it
  stays empty, disabling every transition it feeds;
* a **trap** is a place set ``Q`` with ``Q• ⊆ •Q`` — once marked it
  stays marked;
* **Commoner's condition** (sufficient for liveness on free-choice
  nets): every non-empty siphon contains an initially marked trap.

The synthesis pipeline itself relies on reachability (its nets are
small), but the structural results are cheap on large nets, and the
properly-designed benchmark uses them as a scalable pre-screen: a
token-free siphon reachable from the initial marking is a structural
deadlock certificate no simulation is needed for.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from .net import PetriNet


def preset_of_places(net: PetriNet, places: Iterable[str]) -> frozenset[str]:
    """``•D`` — transitions with an output arc into any place of ``D``."""
    result: set[str] = set()
    for place in places:
        result.update(net.preset(place))
    return frozenset(result)


def postset_of_places(net: PetriNet, places: Iterable[str]) -> frozenset[str]:
    """``D•`` — transitions with an input arc from any place of ``D``."""
    result: set[str] = set()
    for place in places:
        result.update(net.postset(place))
    return frozenset(result)


def is_siphon(net: PetriNet, places: Iterable[str]) -> bool:
    """``•D ⊆ D•`` — every transition feeding D also drains it."""
    place_set = set(places)
    if not place_set:
        return False
    return preset_of_places(net, place_set) <= postset_of_places(net, place_set)


def is_trap(net: PetriNet, places: Iterable[str]) -> bool:
    """``Q• ⊆ •Q`` — every transition draining Q also feeds it."""
    place_set = set(places)
    if not place_set:
        return False
    return postset_of_places(net, place_set) <= preset_of_places(net, place_set)


def maximal_siphon_within(net: PetriNet, places: Iterable[str]) -> frozenset[str]:
    """The largest siphon contained in ``places`` (possibly empty).

    Standard pruning fixpoint: repeatedly drop any place fed by a
    transition that does not drain the current set.  The siphons
    contained in a set form a lattice, so the fixpoint is the unique
    maximum.
    """
    current = set(places)
    changed = True
    while changed and current:
        changed = False
        drains = postset_of_places(net, current)
        for place in sorted(current):
            if not net.preset(place) <= drains:
                current.discard(place)
                changed = True
                break
    return frozenset(current)


def maximal_trap_within(net: PetriNet, places: Iterable[str]) -> frozenset[str]:
    """The largest trap contained in ``places`` (possibly empty)."""
    current = set(places)
    changed = True
    while changed and current:
        changed = False
        feeds = preset_of_places(net, current)
        for place in sorted(current):
            if not net.postset(place) <= feeds:
                current.discard(place)
                changed = True
                break
    return frozenset(current)


def minimal_siphons(net: PetriNet, *, max_size: int | None = None,
                    limit: int = 10_000) -> list[frozenset[str]]:
    """All minimal siphons up to ``max_size`` (brute force over subsets).

    Siphon enumeration is exponential in general; this is intended for
    the net sizes structural analysis is usually *read* on (tests,
    teaching, small controllers).  ``limit`` caps the number of candidate
    sets examined per size to keep worst cases bounded.
    """
    places = sorted(net.places)
    bound = max_size if max_size is not None else len(places)
    found: list[frozenset[str]] = []
    for size in range(1, bound + 1):
        examined = 0
        for subset in combinations(places, size):
            examined += 1
            if examined > limit:
                break
            candidate = frozenset(subset)
            if any(s <= candidate for s in found):
                continue  # not minimal
            if is_siphon(net, candidate):
                found.append(candidate)
    return found


def is_free_choice(net: PetriNet) -> bool:
    """Free choice: any two transitions sharing an input place share all.

    Equivalently, for every arc ``(p, t)``: either ``p• = {t}`` or
    ``•t = {p}``.  Compiled systems are free-choice by construction
    (branch decisions happen at dedicated condition places).
    """
    for place in net.places:
        drains = net.postset(place)
        if len(drains) <= 1:
            continue
        for t in drains:
            if net.preset(t) != {place}:
                return False
    return True


def commoner_holds(net: PetriNet, *, max_size: int | None = None,
                   limit: int = 10_000) -> bool:
    """Commoner's condition: every minimal siphon contains a marked trap.

    Sufficient for liveness of free-choice nets (and for deadlock-freedom
    more broadly); necessary-and-sufficient on free-choice nets.  Uses
    :func:`minimal_siphons`, so apply on modest nets only.
    """
    initial = net.initial_marking()
    for siphon in minimal_siphons(net, max_size=max_size, limit=limit):
        trap = maximal_trap_within(net, siphon)
        if not trap or not any(initial[p] > 0 for p in trap):
            return False
    return True


def token_free_siphon(net: PetriNet) -> frozenset[str]:
    """The maximal initially-unmarked siphon (empty set if none).

    A non-empty result is a structural liveness red flag: those places
    can never gain a first token unless a transition outside their
    postset feeds them — and by the siphon property none exists, so the
    transitions they feed are dead from the start.
    """
    unmarked = [p for p in net.places if net.initial.get(p, 0) == 0]
    return maximal_siphon_within(net, unmarked)
