"""Markings — token assignments ``M : S → ℕ`` (Definition 3.1(1)).

A :class:`Marking` is an immutable, hashable multiset of tokens over place
names.  Immutability makes markings usable as reachability-graph nodes and
as dictionary keys; the firing rule therefore returns *new* markings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class Marking(Mapping[str, int]):
    """Immutable token assignment over place names.

    Only places with a strictly positive token count are stored, so two
    markings compare equal iff they assign the same counts to the same
    places regardless of which zero entries were supplied.
    """

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[tuple[str, int]] = ()) -> None:
        items = dict(tokens)
        for place, count in items.items():
            if count < 0:
                raise ValueError(f"negative token count {count} for place {place!r}")
        self._tokens: dict[str, int] = {p: c for p, c in items.items() if c > 0}
        self._hash: int | None = None

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, place: object) -> bool:
        return place in self._tokens

    # -- value semantics -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, Mapping):
            return self._tokens == {p: c for p, c in other.items() if c > 0}
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._tokens.items()))
        return self._hash

    # -- queries -------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def marked_places(self) -> frozenset[str]:
        """The set of places holding at least one token."""
        return frozenset(self._tokens)

    def is_empty(self) -> bool:
        """True iff no place holds a token (execution terminated, 3.1(6))."""
        return not self._tokens

    def is_safe(self) -> bool:
        """True iff no place holds more than one token (Definition 3.2(2))."""
        return all(count <= 1 for count in self._tokens.values())

    def covers(self, places: Iterable[str]) -> bool:
        """True iff every listed place holds at least one token."""
        return all(self._tokens.get(p, 0) >= 1 for p in places)

    # -- derivation ------------------------------------------------------------
    def after_firing(self, consume: Iterable[str], produce: Iterable[str]) -> "Marking":
        """Marking after removing one token per place in ``consume`` and
        depositing one token per place in ``produce`` (Definition 3.1(5)).
        """
        tokens = dict(self._tokens)
        for place in consume:
            current = tokens.get(place, 0)
            if current < 1:
                raise ValueError(f"cannot consume token from empty place {place!r}")
            if current == 1:
                del tokens[place]
            else:
                tokens[place] = current - 1
        for place in produce:
            tokens[place] = tokens.get(place, 0) + 1
        return Marking(tokens)

    def with_tokens(self, **changes: int) -> "Marking":
        """Return a marking with the given absolute counts overridden."""
        tokens = dict(self._tokens)
        tokens.update(changes)
        return Marking(tokens)

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{c}" for p, c in sorted(self._tokens.items()))
        return f"Marking({{{inner}}})"
