"""Reachability analysis: the marking graph, boundedness and safety.

Used by the properly-designed checker (Definition 3.2(2): the net must be
*safe* — never more than one token per place) and by the analysis
benchmarks.  Exploration is breadth-first over interleaved single firings,
which covers every reachable marking of the (guard-free) net; guards can
only *remove* behaviours, so safety of the unguarded net is a sound
over-approximation for the guarded system.

For unbounded nets the exploration would not terminate, so the explorer
takes both a marking-count budget and a per-place token bound; exceeding
the token bound proves unboundedness *relative to the requested bound*
(enough to refute safety), while exhausting the marking budget yields an
explicit "unknown" verdict instead of a wrong answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ExecutionError
from .execution import GuardEval, always_true, enabled_transitions
from .marking import Marking
from .net import PetriNet


@dataclass
class ReachabilityGraph:
    """The explored portion of the marking graph.

    Attributes
    ----------
    markings:
        Every visited marking, in BFS discovery order (index = node id).
    edges:
        ``(source_id, transition_name, target_id)`` triples.
    complete:
        True iff the whole reachable set was enumerated within budget.
    truncated:
        True iff the search stopped early (marking budget or token bound);
        always the negation of ``complete`` for a fresh exploration, but
        carried explicitly so callers can distinguish "partial state
        space" from other reasons and so verdicts computed from a
        truncated graph are never silently presented as proofs.
    truncation_reason:
        Human-readable cause when ``truncated`` (empty otherwise).
    bounded_by:
        The smallest ``k`` such that every visited marking is k-bounded.
    deadlocks:
        Ids of visited markings with tokens left but no enabled transition.
    terminals:
        Ids of visited empty markings (proper termination, Def. 3.1(6)).
    """

    markings: list[Marking] = field(default_factory=list)
    edges: list[tuple[int, str, int]] = field(default_factory=list)
    complete: bool = True
    truncated: bool = False
    truncation_reason: str = ""
    bounded_by: int = 0
    deadlocks: list[int] = field(default_factory=list)
    terminals: list[int] = field(default_factory=list)

    @property
    def num_markings(self) -> int:
        return len(self.markings)

    @property
    def is_safe(self) -> bool:
        """True iff every visited marking is 1-bounded.

        Only a proof of safety when ``complete`` is also true; when the
        budget was exhausted it is merely "no violation found so far".
        """
        return self.bounded_by <= 1

    def index_of(self, marking: Marking) -> int:
        return self.markings.index(marking)

    def successors(self, node: int) -> list[tuple[str, int]]:
        return [(t, dst) for src, t, dst in self.edges if src == node]


def explore(net: PetriNet, *, max_markings: int = 100_000, token_bound: int = 8,
            guard_eval: GuardEval = always_true,
            initial: Marking | None = None) -> ReachabilityGraph:
    """Breadth-first enumeration of the reachable marking graph.

    Parameters
    ----------
    max_markings:
        Exploration budget; when exceeded the result has
        ``complete=False``.
    token_bound:
        If any place accumulates more than this many tokens the search
        stops immediately (the net is certainly not safe) with
        ``complete=False`` and ``bounded_by`` reflecting the violation.
    guard_eval:
        Optional guard evaluator; the default explores the unguarded net.
    """
    graph = ReachabilityGraph()
    start = initial if initial is not None else net.initial_marking()
    seen: dict[Marking, int] = {start: 0}
    graph.markings.append(start)
    graph.bounded_by = max((start[p] for p in start), default=0)
    queue: deque[int] = deque([0])

    while queue:
        node = queue.popleft()
        marking = graph.markings[node]
        if marking.is_empty():
            graph.terminals.append(node)
            continue
        fired_any = False
        for transition in enabled_transitions(net, marking):
            if not guard_eval(transition):
                continue
            fired_any = True
            successor = marking.after_firing(
                net.preset(transition), net.postset(transition)
            )
            peak = max((successor[p] for p in successor), default=0)
            graph.bounded_by = max(graph.bounded_by, peak)
            if peak > token_bound:
                graph.complete = False
                graph.truncated = True
                graph.truncation_reason = (
                    f"token bound {token_bound} exceeded "
                    f"(a place reached {peak} tokens)")
                target = seen.get(successor)
                if target is None:
                    target = len(graph.markings)
                    seen[successor] = target
                    graph.markings.append(successor)
                graph.edges.append((node, transition, target))
                return graph
            target = seen.get(successor)
            if target is None:
                if len(graph.markings) >= max_markings:
                    graph.complete = False
                    graph.truncated = True
                    graph.truncation_reason = (
                        f"marking budget {max_markings} exhausted")
                    continue
                target = len(graph.markings)
                seen[successor] = target
                graph.markings.append(successor)
                queue.append(target)
            graph.edges.append((node, transition, target))
        if not fired_any:
            graph.deadlocks.append(node)
    return graph


def _check_backend(backend: str) -> None:
    if backend not in ("explicit", "symbolic"):
        raise ExecutionError(
            f"unknown reachability backend {backend!r}: "
            "expected 'explicit' or 'symbolic'")


def is_safe(net: PetriNet, *, max_markings: int = 100_000,
            backend: str = "explicit") -> bool:
    """Decide safety (1-boundedness) of the unguarded net by exploration.

    Raises :class:`~repro.errors.ExecutionError` if the exploration budget
    is exhausted before a verdict is reached.  ``backend="symbolic"``
    routes through the vectorised frontier engine in
    :mod:`repro.analysis.symbolic` — same verdicts, far larger nets.
    """
    _check_backend(backend)
    if backend == "symbolic":
        from ..analysis.symbolic import SymbolicAnalyzer

        return SymbolicAnalyzer(net, max_markings=max_markings).is_safe()
    graph = explore(net, max_markings=max_markings, token_bound=1)
    if graph.bounded_by > 1:
        return False
    if graph.truncated:
        raise ExecutionError(
            "reachability budget exhausted before safety could be decided "
            f"({graph.truncation_reason})"
        )
    return True


def reachable_markings(net: PetriNet, *, max_markings: int = 100_000,
                       backend: str = "explicit") -> list[Marking]:
    """All reachable markings (requires the exploration to complete)."""
    _check_backend(backend)
    if backend == "symbolic":
        from ..analysis.symbolic import frontier_explore

        sym = frontier_explore(net, max_markings=max_markings)
        if sym.truncated:
            raise ExecutionError(
                f"reachability budget exhausted ({sym.truncation_reason})")
        return sym.markings()
    graph = explore(net, max_markings=max_markings)
    if graph.truncated:
        raise ExecutionError(
            f"reachability budget exhausted ({graph.truncation_reason})")
    return list(graph.markings)


def coexistent_place_pairs(net: PetriNet, *, max_markings: int = 100_000,
                           backend: str = "explicit"
                           ) -> tuple[frozenset[frozenset[str]], bool]:
    """Unordered place pairs that hold tokens simultaneously somewhere.

    Computed over the unguarded reachable marking graph — a sound
    over-approximation of the guarded system (guards only remove
    behaviours).  Returns ``(pairs, complete)``.

    This relation is the *behavioural* counterpart of the structural
    parallel order ``∥`` (Definition 2.3(5)) and is strictly more precise
    on cyclic nets: two states of a loop body are mutually reachable
    around the back edge (hence ``α``-ordered, *not* structurally
    parallel) yet can still be simultaneously marked inside one
    iteration.  The vertex-merger legality check and the
    properly-designed rule 1 both need the behavioural notion to stay
    sound for loops.

    A truncated exploration emits a
    :class:`~repro.analysis.symbolic.TruncationWarning` (the returned
    ``complete=False`` flag is easy to drop on the floor; the warning is
    not) — the pair set is then a *lower* bound on true coexistence.
    """
    _check_backend(backend)
    if backend == "symbolic":
        from ..analysis.symbolic import SymbolicAnalyzer

        return SymbolicAnalyzer(
            net, max_markings=max_markings).coexistent_pairs()
    graph = explore(net, max_markings=max_markings)
    if graph.truncated:
        from ..analysis.symbolic import warn_truncated

        warn_truncated("coexistent place pairs", graph.truncation_reason)
    pairs: set[frozenset[str]] = set()
    for marking in graph.markings:
        marked = sorted(marking.marked_places())
        for i, p in enumerate(marked):
            if marking[p] > 1:
                pairs.add(frozenset((p,)))
            for q in marked[i + 1:]:
                pairs.add(frozenset((p, q)))
    return frozenset(pairs), graph.complete


def firing_sequences(net: PetriNet, *, max_depth: int, max_sequences: int = 100_000,
                     guard_eval: GuardEval = always_true) -> list[list[str]]:
    """Enumerate interleaved firing sequences up to ``max_depth``.

    Every maximal (quiescent or depth-capped) interleaving is returned.
    This is the exhaustive oracle used by the semantics tests to confirm
    that, for properly designed (conflict-free) systems, every interleaving
    produces the same external event structure.
    """
    results: list[list[str]] = []
    start = net.initial_marking()

    stack: list[tuple[Marking, list[str]]] = [(start, [])]
    while stack:
        marking, prefix = stack.pop()
        if len(results) >= max_sequences:
            raise ExecutionError("too many firing sequences to enumerate")
        options = [t for t in enabled_transitions(net, marking) if guard_eval(t)]
        if not options or len(prefix) >= max_depth:
            results.append(prefix)
            continue
        for transition in options:
            successor = marking.after_firing(
                net.preset(transition), net.postset(transition)
            )
            stack.append((successor, prefix + [transition]))
    return results
