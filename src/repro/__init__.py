"""repro — reproduction of Zebo Peng, *Semantics of a Parallel Computation
Model and its Applications in Digital Hardware Design* (ICPP 1988).

The library implements the paper's data/control flow computation model —
a data path (directed port graph) controlled by a guarded Petri net —
together with its external-event semantics, the data-invariant and
control-invariant equivalence relations, the semantics-preserving
transformations built on them, and a CAMAD-style high-level synthesis
pipeline that uses those transformations to optimise designs.

Quick tour::

    from repro import compile_source, Environment, simulate, pad_outputs

    system = compile_source('''
        design double {
          input x_in; output y_out; var x, y;
          x = read(x_in);
          y = x * 2;
          write(y_out, y);
        }
    ''')
    trace = simulate(system, Environment.of(x_in=[21]))
    print(pad_outputs(system, trace))       # {'y_out': [42]}

Sub-packages:

=====================  ====================================================
:mod:`repro.petri`      Petri-net substrate (token game, reachability,
                        invariants, structural relations)
:mod:`repro.datapath`   data-path substrate (ports, vertices, operations,
                        module library, validation)
:mod:`repro.core`       the model Γ, properly-designed check, dependence,
                        event structures, equivalence relations
:mod:`repro.semantics`  the executable semantics (simulator, environment,
                        firing policies, event-structure extraction)
:mod:`repro.transform`  semantics-preserving transformations
:mod:`repro.synthesis`  behavioural frontend + scheduling, allocation,
                        critical path, cost model, optimizer
:mod:`repro.analysis`   CCS/regex baselines and state-space statistics
:mod:`repro.designs`    the benchmark design zoo
:mod:`repro.io`         DOT export, JSON round-trips, report tables
:mod:`repro.runtime`    parallel batch-execution engine with a
                        content-addressed result cache
=====================  ====================================================
"""

from .core import (
    DataControlSystem,
    EventStructure,
    ExternalEvent,
    assert_properly_designed,
    check_properly_designed,
    control_invariant_equivalent,
    data_invariant_equivalent,
    merger_legal,
    semantically_equivalent,
)
from .datapath import DataPath, PortId, Vertex
from .designs import ZOO, all_designs, get_design, pad_inputs, pad_outputs
from .errors import (
    DefinitionError,
    EnvironmentExhausted,
    ExecutionError,
    ParseError,
    ReproError,
    TransformError,
    ValidationError,
)
from .petri import Marking, PetriNet
from .semantics import (
    Environment,
    Simulator,
    Trace,
    extract_event_structure,
    policy_invariant_structure,
    simulate,
)
from .synthesis import (
    Objective,
    ProgramBuilder,
    compact,
    compile_program,
    compile_source,
    critical_path,
    optimize,
    parse,
    share_all,
    system_cost,
)
from .runtime import (
    BatchResult,
    ExecutionEngine,
    FleetMetrics,
    JobResult,
    JobSpec,
    ResultCache,
    check_job,
    equiv_job,
    equivalence_job,
    lint_job,
    load_job_file,
    probe_job,
    reachability_job,
    simulate_job,
    synthesize_job,
    write_job_file,
)
from .transform import (
    ParallelizeStates,
    RestructureBlock,
    SerializeStates,
    VertexMerger,
    VertexSplitter,
    apply_sequence,
    behaviourally_equivalent,
)
from .values import UNDEF

try:  # single-sourced from the installed package metadata (pyproject.toml)
    from importlib.metadata import PackageNotFoundError, version as _version

    __version__ = _version("repro")
except PackageNotFoundError:  # running from a source tree without install
    __version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "DataControlSystem", "DataPath", "PetriNet", "Marking", "Vertex", "PortId",
    "UNDEF",
    # semantics
    "Environment", "Simulator", "Trace", "simulate",
    "extract_event_structure", "policy_invariant_structure",
    "EventStructure", "ExternalEvent",
    # verification / equivalence
    "check_properly_designed", "assert_properly_designed",
    "data_invariant_equivalent", "control_invariant_equivalent",
    "merger_legal", "semantically_equivalent", "behaviourally_equivalent",
    # transformations
    "ParallelizeStates", "SerializeStates", "RestructureBlock",
    "VertexMerger", "VertexSplitter", "apply_sequence",
    # synthesis
    "parse", "compile_source", "compile_program", "ProgramBuilder",
    "compact", "share_all", "critical_path", "system_cost",
    "optimize", "Objective",
    # designs
    "ZOO", "all_designs", "get_design", "pad_outputs", "pad_inputs",
    # batch runtime
    "ExecutionEngine", "BatchResult", "JobSpec", "JobResult", "ResultCache",
    "FleetMetrics", "simulate_job", "check_job", "lint_job", "reachability_job",
    "equivalence_job", "equiv_job", "synthesize_job", "probe_job", "load_job_file",
    "write_job_file",
    # errors
    "ReproError", "DefinitionError", "ValidationError", "ExecutionError",
    "EnvironmentExhausted", "TransformError", "ParseError",
]
