"""Scheduling: turning serial control chains into parallel steps.

The compiler emits one control state per statement, chained serially.
*Scheduling* here means choosing, for each maximal linear region of the
control net, a partition of its states into ordered **layers** — states
in one layer execute in parallel — and realising that choice with the
data-invariant :class:`~repro.transform.control.RestructureBlock`
transformation.  Because the transformation preserves Definition 4.5 (and
hence, by Theorem 4.1, the external semantics), the scheduler cannot
produce a wrong design, only a slow one.

Two classic policies are provided:

* :func:`asap_layers` — each state as early as its data dependences allow
  (unlimited resources);
* :func:`list_schedule` — ASAP order under resource constraints: at most
  ``limits[op]`` uses of operation ``op`` per layer (the conventional
  list-scheduling algorithm of HLS, with chain position as priority).

:func:`compact` drives the whole flow: find blocks, schedule each,
restructure, and return the transformed system plus a report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.dependence import DataDependence
from ..core.system import DataControlSystem
from ..errors import TransformError
from ..petri.relations import dominators
from ..transform.base import TransformLog
from ..transform.control import RestructureBlock


def linear_blocks(system: DataControlSystem, *, min_length: int = 2) -> list[list[str]]:
    """Maximal linear place chains eligible for restructuring.

    ``p`` chains to ``q`` when a single unguarded transition connects
    exactly ``p`` to exactly ``q`` (``post(p) = {t}``, ``•t = {p}``,
    ``t• = {q}``, ``pre(q) = {t}``) — the pattern
    :class:`~repro.transform.control.RestructureBlock` accepts.
    """
    net = system.net
    next_of: dict[str, str] = {}
    for place in net.places:
        post = net.postset(place)
        if len(post) != 1:
            continue
        (t,) = post
        if system.guard_ports(t):
            continue
        if net.preset(t) != {place}:
            continue
        succ = net.postset(t)
        if len(succ) != 1:
            continue
        (q,) = succ
        if net.preset(q) != {t}:
            continue
        next_of[place] = q

    has_pred = set(next_of.values())
    blocks: list[list[str]] = []
    for head in net.places:
        if head not in next_of or head in has_pred:
            continue
        # restructuring needs a feeding transition for the first layer and
        # an unmarked chain (M0 is fixed); skip forward past unusable heads
        while head in next_of and (not net.preset(head)
                                   or net.initial.get(head, 0)):
            head = next_of[head]
        if head not in next_of:
            continue
        chain = [head]
        seen = {head}
        while chain[-1] in next_of:
            succ = next_of[chain[-1]]
            if succ in seen:  # degenerate full-cycle chain
                break
            chain.append(succ)
            seen.add(succ)
        if len(chain) >= min_length:
            blocks.append(chain)
    return blocks


def place_resources(system: DataControlSystem, place: str) -> Counter:
    """Operation-name usage of one control state.

    Counts the combinational operator vertices *activated* by the state
    (vertices whose input arcs the state opens) — the functional units the
    state occupies for one step.
    """
    usage: Counter = Counter()
    for vertex_name in system.associated_vertices(place):
        vertex = system.datapath.vertex(vertex_name)
        if vertex.is_combinational:
            usage.update(op.name for op in vertex.ops.values())
    return usage


def _block_dependences(system: DataControlSystem,
                       block: Sequence[str], *,
                       closure: bool = False) -> dict[str, set[str]]:
    """For each place, the earlier block places it *directly* depends on.

    Direct pairs suffice: a layering that keeps every directly dependent
    pair ordered keeps every dependence chain ordered (see the
    interpretation note on
    :func:`repro.core.equivalence.ordered_dependent_pairs`).
    ``closure=True`` uses the paper-literal transitive ``◇`` instead —
    kept for the ablation benchmark, which measures how much parallelism
    the literal reading would forfeit.
    """
    dependence = DataDependence(system)
    related = dependence.dependent if closure else dependence.direct
    deps: dict[str, set[str]] = {p: set() for p in block}
    for i, p in enumerate(block):
        for q in block[i + 1:]:
            if related(p, q):
                deps[q].add(p)
    return deps


def asap_layers(system: DataControlSystem,
                block: Sequence[str], *,
                closure: bool = False) -> list[list[str]]:
    """ASAP layering: level(q) = 1 + max(level(p) for p before q)."""
    deps = _block_dependences(system, block, closure=closure)
    level: dict[str, int] = {}
    for place in block:  # chain order is a topological order of deps
        level[place] = 1 + max((level[p] for p in deps[place]), default=-1)
    depth = max(level.values(), default=-1) + 1
    layers: list[list[str]] = [[] for _ in range(depth)]
    for place in block:
        layers[level[place]].append(place)
    return layers


def alap_layers(system: DataControlSystem,
                block: Sequence[str]) -> list[list[str]]:
    """ALAP layering: each state as late as its dependents allow.

    Uses the ASAP depth as the schedule length, then pushes every state
    to the latest layer from which all its dependents are still
    reachable.  Useful for slack computation (ASAP level == ALAP level ⇒
    the state is on the block's critical path).
    """
    deps = _block_dependences(system, block)
    dependents: dict[str, set[str]] = {p: set() for p in block}
    for q, earlier in deps.items():
        for p in earlier:
            dependents[p].add(q)
    depth = len(asap_layers(system, block))
    level: dict[str, int] = {}
    for place in reversed(list(block)):
        level[place] = min((level[q] - 1 for q in dependents[place]),
                           default=depth - 1)
    layers: list[list[str]] = [[] for _ in range(depth)]
    for place in block:
        layers[level[place]].append(place)
    return [layer for layer in layers if layer]


def list_schedule(system: DataControlSystem, block: Sequence[str],
                  limits: Mapping[str, int] | None = None, *,
                  closure: bool = False) -> list[list[str]]:
    """Resource-constrained list scheduling.

    ``limits`` caps, per layer, how many vertices of each operation name
    may be active (e.g. ``{"mul": 1}``); operations without an entry are
    unconstrained.  Priority: chain position (earlier statements first) —
    with ready-set semantics this reduces to ASAP when no limits bind.
    """
    limits = dict(limits or {})
    deps = _block_dependences(system, block, closure=closure)
    usage = {p: place_resources(system, p) for p in block}
    ass = {p: system.ass(p) for p in block}
    # a block draining through guarded transitions (an if/while condition
    # state at its tail) must keep that state alone in the final layer —
    # the guard decision is taken when the last layer completes
    # (see RestructureBlock.is_legal)
    pinned_tail: str | None = None
    tail_drains = system.net.postset(block[-1])
    if any(system.guard_ports(t) for t in tail_drains):
        pinned_tail = block[-1]
    # symmetrically, a block *entered* through guarded transitions only
    # admits companions of the head into the first layer when every such
    # feeder already dominates them — restructuring forks every feeder
    # into the whole first layer, and a non-dominating guarded feeder
    # becoming adjacent to a state would mint a new Definition 4.3(d)
    # dependence (see RestructureBlock.is_legal)
    guarded_feeds = [t for t in system.net.preset(block[0])
                     if system.guard_ports(t)]
    if guarded_feeds:
        dom_sets = dominators(system.net)
        head_safe = {
            p for p in block
            if all(t in dom_sets.get(p, frozenset()) for t in guarded_feeds)
        } | {block[0]}
    else:
        head_safe = set(block)
    scheduled: dict[str, int] = {}
    remaining = [p for p in block if p != pinned_tail]
    layers: list[list[str]] = []
    while remaining:
        layer: list[str] = []
        layer_usage: Counter = Counter()
        layer_arcs: set[str] = set()
        layer_vertices: set[str] = set()
        for place in list(remaining):
            if not layers and place not in head_safe:
                continue  # guarded feeders would not dominate it (above)
            if any(p not in scheduled for p in deps[place]):
                continue  # a dependence is still unscheduled
            if any(scheduled.get(p) == len(layers) for p in deps[place]):
                continue  # dependence scheduled in this very layer
            arcs, vertices = ass[place]
            if (arcs & layer_arcs) or (vertices & layer_vertices):
                continue  # shares a data-path resource (rule 3.2(1))
            candidate = layer_usage + usage[place]
            if layer and any(candidate[op] > cap
                             for op, cap in limits.items()):
                # the limit rejects *co-scheduling*; a single statement
                # whose own expression already exceeds the cap still gets
                # a layer of its own (statements are atomic — splitting
                # them is the frontend's granularity, not the scheduler's)
                continue
            layer.append(place)
            layer_usage = candidate
            layer_arcs |= arcs
            layer_vertices |= vertices
        if not layer:  # pragma: no cover - chain order guarantees progress
            raise RuntimeError("list scheduling made no progress")
        for place in layer:
            scheduled[place] = len(layers)
            remaining.remove(place)
        layers.append(layer)
    if pinned_tail is not None:
        layers.append([pinned_tail])
    return layers


@dataclass
class CompactionReport:
    """Outcome of :func:`compact` over a whole system."""

    blocks: int = 0
    restructured: int = 0
    states_before: int = 0
    layers_after: int = 0
    log: TransformLog = field(default_factory=TransformLog)

    @property
    def steps_saved(self) -> int:
        return self.states_before - self.layers_after

    def summary(self) -> str:
        return (f"compacted {self.restructured}/{self.blocks} blocks: "
                f"{self.states_before} serial states -> {self.layers_after} "
                f"layers ({self.steps_saved} steps saved)")


def compact(system: DataControlSystem,
            limits: Mapping[str, int] | None = None, *,
            verify: bool = True,
            lint: bool | None = None
            ) -> tuple[DataControlSystem, CompactionReport]:
    """Schedule every linear block and restructure the control net.

    Returns the transformed system (the input is untouched) and a report.
    Blocks whose schedule is already serial-optimal (one layer per state
    with no parallelism gained) are left alone.

    With ``lint`` enabled (default: follows ``verify``) each accepted move
    must also preserve lint-cleanliness: a restructuring that introduces a
    new error-level structural finding (:mod:`repro.analysis.lint`) is
    skipped like a failed equivalence check.  The comparison is
    regression-only — pre-existing findings of the input system are
    tolerated — and the baseline is recomputed after every accepted move
    so renamed elements do not accumulate false regressions.
    """
    from ..analysis.lint import error_fingerprints, lint_regressions

    if lint is None:
        lint = verify
    report = CompactionReport()
    current = system
    baseline = error_fingerprints(current) if lint else frozenset()
    for block in linear_blocks(current):
        report.blocks += 1
        layers = list_schedule(current, block, limits)
        report.states_before += len(block)
        report.layers_after += len(layers)
        if len(layers) == len(block):
            continue  # nothing gained
        transform = RestructureBlock(block, layers)
        legality = transform.is_legal(current)
        if not legality:
            report.log.record(transform, legal=False, reason=legality.reason)
            continue
        try:
            candidate = transform.apply(current, verify=verify)
        except TransformError as error:
            # the post-hoc Definition 4.5 check rejected a move the static
            # pre-check accepted: skip it — compaction must never turn a
            # legal program into a crash, only into a (possibly slower)
            # equivalent one
            report.log.record(transform, legal=False, reason=str(error))
            continue
        if lint:
            regressions = lint_regressions(baseline, candidate)
            if regressions:
                report.log.record(
                    transform, legal=False,
                    reason="lint regression: "
                           + "; ".join(str(d) for d in regressions[:3]))
                continue
            baseline = error_fingerprints(candidate)
        current = candidate
        report.log.record(transform)
        report.restructured += 1
    return current, report
