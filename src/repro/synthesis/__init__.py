"""Hardware synthesis pipeline (Section 5): frontend → transformations.

* :mod:`~repro.synthesis.frontend` — behavioural language, parser, eDSL,
  compiler to the naive serial Γ;
* :mod:`~repro.synthesis.schedule` — block detection, ASAP/ALAP/list
  scheduling, compaction via :class:`RestructureBlock`;
* :mod:`~repro.synthesis.allocate` — resource sharing via vertex mergers;
* :mod:`~repro.synthesis.critical_path` — the guiding analysis;
* :mod:`~repro.synthesis.cost` — the area model;
* :mod:`~repro.synthesis.optimize` — the greedy CAMAD loop.
"""

from .allocate import (
    SharingReport,
    compatibility_classes,
    merger_candidates,
    share_all,
)
from .cost import (
    CostReport,
    WIRE_COST,
    datapath_cost,
    functional_unit_count,
    register_count,
    system_cost,
)
from .critical_path import (
    CriticalPath,
    clock_period,
    critical_path,
    place_delay,
    schedule_length,
)
from .frontend import ProgramBuilder, compile_program, compile_source, parse, unparse
from .optimize import Move, Objective, OptimizationResult, optimize, optimize_portfolio, optimize_random
from .schedule import (
    CompactionReport,
    alap_layers,
    asap_layers,
    compact,
    linear_blocks,
    list_schedule,
    place_resources,
)

__all__ = [
    "compile_source",
    "compile_program",
    "parse",
    "unparse",
    "ProgramBuilder",
    "linear_blocks",
    "asap_layers",
    "alap_layers",
    "list_schedule",
    "place_resources",
    "compact",
    "CompactionReport",
    "share_all",
    "compatibility_classes",
    "merger_candidates",
    "SharingReport",
    "critical_path",
    "CriticalPath",
    "place_delay",
    "clock_period",
    "schedule_length",
    "system_cost",
    "datapath_cost",
    "CostReport",
    "WIRE_COST",
    "functional_unit_count",
    "register_count",
    "Objective",
    "optimize",
    "optimize_random",
    "optimize_portfolio",
    "OptimizationResult",
    "Move",
]
