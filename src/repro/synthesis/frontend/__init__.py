"""Behavioural frontend: language, parser, eDSL builder, compiler."""

from .ast import (
    Assign,
    BinOp,
    Const,
    Expr,
    If,
    Par,
    Program,
    Read,
    Stmt,
    UnOp,
    Var,
    While,
    Write,
)
from .builder import (
    ProgramBuilder,
    add,
    and_,
    c,
    div,
    eq,
    ge,
    gt,
    le,
    lt,
    mod,
    mul,
    ne,
    neg,
    not_,
    or_,
    shl,
    shr,
    sub,
    v,
)
from .compile import compile_program, compile_source
from .lexer import Token, tokenize
from .parser import parse
from .unparse import unparse, unparse_expr

__all__ = [
    "Program", "Stmt", "Expr",
    "Var", "Const", "BinOp", "UnOp",
    "Assign", "Read", "Write", "If", "While", "Par",
    "ProgramBuilder",
    "v", "c", "add", "sub", "mul", "div", "mod",
    "eq", "ne", "lt", "le", "gt", "ge",
    "and_", "or_", "not_", "neg", "shl", "shr",
    "parse", "tokenize", "Token", "unparse", "unparse_expr",
    "compile_program", "compile_source",
]
