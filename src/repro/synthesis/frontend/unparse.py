"""Pretty-printer: AST → behavioural source text.

The inverse of :func:`repro.synthesis.frontend.parser.parse` up to
formatting: ``parse(unparse(p)) == p`` for every valid program, which the
property-based test suite checks on random programs.  Useful for saving
eDSL-built designs in reviewable form.
"""

from __future__ import annotations

from ...datapath.operations import BINARY_SYMBOLS, UNARY_SYMBOLS
from ...errors import DefinitionError
from .ast import Assign, BinOp, Const, Expr, If, Par, Program, Read, Stmt, UnOp, Var, While, Write

#: operation name -> surface symbol (inverse of the frontend tables)
_BINARY_TEXT = {name: symbol for symbol, name in BINARY_SYMBOLS.items()}
_UNARY_TEXT = {name: symbol for symbol, name in UNARY_SYMBOLS.items()}

#: precedence levels mirroring the parser's table
_PRECEDENCE = {
    "or": 1, "and": 2, "bor": 3, "bxor": 4, "band": 5,
    "eq": 6, "ne": 6,
    "lt": 7, "le": 7, "gt": 7, "ge": 7,
    "shl": 8, "shr": 8,
    "add": 9, "sub": 9,
    "mul": 10, "div": 10, "mod": 10,
}
_UNARY_LEVEL = 11


def unparse_expr(expr: Expr, parent_level: int = 0) -> str:
    """Render an expression with minimal parentheses.

    Conservative about associativity: any nested binary operation on the
    *right* of an equal-precedence parent is parenthesised, so the
    re-parsed tree (left-associative grammar) matches the original.
    """
    if isinstance(expr, Const):
        # negative literals re-parse as folded unary minus -> same Const
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnOp):
        inner = unparse_expr(expr.operand, _UNARY_LEVEL)
        return f"{_UNARY_TEXT[expr.op]}{inner}"
    if isinstance(expr, BinOp):
        level = _PRECEDENCE[expr.op]
        left = unparse_expr(expr.left, level)
        right = unparse_expr(expr.right, level + 1)
        text = f"{left} {_BINARY_TEXT[expr.op]} {right}"
        if level < parent_level:
            return f"({text})"
        return text
    raise DefinitionError(f"unknown expression {expr!r}")  # pragma: no cover


def _unparse_block(block: tuple[Stmt, ...], indent: int) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    for statement in block:
        if isinstance(statement, Assign):
            lines.append(f"{pad}{statement.target} = "
                         f"{unparse_expr(statement.expr)};")
        elif isinstance(statement, Read):
            lines.append(f"{pad}{statement.target} = "
                         f"read({statement.source});")
        elif isinstance(statement, Write):
            lines.append(f"{pad}write({statement.target}, "
                         f"{unparse_expr(statement.expr)});")
        elif isinstance(statement, If):
            lines.append(f"{pad}if ({unparse_expr(statement.cond)}) {{")
            lines.extend(_unparse_block(statement.then, indent + 1))
            if statement.orelse:
                lines.append(f"{pad}}} else {{")
                lines.extend(_unparse_block(statement.orelse, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(statement, While):
            lines.append(f"{pad}while ({unparse_expr(statement.cond)}) {{")
            lines.extend(_unparse_block(statement.body, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(statement, Par):
            lines.append(f"{pad}par {{")
            for branch in statement.branches:
                lines.append(f"{pad}  {{")
                lines.extend(_unparse_block(branch, indent + 2))
                lines.append(f"{pad}  }}")
            lines.append(f"{pad}}}")
        else:  # pragma: no cover - exhaustive
            raise DefinitionError(f"unknown statement {statement!r}")
    return lines


def unparse(program: Program) -> str:
    """Render a complete program as parseable source text."""
    lines = [f"design {program.name} {{"]
    if program.inputs:
        lines.append(f"  input {', '.join(program.inputs)};")
    if program.outputs:
        lines.append(f"  output {', '.join(program.outputs)};")
    if program.variables:
        declarations = ", ".join(
            name if value == 0 else f"{name} = {value}"
            for name, value in program.variables.items()
        )
        lines.append(f"  var {declarations};")
    lines.extend(_unparse_block(program.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"
