"""Recursive-descent parser for the behavioural language.

Grammar (EBNF; ``#``/``//`` line comments allowed everywhere):

.. code-block:: text

    program   := "design" IDENT "{" decl* stmt* "}"
    decl      := "input"  IDENT ("," IDENT)* ";"
               | "output" IDENT ("," IDENT)* ";"
               | "var"    var_init ("," var_init)* ";"
    var_init  := IDENT ("=" ("-")? INT)?
    stmt      := IDENT "=" "read" "(" IDENT ")" ";"
               | IDENT "=" expr ";"
               | "write" "(" IDENT "," expr ")" ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "for" "(" assign ";" expr ";" assign ")" block
               | "par" "{" block block* "}"

``for`` is pure sugar: it desugars in the parser to the initialiser
followed by a ``while`` whose body ends with the update assignment, so
everything downstream (compiler, transformations) sees only core forms.
    block     := "{" stmt* "}"
    expr      := precedence-climbing over the binary operator table of
                 :mod:`repro.datapath.operations`; unary "-" and "!";
                 primaries: INT, IDENT, "(" expr ")"

Operator precedence (loosest to tightest): ``||``, ``&&``,
``|``, ``^``, ``&``, equality, relational, shifts, additive,
multiplicative.
"""

from __future__ import annotations

from ...datapath.operations import BINARY_SYMBOLS, UNARY_SYMBOLS
from ...errors import ParseError
from .ast import Assign, BinOp, Const, Expr, If, Par, Program, Read, Stmt, UnOp, Var, While, Write
from .lexer import Token, tokenize

#: precedence level per binary operator symbol (higher binds tighter)
_PRECEDENCE: dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        # statements a desugaring wants emitted *before* the one being
        # parsed (the for-loop initialiser)
        self._pending_prefix: list[Stmt] = []

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line, token.column,
            )
        return self._next()

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    # -- program --------------------------------------------------------
    def parse_program(self) -> Program:
        self._expect("keyword", "design")
        name = self._expect("ident").text
        self._expect("op", "{")
        inputs: list[str] = []
        outputs: list[str] = []
        variables: dict[str, int] = {}
        while self._peek().kind == "keyword" and \
                self._peek().text in ("input", "output", "var"):
            keyword = self._next().text
            if keyword in ("input", "output"):
                names = [self._expect("ident").text]
                while self._accept("op", ","):
                    names.append(self._expect("ident").text)
                (inputs if keyword == "input" else outputs).extend(names)
            else:
                while True:
                    ident = self._expect("ident").text
                    init = 0
                    if self._accept("op", "="):
                        sign = -1 if self._accept("op", "-") else 1
                        init = sign * int(self._expect("int").text)
                    variables[ident] = init
                    if not self._accept("op", ","):
                        break
            self._expect("op", ";")
        body = self._parse_statements(stop="}")
        self._expect("op", "}")
        self._expect("eof")
        program = Program(name, tuple(inputs), tuple(outputs), variables,
                          tuple(body))
        program.validate()
        return program

    # -- statements -------------------------------------------------------
    def _parse_statements(self, stop: str) -> list[Stmt]:
        statements: list[Stmt] = []
        while not (self._peek().kind == "op" and self._peek().text == stop):
            if self._peek().kind == "eof":
                token = self._peek()
                raise ParseError(f"unexpected end of input (missing {stop!r})",
                                 token.line, token.column)
            statement = self._parse_statement()
            statements.extend(self._pending_prefix)
            self._pending_prefix.clear()
            statements.append(statement)
        return statements

    def _parse_simple_assignment(self) -> Assign:
        target = self._expect("ident").text
        self._expect("op", "=")
        return Assign(target, self._parse_expr())

    def _parse_block(self) -> tuple[Stmt, ...]:
        self._expect("op", "{")
        statements = self._parse_statements(stop="}")
        self._expect("op", "}")
        return tuple(statements)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.kind == "keyword":
            if token.text == "if":
                self._next()
                self._expect("op", "(")
                cond = self._parse_expr()
                self._expect("op", ")")
                then = self._parse_block()
                orelse: tuple[Stmt, ...] = ()
                if self._accept("keyword", "else"):
                    orelse = self._parse_block()
                return If(cond, then, orelse)
            if token.text == "while":
                self._next()
                self._expect("op", "(")
                cond = self._parse_expr()
                self._expect("op", ")")
                body = self._parse_block()
                return While(cond, body)
            if token.text == "for":
                # for (i = e0; cond; i = e1) { body }  ==>
                #   i = e0; while (cond) { body; i = e1; }
                # the parser returns the while; the initialiser is
                # spliced in by _parse_statements via _pending_prefix
                self._next()
                self._expect("op", "(")
                init = self._parse_simple_assignment()
                self._expect("op", ";")
                cond = self._parse_expr()
                self._expect("op", ";")
                update = self._parse_simple_assignment()
                self._expect("op", ")")
                body = self._parse_block()
                self._pending_prefix.append(init)
                return While(cond, body + (update,))
            if token.text == "par":
                self._next()
                self._expect("op", "{")
                branches = [self._parse_block()]
                while self._peek().kind == "op" and self._peek().text == "{":
                    branches.append(self._parse_block())
                self._expect("op", "}")
                if len(branches) < 2:
                    raise ParseError("par needs at least two branches",
                                     token.line, token.column)
                return Par(tuple(branches))
            if token.text == "write":
                self._next()
                self._expect("op", "(")
                target = self._expect("ident").text
                self._expect("op", ",")
                expr = self._parse_expr()
                self._expect("op", ")")
                self._expect("op", ";")
                return Write(target, expr)
            raise ParseError(f"unexpected keyword {token.text!r}",
                             token.line, token.column)
        if token.kind == "ident":
            target = self._next().text
            self._expect("op", "=")
            if self._accept("keyword", "read"):
                self._expect("op", "(")
                source = self._expect("ident").text
                self._expect("op", ")")
                self._expect("op", ";")
                return Read(target, source)
            expr = self._parse_expr()
            self._expect("op", ";")
            return Assign(target, expr)
        raise ParseError(f"unexpected token {token.text or token.kind!r}",
                         token.line, token.column)

    # -- expressions ------------------------------------------------------
    def _parse_expr(self, min_precedence: int = 1) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op" or token.text not in _PRECEDENCE:
                return left
            precedence = _PRECEDENCE[token.text]
            if precedence < min_precedence:
                return left
            self._next()
            right = self._parse_expr(precedence + 1)
            left = BinOp(BINARY_SYMBOLS[token.text], left, right)

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.text in UNARY_SYMBOLS:
            self._next()
            operand = self._parse_unary()
            # constant-fold unary minus on literals so "-3" is a constant
            if token.text == "-" and isinstance(operand, Const):
                return Const(-operand.value)
            return UnOp(UNARY_SYMBOLS[token.text], operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.kind == "int":
            return Const(int(token.text))
        if token.kind == "ident":
            return Var(token.text)
        if token.kind == "op" and token.text == "(":
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text or token.kind!r} "
                         "in expression", token.line, token.column)


def parse(source: str) -> Program:
    """Parse behavioural source text into a validated :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
