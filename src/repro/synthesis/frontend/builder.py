"""Python eDSL for building behavioural programs.

Equivalent in power to the textual frontend but convenient from code —
the design zoo and the property-based tests generate programs through it.

Expression helpers
------------------

``v("x")``, ``c(3)``, ``add(a, b)``, ``sub``, ``mul``, ``div``, ``mod``,
``eq``, ``ne``, ``lt``, ``le``, ``gt``, ``ge``, ``and_``, ``or_``,
``not_``, ``neg`` — each returns a plain AST expression.  Bare ints and
strings are coerced: ``add("x", 1)`` means ``add(v("x"), c(1))``.

Program builder
---------------

.. code-block:: python

    b = ProgramBuilder("gcd", inputs=["a_in", "b_in"], outputs=["result"])
    b.vars(a=0, b=0)
    b.read("a", "a_in")
    b.read("b", "b_in")
    with b.while_(ne("a", "b")):
        with b.if_(gt("a", "b")):
            b.assign("a", sub("a", "b"))
        with b.else_():
            b.assign("b", sub("b", "a"))
    b.write("result", "a")
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from ...errors import DefinitionError
from .ast import Assign, BinOp, Const, Expr, If, Par, Program, Read, Stmt, UnOp, Var, While, Write


def _coerce(value) -> Expr:
    """Accept AST expressions, variable names, or integer literals."""
    if isinstance(value, (Var, Const, BinOp, UnOp)):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise DefinitionError(f"cannot coerce {value!r} to an expression")


def v(name: str) -> Var:
    """Variable reference."""
    return Var(name)


def c(value: int) -> Const:
    """Integer constant."""
    return Const(value)


def _binary(op: str):
    def build(left, right) -> BinOp:
        return BinOp(op, _coerce(left), _coerce(right))
    build.__name__ = op
    build.__doc__ = f"Binary ``{op}`` expression."
    return build


add = _binary("add")
sub = _binary("sub")
mul = _binary("mul")
div = _binary("div")
mod = _binary("mod")
eq = _binary("eq")
ne = _binary("ne")
lt = _binary("lt")
le = _binary("le")
gt = _binary("gt")
ge = _binary("ge")
and_ = _binary("and")
or_ = _binary("or")
shl = _binary("shl")
shr = _binary("shr")


def not_(operand) -> UnOp:
    """Logical negation."""
    return UnOp("not", _coerce(operand))


def neg(operand) -> UnOp:
    """Arithmetic negation."""
    return UnOp("neg", _coerce(operand))


class ProgramBuilder:
    """Imperative builder producing an immutable :class:`Program`."""

    def __init__(self, name: str, *, inputs: Sequence[str] = (),
                 outputs: Sequence[str] = ()) -> None:
        self._name = name
        self._inputs = list(inputs)
        self._outputs = list(outputs)
        self._variables: dict[str, int] = {}
        self._blocks: list[list[Stmt]] = [[]]
        # pending If awaiting a possible else_()
        self._pending_if: list[If | None] = [None]

    # -- declarations ----------------------------------------------------
    def inputs(self, *names: str) -> "ProgramBuilder":
        self._inputs.extend(names)
        return self

    def outputs(self, *names: str) -> "ProgramBuilder":
        self._outputs.extend(names)
        return self

    def vars(self, **initials: int) -> "ProgramBuilder":
        """Declare variables with initial values: ``b.vars(x=0, y=3)``."""
        self._variables.update(initials)
        return self

    # -- simple statements -------------------------------------------------
    def _emit(self, stmt: Stmt) -> None:
        self._blocks[-1].append(stmt)
        self._pending_if[-1] = None

    def assign(self, target: str, expr) -> "ProgramBuilder":
        self._emit(Assign(target, _coerce(expr)))
        return self

    def read(self, target: str, source: str) -> "ProgramBuilder":
        self._emit(Read(target, source))
        return self

    def write(self, target: str, expr) -> "ProgramBuilder":
        self._emit(Write(target, _coerce(expr)))
        return self

    # -- structured statements ----------------------------------------------
    @contextmanager
    def if_(self, cond) -> Iterator[None]:
        """``with b.if_(cond): …`` — optionally followed by ``b.else_()``."""
        self._blocks.append([])
        self._pending_if.append(None)
        yield
        self._pending_if.pop()
        body = tuple(self._blocks.pop())
        statement = If(_coerce(cond), body)
        self._blocks[-1].append(statement)
        self._pending_if[-1] = statement

    @contextmanager
    def else_(self) -> Iterator[None]:
        """Attach an else-branch to the immediately preceding ``if_``."""
        pending = self._pending_if[-1]
        if pending is None or not self._blocks[-1] \
                or self._blocks[-1][-1] is not pending:
            raise DefinitionError("else_() must directly follow an if_() block")
        self._blocks.append([])
        self._pending_if.append(None)
        yield
        self._pending_if.pop()
        orelse = tuple(self._blocks.pop())
        replaced = If(pending.cond, pending.then, orelse)
        self._blocks[-1][-1] = replaced
        self._pending_if[-1] = None

    @contextmanager
    def while_(self, cond) -> Iterator[None]:
        """``with b.while_(cond): …``"""
        self._blocks.append([])
        self._pending_if.append(None)
        yield
        self._pending_if.pop()
        body = tuple(self._blocks.pop())
        self._emit(While(_coerce(cond), body))

    @contextmanager
    def par(self) -> Iterator["_ParBuilder"]:
        """``with b.par() as p:`` then ``with p.branch(): …`` per branch."""
        par_builder = _ParBuilder(self)
        yield par_builder
        if len(par_builder.branches) < 2:
            raise DefinitionError("par needs at least two branches")
        self._emit(Par(tuple(par_builder.branches)))

    # -- finish -----------------------------------------------------------
    def build(self) -> Program:
        if len(self._blocks) != 1:
            raise DefinitionError("unbalanced structured blocks")
        program = Program(self._name, tuple(self._inputs),
                          tuple(self._outputs), dict(self._variables),
                          tuple(self._blocks[0]))
        program.validate()
        return program


class _ParBuilder:
    """Collects the branches of one ``par`` statement."""

    def __init__(self, owner: ProgramBuilder) -> None:
        self._owner = owner
        self.branches: list[tuple[Stmt, ...]] = []

    @contextmanager
    def branch(self) -> Iterator[None]:
        self._owner._blocks.append([])
        self._owner._pending_if.append(None)
        yield
        self._owner._pending_if.pop()
        self.branches.append(tuple(self._owner._blocks.pop()))
