"""Compiler: behavioural AST → data/control flow system Γ.

The translation follows the paper's Section 5 flow ("we first transform
the description into the data/control flow notation") and produces the
*naive serial* design — one control state per primitive statement, all
states chained sequentially.  Every later improvement (compaction,
resource sharing) is carried out by the semantics-preserving
transformations of :mod:`repro.transform`, never by the compiler.

Mapping:

=====================  =====================================================
source construct        compiled structure
=====================  =====================================================
variable ``x``          register vertex ``reg_x`` (initial value from decl)
input/output name       input/output pad vertex with the same name
constant ``k``          one shared wired-constant vertex ``c<k>``
operator use            a *fresh* combinational vertex per occurrence
                        (sharing is the optimizer's job, Definition 4.6)
``x = e;``              place opening the expression arcs + latch arc
``x = read(i);``        place opening the external arc ``i.out → reg_x.d``
``write(o, e);``        place opening expression arcs + external arc to pad
``if (c) A else B``     place evaluating ``c`` (latching it into a fresh
                        condition register to satisfy rule 3.2(5)), two
                        guarded transitions with complementary guards
                        (``c`` and ``not c`` — provably conflict-free),
                        branch sub-nets, joined on exit
``while (c) A``         condition place as for ``if``; guarded loop entry,
                        guarded exit, unguarded back edges
``par { A B … }``       fork transition → branch sub-nets → join transition
=====================  =====================================================

Each compiled control state drives at least one sequential vertex
(assignments latch their target, condition states latch the condition
register, writes latch the output pad), so compiled systems satisfy
Definition 3.2(5) by construction; rules 1–4 are checked by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.system import DataControlSystem
from ...datapath.graph import DataPath
from ...datapath.library import constant, input_pad, inverter, operator, output_pad, register
from ...datapath.operations import get_operation
from ...datapath.ports import PortId
from ...errors import DefinitionError
from ...petri.net import PetriNet
from .ast import Assign, BinOp, Const, Expr, If, Par, Program, Read, Stmt, UnOp, Var, While, Write


@dataclass
class _Exit:
    """A dangling block exit awaiting its successor.

    Either a *place* whose token must be moved on by a fresh transition,
    or an already-created *transition* that still lacks its output arc
    (guarded if/while exits, par joins).
    """

    place: str | None = None
    transition: str | None = None


class _Compiler:
    def __init__(self, program: Program) -> None:
        program.validate()
        self.program = program
        self.dp = DataPath(name=program.name)
        self.net = PetriNet(name=program.name)
        self.system = DataControlSystem(self.dp, self.net, name=program.name)
        self._place_counter = 0
        self._vertex_counter = 0
        self._transition_counter = 0
        self._consts: dict[int, str] = {}
        for name in program.inputs:
            self.dp.add_vertex(input_pad(name))
        for name in program.outputs:
            self.dp.add_vertex(output_pad(name))
        for name, init in program.variables.items():
            self.dp.add_vertex(register(f"reg_{name}", init))

    # -- fresh names ------------------------------------------------------
    def _place(self, label: str) -> str:
        name = f"s{self._place_counter}_{label}"
        self._place_counter += 1
        self.net.add_place(name, label=label)
        return name

    def _transition(self, stem: str) -> str:
        name = f"{stem}{self._transition_counter}"
        self._transition_counter += 1
        self.net.add_transition(name)
        return name

    def _vertex_name(self, stem: str) -> str:
        name = f"{stem}{self._vertex_counter}"
        self._vertex_counter += 1
        return name

    # -- expressions ------------------------------------------------------
    def _const_vertex(self, value: int) -> str:
        if value not in self._consts:
            name = f"c{value}" if value >= 0 else f"cm{-value}"
            self.dp.add_vertex(constant(name, value))
            self._consts[value] = name
        return self._consts[value]

    def _compile_expr(self, expr: Expr, arcs: set[str]) -> PortId:
        """Build the expression tree; returns the result output port.

        All internal connection arcs are added to ``arcs`` so the calling
        statement can map them to its control state.
        """
        if isinstance(expr, Var):
            return PortId(f"reg_{expr.name}", "q")
        if isinstance(expr, Const):
            return PortId(self._const_vertex(expr.value), "o")
        if isinstance(expr, BinOp):
            get_operation(expr.op)  # validate the operation name eagerly
            left = self._compile_expr(expr.left, arcs)
            right = self._compile_expr(expr.right, arcs)
            vertex = self.dp.add_vertex(
                operator(self._vertex_name(expr.op), expr.op))
            arcs.add(self.dp.connect(left, PortId(vertex.name, "l")).name)
            arcs.add(self.dp.connect(right, PortId(vertex.name, "r")).name)
            return PortId(vertex.name, "o")
        if isinstance(expr, UnOp):
            get_operation(expr.op)
            operand = self._compile_expr(expr.operand, arcs)
            vertex = self.dp.add_vertex(
                operator(self._vertex_name(expr.op), expr.op))
            arcs.add(self.dp.connect(operand, PortId(vertex.name, "i")).name)
            return PortId(vertex.name, "o")
        raise DefinitionError(f"unknown expression {expr!r}")  # pragma: no cover

    # -- linking ------------------------------------------------------------
    def _link(self, exits: list[_Exit], target: str) -> None:
        """Route every dangling exit into the target place."""
        for exit_ in exits:
            if exit_.transition is not None:
                self.net.add_arc(exit_.transition, target)
            else:
                assert exit_.place is not None
                t = self._transition("t")
                self.net.add_arc(exit_.place, t)
                self.net.add_arc(t, target)

    def _terminate(self, exits: list[_Exit]) -> None:
        """End of program: exits consume their token and stop (Def 3.1(6))."""
        for exit_ in exits:
            if exit_.place is not None:
                t = self._transition("t_end")
                self.net.add_arc(exit_.place, t)
            # open transitions with no output arc already just consume

    def _noop_place(self, label: str) -> str:
        """A place controlling no arcs (pure control glue)."""
        return self._place(label)

    # -- statements -----------------------------------------------------------
    def _compile_condition(self, cond: Expr, label: str
                           ) -> tuple[str, PortId, PortId]:
        """Compile a condition-evaluation state.

        Returns ``(place, true_port, false_port)``.  The state opens the
        expression arcs, feeds the complement through a ``not`` vertex
        (so the two branch guards are provably exclusive — rule 3.2(3)),
        and latches the condition into a fresh register (rule 3.2(5)).
        """
        place = self._place(label)
        arcs: set[str] = set()
        true_port = self._compile_expr(cond, arcs)
        nv = self.dp.add_vertex(inverter(self._vertex_name("not")))
        arcs.add(self.dp.connect(true_port, PortId(nv.name, "i")).name)
        creg = self.dp.add_vertex(register(self._vertex_name("creg")))
        arcs.add(self.dp.connect(true_port, PortId(creg.name, "d")).name)
        self.system.set_control(place, arcs)
        return place, true_port, PortId(nv.name, "o")

    def _compile_block(self, block: tuple[Stmt, ...], label: str
                       ) -> tuple[str, list[_Exit]]:
        """Compile a statement sequence; empty blocks become no-op states."""
        if not block:
            place = self._noop_place(f"{label}_noop")
            return place, [_Exit(place=place)]
        entry: str | None = None
        exits: list[_Exit] = []
        for statement in block:
            s_entry, s_exits = self._compile_stmt(statement)
            if entry is None:
                entry = s_entry
            else:
                self._link(exits, s_entry)
            exits = s_exits
        assert entry is not None
        return entry, exits

    def _compile_stmt(self, stmt: Stmt) -> tuple[str, list[_Exit]]:
        if isinstance(stmt, Assign):
            place = self._place(f"assign_{stmt.target}")
            arcs: set[str] = set()
            result = self._compile_expr(stmt.expr, arcs)
            target = PortId(f"reg_{stmt.target}", "d")
            arcs.add(self.dp.connect(result, target).name)
            self.system.set_control(place, arcs)
            return place, [_Exit(place=place)]

        if isinstance(stmt, Read):
            place = self._place(f"read_{stmt.target}")
            source = PortId(stmt.source,
                            self.dp.vertex(stmt.source).out_ports[0])
            arc = self.dp.connect(source, PortId(f"reg_{stmt.target}", "d"))
            self.system.set_control(place, {arc.name})
            return place, [_Exit(place=place)]

        if isinstance(stmt, Write):
            place = self._place(f"write_{stmt.target}")
            arcs = set()
            result = self._compile_expr(stmt.expr, arcs)
            pad_in = PortId(stmt.target,
                            self.dp.vertex(stmt.target).in_ports[0])
            arcs.add(self.dp.connect(result, pad_in).name)
            self.system.set_control(place, arcs)
            return place, [_Exit(place=place)]

        if isinstance(stmt, If):
            place, true_port, false_port = self._compile_condition(
                stmt.cond, "if")
            t_then = self._transition("t_then")
            self.net.add_arc(place, t_then)
            self.system.set_guard(t_then, [true_port])
            then_entry, then_exits = self._compile_block(stmt.then, "then")
            self.net.add_arc(t_then, then_entry)

            t_else = self._transition("t_else")
            self.net.add_arc(place, t_else)
            self.system.set_guard(t_else, [false_port])
            if stmt.orelse:
                else_entry, else_exits = self._compile_block(stmt.orelse,
                                                             "else")
                self.net.add_arc(t_else, else_entry)
                return place, then_exits + else_exits
            return place, then_exits + [_Exit(transition=t_else)]

        if isinstance(stmt, While):
            place, true_port, false_port = self._compile_condition(
                stmt.cond, "while")
            t_body = self._transition("t_body")
            self.net.add_arc(place, t_body)
            self.system.set_guard(t_body, [true_port])
            body_entry, body_exits = self._compile_block(stmt.body, "body")
            self.net.add_arc(t_body, body_entry)
            self._link(body_exits, place)  # back edges

            t_exit = self._transition("t_exit")
            self.net.add_arc(place, t_exit)
            self.system.set_guard(t_exit, [false_port])
            return place, [_Exit(transition=t_exit)]

        if isinstance(stmt, Par):
            head = self._noop_place("par")
            t_fork = self._transition("t_fork")
            self.net.add_arc(head, t_fork)
            t_join = self._transition("t_join")
            for index, branch in enumerate(stmt.branches):
                entry, exits = self._compile_block(branch, f"branch{index}")
                self.net.add_arc(t_fork, entry)
                if len(exits) == 1 and exits[0].place is not None:
                    landing = exits[0].place
                else:
                    landing = self._noop_place(f"bend{index}")
                    self._link(exits, landing)
                self.net.add_arc(landing, t_join)
            return head, [_Exit(transition=t_join)]

        raise DefinitionError(f"unknown statement {stmt!r}")  # pragma: no cover

    # -- program ------------------------------------------------------------
    def compile(self) -> DataControlSystem:
        entry = self._noop_place("entry")
        self.net.set_initial(entry, 1)
        body_entry, exits = self._compile_block(self.program.body, "main")
        self._link([_Exit(place=entry)], body_entry)
        self._terminate(exits)
        self.system.invalidate()
        return self.system


def compile_program(program: Program) -> DataControlSystem:
    """Compile a validated :class:`Program` into the naive serial Γ."""
    return _Compiler(program).compile()


def compile_source(source: str) -> DataControlSystem:
    """Parse and compile behavioural source text."""
    from .parser import parse

    return compile_program(parse(source))
