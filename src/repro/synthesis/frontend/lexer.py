"""Tokenizer for the behavioural input language."""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ParseError

KEYWORDS = frozenset({
    "design", "input", "output", "var", "if", "else", "while", "for",
    "par", "read", "write",
})

#: Multi-character operators, longest first so the scanner is greedy.
OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", ",", ";",
)


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str   # "ident" | "int" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Scan source text into tokens; ``#`` and ``//`` start line comments."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token("int", source[start:i], line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
