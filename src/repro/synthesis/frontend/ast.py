"""Abstract syntax of the behavioural input language.

The paper's synthesis flow starts from "some algorithmic description of
its behavior" (Section 5) which is first translated into the data/control
flow notation.  This is that algorithmic language: a small imperative
core with variables, arithmetic/logic expressions, environment I/O and
structured control flow including an explicit ``par`` construct for
designer-specified parallelism.

The AST is deliberately plain: frozen dataclasses, no methods beyond
pretty-printing — the compiler in
:mod:`repro.synthesis.frontend.compile` walks it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ...datapath.operations import BINARY_SYMBOLS, UNARY_SYMBOLS
from ...errors import DefinitionError

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """Reference to a declared variable (a register in the data path)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """Integer literal (a wired-constant vertex)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinOp:
    """Binary operation; ``op`` is an operation name (``"add"``, ``"lt"`` …)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        symbol = next((s for s, n in BINARY_SYMBOLS.items() if n == self.op),
                      self.op)
        return f"({self.left} {symbol} {self.right})"


@dataclass(frozen=True)
class UnOp:
    """Unary operation; ``op`` is an operation name (``"neg"``, ``"not"``)."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        symbol = next((s for s, n in UNARY_SYMBOLS.items() if n == self.op),
                      self.op)
        return f"{symbol}{self.operand}"


Expr = Union[Var, Const, BinOp, UnOp]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``target = expr;`` — latch an expression into a variable register."""

    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr};"


@dataclass(frozen=True)
class Read:
    """``target = read(source);`` — consume one environment value."""

    target: str
    source: str

    def __str__(self) -> str:
        return f"{self.target} = read({self.source});"


@dataclass(frozen=True)
class Write:
    """``write(target, expr);`` — emit a value to an output pad."""

    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"write({self.target}, {self.expr});"


@dataclass(frozen=True)
class If:
    """Two-way branch; ``orelse`` may be empty."""

    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()

    def __str__(self) -> str:
        text = f"if ({self.cond}) {{ … {len(self.then)} stmt }}"
        if self.orelse:
            text += f" else {{ … {len(self.orelse)} stmt }}"
        return text


@dataclass(frozen=True)
class While:
    """Pre-tested loop."""

    cond: Expr
    body: tuple["Stmt", ...]

    def __str__(self) -> str:
        return f"while ({self.cond}) {{ … {len(self.body)} stmt }}"


@dataclass(frozen=True)
class Par:
    """Designer-specified parallel branches (fork/join in the control net).

    The branches must not share written state — the properly-designed
    checker (rule 1) will reject the compiled system otherwise.
    """

    branches: tuple[tuple["Stmt", ...], ...]

    def __str__(self) -> str:
        return f"par {{ {len(self.branches)} branches }}"


Stmt = Union[Assign, Read, Write, If, While, Par]


# ---------------------------------------------------------------------------
# program
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A complete behavioural design.

    Attributes
    ----------
    name:
        Design name (becomes the system name).
    inputs / outputs:
        Environment port names (become input/output pad vertices).
    variables:
        Declared variables with initial values (become registers).
    body:
        Statement sequence.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    variables: dict[str, int] = field(default_factory=dict)
    body: tuple[Stmt, ...] = ()

    def validate(self) -> None:
        """Name-resolution checks; raises on the first problem."""
        declared = set(self.variables)
        inputs, outputs = set(self.inputs), set(self.outputs)
        overlap = declared & (inputs | outputs)
        if overlap:
            raise DefinitionError(
                f"names {sorted(overlap)} are both variables and I/O ports"
            )
        if inputs & outputs:
            raise DefinitionError(
                f"names {sorted(inputs & outputs)} are both inputs and outputs"
            )

        def check_expr(expr: Expr) -> None:
            if isinstance(expr, Var):
                if expr.name not in declared:
                    raise DefinitionError(f"undeclared variable {expr.name!r}")
            elif isinstance(expr, BinOp):
                check_expr(expr.left)
                check_expr(expr.right)
            elif isinstance(expr, UnOp):
                check_expr(expr.operand)

        def check_block(block: Sequence[Stmt]) -> None:
            for stmt in block:
                if isinstance(stmt, Assign):
                    if stmt.target not in declared:
                        raise DefinitionError(
                            f"assignment to undeclared variable {stmt.target!r}"
                        )
                    check_expr(stmt.expr)
                elif isinstance(stmt, Read):
                    if stmt.target not in declared:
                        raise DefinitionError(
                            f"read into undeclared variable {stmt.target!r}"
                        )
                    if stmt.source not in inputs:
                        raise DefinitionError(
                            f"read from undeclared input {stmt.source!r}"
                        )
                elif isinstance(stmt, Write):
                    if stmt.target not in outputs:
                        raise DefinitionError(
                            f"write to undeclared output {stmt.target!r}"
                        )
                    check_expr(stmt.expr)
                elif isinstance(stmt, If):
                    check_expr(stmt.cond)
                    check_block(stmt.then)
                    check_block(stmt.orelse)
                elif isinstance(stmt, While):
                    check_expr(stmt.cond)
                    check_block(stmt.body)
                elif isinstance(stmt, Par):
                    for branch in stmt.branches:
                        check_block(branch)
                else:  # pragma: no cover - exhaustive
                    raise DefinitionError(f"unknown statement {stmt!r}")

        check_block(self.body)

    def statement_count(self) -> int:
        """Total number of primitive statements (for reporting)."""

        def count(block: Sequence[Stmt]) -> int:
            total = 0
            for stmt in block:
                if isinstance(stmt, If):
                    total += 1 + count(stmt.then) + count(stmt.orelse)
                elif isinstance(stmt, While):
                    total += 1 + count(stmt.body)
                elif isinstance(stmt, Par):
                    total += sum(count(b) for b in stmt.branches)
                else:
                    total += 1
            return total

        return count(self.body)
