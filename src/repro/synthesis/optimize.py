"""The CAMAD-style optimization loop (Section 5).

"The synthesis algorithm starts with a preliminary design and transforms
it step by step towards an optimal one. … A critical path analysis
technique is used [to guide the transformation process]."

The optimizer is a greedy steepest-descent search over semantics-
preserving moves:

* **compaction** of a linear block (data-invariant restructure per the
  list schedule) — usually improves latency, never area;
* a **vertex merger** (control-invariant) — improves area, may lengthen
  the clock period through multiplexing;

scored by a weighted objective
``w_time · latency + w_area · area`` where latency is either the static
critical-path delay or, when a reference environment is supplied, the
measured execution time (steps × clock period) of a simulation run.
Every accepted move is a theorem-backed transformation, so the optimizer
explores only semantically equivalent designs — the central claim of the
paper's synthesis approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.system import DataControlSystem
from ..semantics.environment import Environment
from ..semantics.simulator import simulate
from ..transform.base import Transformation
from ..transform.control import RestructureBlock
from ..transform.datapath_tf import VertexMerger
from .allocate import merger_candidates
from .cost import system_cost
from .critical_path import clock_period, critical_path
from .schedule import linear_blocks, list_schedule


@dataclass
class Objective:
    """Weighted cost function over (latency, area)."""

    w_time: float = 1.0
    w_area: float = 1.0
    limits: Mapping[str, int] | None = None
    environment: Environment | None = None
    max_steps: int = 20_000

    def latency(self, system: DataControlSystem) -> float:
        if self.environment is not None:
            trace = simulate(system, self.environment.fork(),
                             max_steps=self.max_steps)
            return trace.step_count * max(clock_period(system), 1e-9)
        return critical_path(system).delay

    def area(self, system: DataControlSystem) -> float:
        return system_cost(system).total

    def evaluate(self, system: DataControlSystem) -> float:
        return self.w_time * self.latency(system) + self.w_area * self.area(system)


@dataclass
class Move:
    """One accepted optimization step."""

    description: str
    kind: str
    objective_before: float
    objective_after: float

    @property
    def gain(self) -> float:
        return self.objective_before - self.objective_after


@dataclass
class OptimizationResult:
    """Final design plus the audit trail of accepted moves."""

    system: DataControlSystem
    moves: list[Move] = field(default_factory=list)
    initial_objective: float = 0.0
    final_objective: float = 0.0

    @property
    def improvement(self) -> float:
        return self.initial_objective - self.final_objective

    def summary(self) -> str:
        lines = [
            f"objective {self.initial_objective:.2f} -> "
            f"{self.final_objective:.2f} in {len(self.moves)} move(s)"
        ]
        for move in self.moves:
            lines.append(f"  [{move.kind}] {move.description}: "
                         f"{move.objective_before:.2f} -> "
                         f"{move.objective_after:.2f}")
        return "\n".join(lines)


def _candidate_moves(system: DataControlSystem,
                     objective: Objective,
                     *, max_mergers: int = 12) -> list[tuple[str, Transformation]]:
    """Candidate transformations at the current design point."""
    from ..transform.register_sharing import (
        RegisterMerger,
        _plain_registers,
        registers_interfere,
    )

    candidates: list[tuple[str, Transformation]] = []
    for block in linear_blocks(system):
        layers = list_schedule(system, block, objective.limits)
        if len(layers) < len(block):
            candidates.append(("compaction", RestructureBlock(block, layers)))
    for v_i, v_j in merger_candidates(system)[:max_mergers]:
        candidates.append(("sharing", VertexMerger(v_i, v_j)))
    registers = _plain_registers(system)
    found = 0
    for i, r_1 in enumerate(registers):
        if found >= max_mergers:
            break
        for r_2 in registers[i + 1:]:
            if not registers_interfere(system, r_1, r_2).interferes:
                candidates.append(("register-sharing",
                                   RegisterMerger(r_1, r_2)))
                found += 1
                break
    return candidates


def optimize_portfolio(system: DataControlSystem,
                       objective: Objective | None = None, *,
                       max_moves: int = 64,
                       seeds: tuple[int, ...] = (1, 2, 3),
                       verify: bool = True,
                       engine=None,
                       workers: int | None = None) -> OptimizationResult:
    """Iterated greedy: descent from several starts; best result wins.

    Pure steepest descent has a measurable phase-order trap (the E6b
    benchmark exposes it): the large immediate gain of compacting first
    can foreclose the sharing that would have paid more overall, because
    operations scheduled into one layer may no longer share a unit — and
    the trap is not always escaped by a phase-pure restart either.  The
    portfolio therefore combines

    * greedy from the design as-is, from the maximally shared design, and
      from the maximally compacted design, and
    * greedy *polish* of seeded random walks (iterated greedy), which by
      construction does at least as well as each raw walk;

    keeping the best final objective.  Every path consists solely of
    verified transformations, so the winner is still provably equivalent
    to the input.

    The starts are independent, so they fan out through the batch engine
    when one is supplied: pass ``engine`` (an
    :class:`~repro.runtime.executor.ExecutionEngine`) to reuse a running
    fleet, or ``workers=N`` to spin a private one up for this call.
    Serial and fanned-out portfolios explore the identical start set and
    pick the winner by the same objective, so the result is the same
    design either way.
    """
    from .allocate import share_all
    from .schedule import compact

    objective = objective if objective is not None else Objective()
    if engine is None and workers:
        from ..runtime.executor import ExecutionEngine

        with ExecutionEngine(workers=workers) as private_engine:
            return optimize_portfolio(system, objective, max_moves=max_moves,
                                      seeds=seeds, verify=verify,
                                      engine=private_engine)

    starts: list[tuple[str, DataControlSystem]] = [("as-is", system)]
    shared, _ = share_all(system, verify=verify)
    starts.append(("share-first", shared))
    compacted, _ = compact(system, objective.limits, verify=verify)
    starts.append(("compact-first", compacted))

    initial = objective.evaluate(system)
    if engine is not None:
        return _portfolio_fanout(system, objective, starts, initial,
                                 max_moves=max_moves, seeds=seeds,
                                 verify=verify, engine=engine)

    for seed in seeds:
        walk = optimize_random(system, objective, max_moves=max_moves,
                               seed=seed, verify=verify)
        starts.append((f"random-walk[{seed}]", walk.system))

    best: OptimizationResult | None = None
    for label, start in starts:
        candidate = optimize(start, objective, max_moves=max_moves,
                             verify=verify)
        if best is None or candidate.final_objective < best.final_objective:
            best = candidate
            best.moves = [Move(f"start: {label}", "portfolio", initial,
                               objective.evaluate(start))] + best.moves
    assert best is not None
    best.initial_objective = initial
    return best


def _portfolio_fanout(system: DataControlSystem, objective: Objective,
                      starts: list[tuple[str, DataControlSystem]],
                      initial: float, *, max_moves: int,
                      seeds: tuple[int, ...], verify: bool,
                      engine) -> OptimizationResult:
    """Run the portfolio's independent starts as batch-engine jobs.

    Each deterministic start becomes one ``synthesize`` job (greedy
    descent), each seed one ``random+greedy`` job (walk plus polish —
    exactly what the serial portfolio computes), so the job set explores
    the same design space as the in-process loop.
    """
    from ..errors import ExecutionError
    from ..io.json_io import system_from_dict
    from ..runtime.jobs import synthesize_job

    jobs = [synthesize_job(start, objective, algorithm="greedy",
                           max_moves=max_moves, verify=verify,
                           label=f"portfolio:{label}")
            for label, start in starts]
    jobs.extend(synthesize_job(system, objective, algorithm="random+greedy",
                               seed=seed, max_moves=max_moves, verify=verify,
                               label=f"portfolio:random-walk[{seed}]")
                for seed in seeds)
    batch = engine.run(jobs)
    winners = [result for result in batch if result.ok]
    if not winners:
        first = batch.failures()[0]
        raise ExecutionError(
            f"every portfolio start failed; first error: {first.error}")
    best = min(winners, key=lambda r: r.payload["final_objective"])
    moves = [Move(f"start: {best.spec.label.removeprefix('portfolio:')}",
                  "portfolio", initial, best.payload["initial_objective"])]
    moves.extend(Move(m["description"], m["kind"], m["before"], m["after"])
                 for m in best.payload["moves"])
    return OptimizationResult(
        system_from_dict(best.payload["system"]),
        moves=moves,
        initial_objective=initial,
        final_objective=best.payload["final_objective"],
    )


def optimize_random(system: DataControlSystem,
                    objective: Objective | None = None, *,
                    max_moves: int = 64,
                    seed: int = 0,
                    verify: bool = True) -> OptimizationResult:
    """Unguided baseline: apply random legal moves, keep whatever results.

    The paper argues a guiding strategy (critical-path analysis) is
    necessary because "from each step there are usually several ways to
    go"; this walker is the strawman it argues against — it applies any
    legal transformation without consulting the objective, so it can walk
    into corners (e.g. a merger that blocks the compaction that would
    have paid more).  Used by the E6 benchmark as the comparison point;
    every move is still semantics-preserving, only the *selection* is
    blind.
    """
    import random

    objective = objective if objective is not None else Objective()
    rng = random.Random(seed)
    current = system
    initial = objective.evaluate(current)
    result = OptimizationResult(current, initial_objective=initial)
    for _ in range(max_moves):
        moves = [(kind, t) for kind, t in _candidate_moves(current, objective)
                 if t.is_legal(current)]
        if not moves:
            break
        kind, transform = rng.choice(moves)
        before = objective.evaluate(current)
        current = transform.apply(current, verify=verify)
        after = objective.evaluate(current)
        result.moves.append(Move(transform.describe(), kind, before, after))
    result.system = current
    result.final_objective = objective.evaluate(current)
    return result


def optimize(system: DataControlSystem,
             objective: Objective | None = None, *,
             max_moves: int = 64,
             verify: bool = True) -> OptimizationResult:
    """Greedy steepest-descent over compaction and sharing moves.

    Each round applies the candidate with the largest objective gain;
    rounds continue until no candidate improves the objective or the move
    budget is exhausted.  With ``verify=True`` (default) every applied
    move re-checks its equivalence relation — the optimizer cannot leave
    the equivalence class of the input design.
    """
    objective = objective if objective is not None else Objective()
    current = system
    score = objective.evaluate(current)
    result = OptimizationResult(current, initial_objective=score)

    for _ in range(max_moves):
        best: tuple[float, str, Transformation, DataControlSystem] | None = None
        for kind, transform in _candidate_moves(current, objective):
            if not transform.is_legal(current):
                continue
            candidate = transform.apply(current, verify=verify)
            candidate_score = objective.evaluate(candidate)
            if candidate_score < score - 1e-12:
                if best is None or candidate_score < best[0]:
                    best = (candidate_score, kind, transform, candidate)
        if best is None:
            break
        candidate_score, kind, transform, candidate = best
        result.moves.append(Move(transform.describe(), kind, score,
                                 candidate_score))
        current, score = candidate, candidate_score

    result.system = current
    result.final_objective = score
    return result
