"""Area/cost model for synthesised designs.

The paper's optimization trades performance against implementation cost
("improve performance as well as reduce cost", Abstract).  The cost
figures here are the symbolic units attached to the operation library —
relative module areas in the style of 1980s HLS papers, not silicon
measurements — plus the two structural overheads sharing introduces:

* **multiplexing**: an input port driven by ``k > 1`` distinct sources
  needs ``k − 1`` two-way multiplexers in front of it;
* **wiring**: every arc contributes a small interconnect cost.

These overheads are what keeps the optimizer honest: merging every pair
of adders "saves" functional area but buys muxes and wires, and past a
point the trade stops paying — an effect the resource-sharing benchmark
measures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.system import DataControlSystem
from ..datapath.graph import DataPath
from ..datapath.operations import MUX, OpKind

#: interconnect cost per arc, in the same relative units as module areas
WIRE_COST = 0.05


@dataclass
class CostReport:
    """Cost breakdown of one design."""

    functional_area: float = 0.0
    storage_area: float = 0.0
    pad_area: float = 0.0
    mux_area: float = 0.0
    wiring_area: float = 0.0
    resource_counts: Counter = field(default_factory=Counter)
    mux_inputs: int = 0

    @property
    def total(self) -> float:
        return (self.functional_area + self.storage_area + self.pad_area
                + self.mux_area + self.wiring_area)

    def summary(self) -> str:
        parts = ", ".join(f"{name}×{count}"
                          for name, count in sorted(self.resource_counts.items()))
        return (f"area {self.total:.2f} (functional {self.functional_area:.2f}, "
                f"storage {self.storage_area:.2f}, mux {self.mux_area:.2f}, "
                f"wires {self.wiring_area:.2f}) [{parts}]")


def datapath_cost(dp: DataPath) -> CostReport:
    """Cost of a bare data path (no control overhead modelled)."""
    report = CostReport()
    for vertex in dp.vertices.values():
        for port in vertex.out_ports:
            op = vertex.operation(port)
            if op.kind is OpKind.COM:
                report.functional_area += op.area
            elif op.kind is OpKind.SEQ:
                report.storage_area += op.area
            else:
                report.pad_area += op.area
            report.resource_counts[op.name] += 1
    # multiplexing: distinct sources per input port beyond the first
    drivers: dict = {}
    for arc in dp.arcs.values():
        drivers.setdefault(arc.target, set()).add(arc.source)
    for sources in drivers.values():
        extra = len(sources) - 1
        if extra > 0:
            report.mux_area += extra * MUX.area
            report.mux_inputs += extra
    report.wiring_area = WIRE_COST * len(dp.arcs)
    return report


def system_cost(system: DataControlSystem) -> CostReport:
    """Cost of a complete data/control flow system.

    Control cost (the FSM / token machinery) is proportional to net size
    and identical across data-invariant variants, so it is deliberately
    excluded: the report isolates exactly what the data-path
    transformations change.
    """
    return datapath_cost(system.datapath)


def functional_unit_count(system: DataControlSystem) -> int:
    """Number of combinational operator vertices (shared units count once)."""
    return sum(1 for v in system.datapath.vertices.values()
               if v.is_combinational)


def register_count(system: DataControlSystem) -> int:
    """Number of state-holding vertices excluding environment pads."""
    return sum(1 for v in system.datapath.vertices.values()
               if v.is_sequential and not v.is_external)
