"""Resource allocation and binding via vertex mergers (Definition 4.6).

After scheduling, the data path still holds one operator vertex per
*textual occurrence* of an operation.  Allocation shares hardware by
merging operation-identical vertices whose control states are in
sequential order — Theorem 4.2 guarantees each merger preserves the
external semantics.

The algorithm is greedy bin-packing on the compatibility relation: walk
each signature class (same operation, same ports, Definition 4.6's "same
operational definition and port structure") and merge every vertex into
the first existing bin the merger is legal with.  Since legality of a
merger can only be destroyed by *earlier* mergers making states overlap —
which cannot happen, merging does not change the control net — the greedy
pass is sound; it is not guaranteed minimal (minimum binning is clique
cover), which matches the practice of the era.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.equivalence import merger_legal
from ..core.system import DataControlSystem
from ..datapath.operations import MUX
from ..transform.base import TransformLog
from ..transform.datapath_tf import VertexMerger


@dataclass
class SharingReport:
    """Outcome of a resource-sharing pass."""

    merges: list[tuple[str, str]] = field(default_factory=list)
    vertices_before: int = 0
    vertices_after: int = 0
    log: TransformLog = field(default_factory=TransformLog)

    @property
    def units_saved(self) -> int:
        return len(self.merges)

    def summary(self) -> str:
        return (f"shared {self.units_saved} unit(s): "
                f"{self.vertices_before} -> {self.vertices_after} "
                f"combinational vertices")


def compatibility_classes(system: DataControlSystem,
                          *, min_area: float | None = None) -> list[list[str]]:
    """Group combinational vertices by Definition 4.6 signature.

    Only classes with at least two members are returned (singletons have
    nothing to share).  ``min_area`` filters out units cheaper than the
    threshold; the default (``None``) is *cost-aware*: a unit is only
    worth sharing when its area strictly exceeds the worst-case
    multiplexer overhead one merger can introduce (one 2-way mux per
    input port).  Sharing a 1.0-area adder through two 0.5-area muxes is
    exactly break-even; sharing an inverter is a loss; sharing a
    multiplier is a clear win.  Pass ``min_area=0.0`` for maximal
    (area-oblivious) sharing.
    """
    groups: dict[tuple, list[str]] = {}
    for vertex in system.datapath.vertices.values():
        if not vertex.is_combinational:
            continue
        if not vertex.in_ports:
            continue  # constants: already canonicalised by the compiler
        area = sum(op.area for op in vertex.ops.values())
        if min_area is None:
            if area <= MUX.area * len(vertex.in_ports):
                continue
        elif area < min_area:
            continue
        groups.setdefault(vertex.signature(), []).append(vertex.name)
    return [sorted(members) for _, members in sorted(
        groups.items(), key=lambda item: item[1][0]) if len(members) > 1]


def merger_candidates(system: DataControlSystem,
                      *, min_area: float | None = None) -> list[tuple[str, str]]:
    """All currently legal merger pairs, most-area-saving first."""
    pairs: list[tuple[float, str, str]] = []
    for group in compatibility_classes(system, min_area=min_area):
        for i, v_i in enumerate(group):
            area = sum(op.area
                       for op in system.datapath.vertex(v_i).ops.values())
            for v_j in group[i + 1:]:
                if merger_legal(system, v_i, v_j):
                    pairs.append((area, v_i, v_j))
    pairs.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
    return [(v_i, v_j) for _, v_i, v_j in pairs]


def share_all(system: DataControlSystem, *,
              min_area: float | None = None,
              verify: bool = True) -> tuple[DataControlSystem, SharingReport]:
    """Greedy maximal sharing: merge every legal pair per signature class.

    Returns a new system; the input is untouched.  ``min_area=None``
    (default) shares only units whose area beats the worst-case mux
    overhead (see :func:`compatibility_classes`); ``min_area=0.0`` shares
    everything legal regardless of cost.
    """
    from .cost import functional_unit_count  # local: avoid import cycle

    report = SharingReport(vertices_before=functional_unit_count(system))
    current = system
    for group in compatibility_classes(system, min_area=min_area):
        bins: list[str] = []
        for name in group:
            merged = False
            for representative in bins:
                transform = VertexMerger(name, representative)
                if transform.is_legal(current):
                    current = transform.apply(current, verify=verify)
                    report.merges.append((name, representative))
                    report.log.record(transform)
                    merged = True
                    break
            if not merged:
                bins.append(name)
    report.vertices_after = functional_unit_count(current)
    return current, report
