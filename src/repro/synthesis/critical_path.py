"""Critical-path analysis (Section 5).

"As from each step there are usually several ways to go, it is necessary
to have some strategy to guide the transformation process.  A critical
path analysis technique is used for this purpose."

Two delay notions:

* **intra-state delay** (:func:`place_delay`) — the longest combinational
  path through the vertices a control state activates, plus the latch
  delay of its sequential targets.  The maximum over all states bounds
  the achievable clock period.
* **control critical path** (:func:`critical_path`) — the longest
  node-weighted path through the place-level precedence graph, with loop
  back edges removed (a DFS from the initial places classifies them).
  This estimates end-to-end latency for one pass through the algorithm;
  loops contribute one iteration (the per-iteration cost is what the
  transformations can actually shorten).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import DataControlSystem
from ..datapath.ports import PortId
from ..datapath.validate import topological_com_order


def place_delay(system: DataControlSystem, place: str) -> float:
    """Longest combinational path delay within ``ASS(place)``.

    Computed by a topological sweep over the combinational vertices the
    state activates: arrival time of a vertex = max over active input
    arcs of the source's arrival, plus its own operation delay.
    Sequential sources arrive at their latch delay (clock-to-Q);
    sequential targets add their own latch delay at the end.
    """
    dp = system.datapath
    arcs = [dp.arc(a) for a in system.control_arcs(place)]
    if not arcs:
        return 0.0
    arrival: dict[PortId, float] = {}

    def source_arrival(port: PortId) -> float:
        if port in arrival:
            return arrival[port]
        vertex = dp.vertex(port.vertex)
        op = vertex.ops.get(port.port)
        # sequential / constant / input sources launch at their own delay
        return op.delay if op is not None and not op.is_combinational else 0.0

    order = topological_com_order(dp, [a.name for a in arcs])
    incoming: dict[str, list[PortId]] = {}
    for arc in arcs:
        incoming.setdefault(arc.target.vertex, []).append(arc.source)
    for name in order:
        vertex = dp.vertex(name)
        inputs = incoming.get(name, [])
        start = max((source_arrival(p) for p in inputs), default=0.0)
        for out_port in vertex.out_ports:
            op = vertex.operation(out_port)
            arrival[PortId(name, out_port)] = start + op.delay
    # longest path seen at any activated port, plus target latch delays
    worst = max(arrival.values(), default=0.0)
    for arc in arcs:
        target_vertex = dp.vertex(arc.target.vertex)
        if target_vertex.is_sequential:
            latch = max((op.delay for op in target_vertex.ops.values()),
                        default=0.0)
            worst = max(worst, source_arrival(arc.source) + latch,
                        arrival.get(arc.source, 0.0) + latch)
    return worst


def clock_period(system: DataControlSystem) -> float:
    """Minimum clock period: the slowest control state's delay."""
    return max((place_delay(system, p) for p in system.net.places),
               default=0.0)


def _place_edges(system: DataControlSystem) -> dict[str, set[str]]:
    """Place-level successor relation: ``p → q`` via one transition."""
    net = system.net
    edges: dict[str, set[str]] = {p: set() for p in net.places}
    for t in net.transitions:
        for p in net.preset(t):
            edges[p].update(net.postset(t))
    return edges


def _forward_dag(system: DataControlSystem) -> dict[str, set[str]]:
    """Place edges with DFS back edges removed (loop-free skeleton)."""
    edges = _place_edges(system)
    roots = sorted(p for p in system.net.places
                   if system.net.initial.get(p, 0) > 0)
    colour: dict[str, int] = {}
    dag: dict[str, set[str]] = {p: set() for p in edges}
    WHITE, GREY, BLACK = 0, 1, 2

    def visit(root: str) -> None:
        stack: list[tuple[str, list[str]]] = [(root, sorted(edges[root]))]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            if children:
                child = children.pop()
                state = colour.get(child, WHITE)
                if state == GREY:
                    continue  # back edge — drop it
                dag[node].add(child)
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, sorted(edges[child])))
            else:
                colour[node] = BLACK
                stack.pop()

    for root in roots:
        if colour.get(root, WHITE) == WHITE:
            visit(root)
    return dag


@dataclass
class CriticalPath:
    """A longest path through the loop-free control skeleton."""

    places: list[str] = field(default_factory=list)
    delay: float = 0.0
    steps: int = 0

    def summary(self) -> str:
        route = " -> ".join(self.places)
        return f"critical path ({self.steps} steps, delay {self.delay:.2f}): {route}"


def critical_path(system: DataControlSystem) -> CriticalPath:
    """Longest node-weighted path from an initial place (back edges cut).

    Node weight = ``max(place_delay, ε)`` with a small ε so that pure
    control states still count one step; the returned ``steps`` counts
    places on the path — the schedule-length view of the same path.
    """
    dag = _forward_dag(system)
    weights = {p: max(place_delay(system, p), 1e-9)
               for p in system.net.places}
    # topological order via DFS finish times on the DAG
    order: list[str] = []
    seen: set[str] = set()

    def topo(node: str) -> None:
        stack = [(node, iter(sorted(dag[node])))]
        seen.add(node)
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(sorted(dag[child]))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    roots = sorted(p for p in system.net.places
                   if system.net.initial.get(p, 0) > 0)
    for root in roots:
        if root not in seen:
            topo(root)
    reachable = set(order)
    best: dict[str, float] = {}
    successor_choice: dict[str, str | None] = {}
    for node in order:  # reverse-topological: children first
        child_best = 0.0
        choice: str | None = None
        for child in sorted(dag[node]):
            if child in reachable and best.get(child, 0.0) > child_best:
                child_best = best[child]
                choice = child
        best[node] = weights[node] + child_best
        successor_choice[node] = choice

    if not best:
        return CriticalPath()
    start = max((p for p in roots if p in best), key=lambda p: best[p],
                default=None)
    if start is None:
        start = max(best, key=lambda p: best[p])
    path = [start]
    while successor_choice.get(path[-1]):
        path.append(successor_choice[path[-1]])  # type: ignore[arg-type]
    return CriticalPath(path, best[start], len(path))


def schedule_length(system: DataControlSystem) -> int:
    """Static schedule length: places on the critical path."""
    return critical_path(system).steps
