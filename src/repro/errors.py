"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing construction-time problems (:class:`DefinitionError`),
verification failures (:class:`ValidationError`), runtime problems during
simulation (:class:`ExecutionError`), illegal transformations
(:class:`TransformError`) and frontend parse errors (:class:`ParseError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DefinitionError(ReproError):
    """A model element is malformed or violates a structural definition.

    Raised while *constructing* data paths, Petri nets, or data/control
    systems — e.g. connecting an arc to a non-existent port, mapping a
    control state to an unknown arc, or redefining a named element.
    """


class ValidationError(ReproError):
    """A completed model fails a well-formedness or verification check.

    Raised by validators such as the properly-designed checker
    (Definition 3.2 of the paper) when asked to *enforce* rather than
    merely report.
    """


class ExecutionError(ReproError):
    """The simulator encountered a runtime fault.

    Examples: two simultaneously active arcs drive the same input port,
    a combinational loop is detected among active vertices, or the
    environment ran out of input values for an input vertex.
    """


class RuntimeFaultError(ExecutionError):
    """A structural fault materialised *during* simulation.

    Raised when a condition the static checks guarantee for properly
    designed systems is violated at runtime — e.g. an injected arc
    glitch closes a combinational loop among the active vertices, or a
    runtime monitor configured to halt observes a violation.  Carries
    the simulation ``step`` at which the fault was observed and a short
    machine-readable ``kind`` so campaign tooling can classify the
    failure without parsing the message.
    """

    def __init__(self, message: str, *, step: int | None = None,
                 kind: str = "") -> None:
        super().__init__(message)
        self.step = step
        self.kind = kind


class EnvironmentExhausted(ExecutionError):
    """An input vertex requested a value but its sequence is exhausted."""

    def __init__(self, vertex: str, consumed: int) -> None:
        super().__init__(
            f"environment sequence for input vertex {vertex!r} exhausted "
            f"after {consumed} value(s)"
        )
        self.vertex = vertex
        self.consumed = consumed


class PersistenceError(ReproError):
    """Durable on-disk state is unusable or inconsistent.

    Raised by the crash-safety layer (:mod:`repro.runtime.durable`) when
    a checkpoint snapshot or write-ahead journal cannot be trusted: an
    unknown format version, an integrity-hash mismatch that has no older
    good snapshot to fall back to, a journal corrupted *before* its tail
    (tearing only ever damages the end of an append-only file), or a
    resume attempted against a journal written for a different run
    configuration.
    """


class TransformError(ReproError):
    """A transformation was applied to a system where it is not legal."""


class ParseError(ReproError):
    """The behavioural frontend could not parse the given source text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column
