"""Structured diagnostics — the unified result type of all static checks.

Every static analysis in the library (the Definition 3.2 properly-designed
checker, the data-path well-formedness validator, and the structural lint
rules of :mod:`repro.analysis.lint`) reports its findings as
:class:`Diagnostic` objects: a stable rule id (``PD001``, ``DP003``,
``CN002``, …), a severity, location anchors naming the offending net
elements or data-path objects, a human-readable message and a fix hint.

This module sits at the package root (next to :mod:`repro.errors` and
:mod:`repro.values`) so the low-level layers can build diagnostics without
importing the analysis engine: ``datapath`` and ``core`` produce them,
``analysis.lint`` aggregates them, and the CLI/CI layer renders them as
text, JSON or SARIF.

Fingerprints
------------
Each diagnostic has a deterministic :attr:`~Diagnostic.fingerprint` over
``(system, rule, locations)`` — deliberately *excluding* the message, so
rewording a message does not invalidate recorded baselines.  Fingerprints
drive two features: baseline files (suppress known findings; see
``repro lint --baseline``) and the transformation pipeline's
lint-preservation assertion (a rewrite must not introduce findings whose
fingerprints were absent before it ran).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Recognised severities, weakest first.  Order matters: ``--fail-on``
#: thresholds and report sorting both use this ranking.
SEVERITIES = ("info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (info=0 < warning=1 < error=2)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; choose one of {SEVERITIES}"
        ) from None


def severity_at_least(severity: str, threshold: str) -> bool:
    """True iff ``severity`` is at least as severe as ``threshold``."""
    return severity_rank(severity) >= severity_rank(threshold)


#: Location kinds a diagnostic may anchor to.
LOCATION_KINDS = ("place", "transition", "vertex", "arc", "port", "marking")


@dataclass(frozen=True, order=True)
class Location:
    """One anchor of a diagnostic: a named model element.

    ``kind`` says which namespace the name lives in (a control place, a
    net transition, a data-path vertex/arc/port, or a marking rendered as
    a string witness).
    """

    kind: str
    name: str

    def __post_init__(self) -> None:
        if self.kind not in LOCATION_KINDS:
            raise ValueError(
                f"unknown location kind {self.kind!r}; "
                f"choose one of {LOCATION_KINDS}"
            )

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Attributes
    ----------
    rule:
        Stable rule id (``PD001``, ``CN002``, ``DP003``, …).
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable statement of the problem.
    locations:
        The offending elements, most specific first.
    hint:
        A short fix suggestion (may be empty).
    system:
        Name of the analysed system (filled by the lint engine).
    """

    rule: str
    severity: str
    message: str
    locations: tuple[Location, ...] = ()
    hint: str = ""
    system: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validates eagerly

    @property
    def fingerprint(self) -> str:
        """Stable identity over (system, rule, locations) — not message."""
        material = "\x1f".join(
            [self.system, self.rule]
            + [f"{loc.kind}\x1e{loc.name}" for loc in self.locations]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        """Most severe first, then rule id, then locations."""
        return (-severity_rank(self.severity), self.rule, self.locations,
                self.message)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "locations": [{"kind": loc.kind, "name": loc.name}
                          for loc in self.locations],
            "hint": self.hint,
            "system": self.system,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            locations=tuple(Location(loc["kind"], loc["name"])
                            for loc in data.get("locations", ())),
            hint=data.get("hint", ""),
            system=data.get("system", ""),
        )

    def __str__(self) -> str:
        anchors = ", ".join(str(loc) for loc in self.locations)
        suffix = f" [{anchors}]" if anchors else ""
        return f"{self.rule} {self.severity}: {self.message}{suffix}"


def worst_severity(diagnostics: Iterable[Diagnostic]) -> str | None:
    """The most severe severity present, or ``None`` when empty."""
    worst: str | None = None
    for diagnostic in diagnostics:
        if worst is None or severity_rank(diagnostic.severity) > severity_rank(worst):
            worst = diagnostic.severity
    return worst


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` (always all three keys)."""
    counts = {name: 0 for name in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts
