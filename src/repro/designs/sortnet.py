"""4-element sorting network — a min/max dataflow benchmark.

A Batcher odd-even network over four inputs: five compare-exchange
operations in three stages, expressed branch-free with the arithmetic
selection identity

    hi = (a > b)·a + (1 − (a > b))·b        (max)
    lo = a + b − hi                          (min)

(the language's ``min``/``max`` have no surface syntax, and a branchy
formulation would serialise on the condition registers).  Every stage
writes fresh variables, so the network is a pure dataflow DAG: the first
stage's two exchanges are independent, as are the second's — rich
material for the scheduler, and ten same-signature multiplier/adder/
comparator units for the allocator.
"""

from __future__ import annotations

from .base import Design


def _compare_exchange(a: str, b: str, lo: str, hi: str) -> str:
    return (f"  g = {a} > {b};\n"
            f"  {hi} = g * {a} + (1 - g) * {b};\n"
            f"  {lo} = {a} + {b} - {hi};\n")


SOURCE = ("""
design sort4 {
  input x_in;
  output y0, y1, y2, y3;
  var a, b, c, d, g;
  var s0, s1, s2, s3;
  var u0, u3, t1, t2, m1, m2;
  a = read(x_in);
  b = read(x_in);
  c = read(x_in);
  d = read(x_in);
"""
          # stage 1: sort the two input pairs
          + _compare_exchange("a", "b", lo="s0", hi="s1")
          + _compare_exchange("c", "d", lo="s2", hi="s3")
          # stage 2: overall min and max
          + _compare_exchange("s0", "s2", lo="u0", hi="t1")
          + _compare_exchange("s1", "s3", lo="t2", hi="u3")
          # stage 3: order the middle pair
          + _compare_exchange("t1", "t2", lo="m1", hi="m2")
          + """  write(y0, u0);
  write(y1, m1);
  write(y2, m2);
  write(y3, u3);
}
""")


def _reference(inputs) -> dict[str, list[int]]:
    values = sorted(inputs["x_in"][:4])
    return {f"y{i}": [values[i]] for i in range(4)}


DESIGN = Design(
    name="sort4",
    description="4-input odd-even sorting network (branch-free "
                "compare-exchange stages)",
    source=SOURCE,
    default_inputs={"x_in": [7, 2, 9, 4]},
    reference=_reference,
)
