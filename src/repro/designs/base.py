"""Common machinery for the benchmark design zoo.

Each design bundles: behavioural source text (exercising the textual
frontend), a default environment, and a pure-Python *reference model*
computing the expected output streams — the oracle the test suite checks
compiled-and-transformed hardware against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.system import DataControlSystem
from ..semantics.environment import Environment
from ..semantics.trace import Trace
from ..synthesis.frontend import compile_source, parse
from ..synthesis.frontend.ast import Program

#: A reference model: input streams -> expected output streams per pad.
Reference = Callable[[Mapping[str, list[int]]], dict[str, list[int]]]


@dataclass(frozen=True)
class Design:
    """One zoo entry."""

    name: str
    description: str
    source: str
    default_inputs: dict[str, list[int]] = field(default_factory=dict)
    reference: Reference | None = None

    def program(self) -> Program:
        """Parse the behavioural source."""
        return parse(self.source)

    def build(self) -> DataControlSystem:
        """Compile the naive serial system Γ."""
        return compile_source(self.source)

    def environment(self, overrides: Mapping[str, list[int]] | None = None
                    ) -> Environment:
        """Default environment, optionally overriding input streams."""
        streams = {k: list(v) for k, v in self.default_inputs.items()}
        if overrides:
            streams.update({k: list(v) for k, v in overrides.items()})
        return Environment(streams)

    def expected(self, overrides: Mapping[str, list[int]] | None = None
                 ) -> dict[str, list[int]]:
        """Reference-model output streams for the (overridden) inputs."""
        if self.reference is None:
            raise NotImplementedError(f"design {self.name!r} has no reference")
        streams = {k: list(v) for k, v in self.default_inputs.items()}
        if overrides:
            streams.update({k: list(v) for k, v in overrides.items()})
        return self.reference(streams)


def pad_outputs(system: DataControlSystem, trace: Trace) -> dict[str, list[int]]:
    """Group a trace's external events by *output pad* vertex name.

    The canonical way examples and tests read results: events on arcs
    whose target is an output vertex, in occurrence order.
    """
    grouped: dict[str, list[tuple[tuple[int, int, str, int], int]]] = {
        v.name: [] for v in system.datapath.output_vertices()
    }
    for event in trace.events:
        arc = system.datapath.arc(event.arc)
        target = system.datapath.vertex(arc.target.vertex)
        if target.is_output_vertex:
            # several distinct arcs may feed one pad: order by observation
            # time first, then arc/occurrence for deterministic ties
            key = (event.end, event.start, event.arc, event.index)
            grouped[target.name].append((key, event.value))
    return {pad: [v for _, v in sorted(pairs)] for pad, pairs in grouped.items()}


def pad_inputs(system: DataControlSystem, trace: Trace) -> dict[str, list[int]]:
    """Group a trace's external events by *input pad* vertex name."""
    grouped: dict[str, list[tuple[tuple[int, int, str, int], int]]] = {
        v.name: [] for v in system.datapath.input_vertices()
    }
    for event in trace.events:
        arc = system.datapath.arc(event.arc)
        source = system.datapath.vertex(arc.source.vertex)
        if source.is_input_vertex:
            key = (event.end, event.start, event.arc, event.index)
            grouped[source.name].append((key, event.value))
    return {pad: [v for _, v in sorted(pairs)] for pad, pairs in grouped.items()}
