"""FIR filters — straight-line scheduling and sharing showcases.

A 4-tap and an 8-tap direct-form FIR over a block of samples.  The
product terms are mutually independent, the adder tree has log depth —
exactly the shape where compaction shows its speedup and where resource
limits (``{"mul": 1}``) stretch the schedule back out.
"""

from __future__ import annotations

from .base import Design

SOURCE_FIR4 = """
design fir4 {
  input x_in;
  output y_out;
  var x0, x1, x2, x3, p0, p1, p2, p3, s0, s1, y;
  x0 = read(x_in);
  x1 = read(x_in);
  x2 = read(x_in);
  x3 = read(x_in);
  p0 = x0 * 2;
  p1 = x1 * 3;
  p2 = x2 * 5;
  p3 = x3 * 7;
  s0 = p0 + p1;
  s1 = p2 + p3;
  y  = s0 + s1;
  write(y_out, y);
}
"""

_COEFFS4 = (2, 3, 5, 7)


def _reference4(inputs) -> dict[str, list[int]]:
    xs = inputs["x_in"][:4]
    return {"y_out": [sum(c * x for c, x in zip(_COEFFS4, xs))]}


FIR4 = Design(
    name="fir4",
    description="4-tap FIR filter: independent multiplies + adder tree",
    source=SOURCE_FIR4,
    default_inputs={"x_in": [1, 2, 3, 4]},
    reference=_reference4,
)

SOURCE_FIR8 = """
design fir8 {
  input x_in;
  output y_out;
  var x0, x1, x2, x3, x4, x5, x6, x7;
  var p0, p1, p2, p3, p4, p5, p6, p7;
  var s0, s1, s2, s3, t0, t1, y;
  x0 = read(x_in);
  x1 = read(x_in);
  x2 = read(x_in);
  x3 = read(x_in);
  x4 = read(x_in);
  x5 = read(x_in);
  x6 = read(x_in);
  x7 = read(x_in);
  p0 = x0 * 2;
  p1 = x1 * 3;
  p2 = x2 * 5;
  p3 = x3 * 7;
  p4 = x4 * 11;
  p5 = x5 * 13;
  p6 = x6 * 17;
  p7 = x7 * 19;
  s0 = p0 + p1;
  s1 = p2 + p3;
  s2 = p4 + p5;
  s3 = p6 + p7;
  t0 = s0 + s1;
  t1 = s2 + s3;
  y  = t0 + t1;
  write(y_out, y);
}
"""

_COEFFS8 = (2, 3, 5, 7, 11, 13, 17, 19)


def _reference8(inputs) -> dict[str, list[int]]:
    xs = inputs["x_in"][:8]
    return {"y_out": [sum(c * x for c, x in zip(_COEFFS8, xs))]}


FIR8 = Design(
    name="fir8",
    description="8-tap FIR filter: wide multiply layer + adder tree",
    source=SOURCE_FIR8,
    default_inputs={"x_in": [1, 2, 3, 4, 5, 6, 7, 8]},
    reference=_reference8,
)
