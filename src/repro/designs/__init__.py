"""Benchmark design zoo.

Every entry is a :class:`~repro.designs.base.Design`: behavioural source,
default environment, and a pure-Python reference model.  ``ZOO`` maps
design names to entries; ``all_designs()`` returns them in a stable
order.
"""

from .base import Design, pad_inputs, pad_outputs
from .counter import DESIGN as COUNTER
from .diffeq import DESIGN as DIFFEQ
from .ewf import DESIGN as EWF
from .fir import FIR4, FIR8
from .gcd import DESIGN as GCD
from .isqrt import DESIGN as ISQRT
from .parsum import DESIGN as PARSUM
from .shiftmul import DESIGN as SHIFTMUL
from .sortnet import DESIGN as SORT4
from .traffic import DESIGN as TRAFFIC

ZOO: dict[str, Design] = {
    design.name: design
    for design in (GCD, DIFFEQ, FIR4, FIR8, EWF, TRAFFIC, PARSUM, COUNTER,
                   ISQRT, SORT4, SHIFTMUL)
}


def all_designs() -> list[Design]:
    """All zoo entries in registration order."""
    return list(ZOO.values())


def get_design(name: str) -> Design:
    """Look up a zoo entry by name."""
    try:
        return ZOO[name]
    except KeyError:
        known = ", ".join(sorted(ZOO))
        raise KeyError(f"unknown design {name!r}; known designs: {known}") from None


__all__ = [
    "Design",
    "pad_outputs",
    "pad_inputs",
    "ZOO",
    "all_designs",
    "get_design",
    "GCD",
    "DIFFEQ",
    "FIR4",
    "FIR8",
    "EWF",
    "TRAFFIC",
    "PARSUM",
    "COUNTER",
    "ISQRT",
    "SORT4",
    "SHIFTMUL",
]
