"""Shift-add multiplier — multiplication without a multiplier unit.

The classic area-minimal multiplier: iterate over the multiplier's bits,
conditionally accumulating the shifted multiplicand.  Exercises the
bitwise operation set (``&``, ``<<``, ``>>``) inside data-dependent
control flow, and makes a nice contrast object for the cost model: a
single-cycle ``mul`` unit costs 8.0 area units, this loop replaces it
with an adder and two shifters at a many-cycle latency.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design shiftmul {
  input a_in, b_in;
  output product;
  var a, b, acc = 0;
  a = read(a_in);
  b = read(b_in);
  while (b > 0) {
    if (b & 1) {
      acc = acc + a;
    }
    a = a << 1;
    b = b >> 1;
  }
  write(product, acc);
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    a = inputs["a_in"][0]
    b = inputs["b_in"][0]
    return {"product": [a * b]}


DESIGN = Design(
    name="shiftmul",
    description="Shift-add multiplier: bitwise loop instead of a mul unit",
    source=SOURCE,
    default_inputs={"a_in": [13], "b_in": [11]},
    reference=_reference,
)
