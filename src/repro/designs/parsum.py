"""Parallel reduction — two accumulation chains in ``par``.

Reads four values, sums two disjoint pairs in parallel branches, then
combines.  The smallest design that exercises fork/join control together
with rule 3.2(1): the branches write disjoint registers, so their
``ASS`` sets are disjoint and the design is properly parallel.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design parsum {
  input x_in;
  output total;
  var a, b, c, d, left, right, sum;
  a = read(x_in);
  b = read(x_in);
  c = read(x_in);
  d = read(x_in);
  par {
    {
      left = a + b;
      left = left * 2;
    }
    {
      right = c + d;
      right = right * 3;
    }
  }
  sum = left + right;
  write(total, sum);
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    a, b, c, d = inputs["x_in"][:4]
    return {"total": [(a + b) * 2 + (c + d) * 3]}


DESIGN = Design(
    name="parsum",
    description="Fork/join parallel reduction over disjoint registers",
    source=SOURCE,
    default_inputs={"x_in": [1, 2, 3, 4]},
    reference=_reference,
)
