"""HAL differential-equation solver — the canonical HLS benchmark.

Solves ``y'' + 3xy' + 3y = 0`` by forward Euler (the example introduced
with the HAL system and reused across the high-level-synthesis
literature, including the CAMAD papers this paper summarises).  Inside
the loop body the three update expressions are mutually independent given
the previous iteration's values, so the design rewards both
parallelization (multiple multiplies per step) and, under resource
constraints, multiplier sharing.

All arithmetic is integer; ``dx`` is a unit step so the reference model
is exact (the point is the data path's shape, not numerics).
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design diffeq {
  input a_in, dx_in, x_in, y_in, u_in;
  output y_out;
  var a, dx, x, y, u, x1, y1, u1;
  a  = read(a_in);
  dx = read(dx_in);
  x  = read(x_in);
  y  = read(y_in);
  u  = read(u_in);
  while (x < a) {
    x1 = x + dx;
    u1 = u - (3 * x * u * dx) - (3 * y * dx);
    y1 = y + u * dx;
    x = x1;
    u = u1;
    y = y1;
  }
  write(y_out, y);
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    a = inputs["a_in"][0]
    dx = inputs["dx_in"][0]
    x = inputs["x_in"][0]
    y = inputs["y_in"][0]
    u = inputs["u_in"][0]
    while x < a:
        x1 = x + dx
        u1 = u - (3 * x * u * dx) - (3 * y * dx)
        y1 = y + u * dx
        x, u, y = x1, u1, y1
    return {"y_out": [y]}


DESIGN = Design(
    name="diffeq",
    description="HAL differential equation solver (forward Euler loop)",
    source=SOURCE,
    default_inputs={"a_in": [4], "dx_in": [1], "x_in": [0], "y_in": [1],
                    "u_in": [1]},
    reference=_reference,
)
