"""Elliptic-wave-filter-style biquad cascade.

The classic "EWF" HLS benchmark is a fifth-order elliptic wave filter
(34 additions, 8 multiplications).  The authors' exact dataflow is tied
to a specific published figure; this zoo entry is an honest stand-in with
the same *character*: a cascade of two direct-form-II biquad sections —
feedback chains that serialise, feed-forward taps that parallelise, and
enough multiplies that sharing matters.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design ewf {
  input x_in;
  output y_out;
  var x, w1, w1d1, w1d2, y1;
  var w2, w2d1, w2d2, y2;
  var n = 0, len;
  len = read(x_in);
  while (n < len) {
    x = read(x_in);
    w1 = x - (3 * w1d1) - (2 * w1d2);
    y1 = w1 + (2 * w1d1) + w1d2;
    w1d2 = w1d1;
    w1d1 = w1;
    w2 = y1 - (2 * w2d1) - (1 * w2d2);
    y2 = w2 + (2 * w2d1) + w2d2;
    w2d2 = w2d1;
    w2d1 = w2;
    write(y_out, y2);
    n = n + 1;
  }
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    stream = list(inputs["x_in"])
    length = stream[0]
    samples = stream[1:1 + length]
    w1d1 = w1d2 = w2d1 = w2d2 = 0
    out: list[int] = []
    for x in samples:
        w1 = x - 3 * w1d1 - 2 * w1d2
        y1 = w1 + 2 * w1d1 + w1d2
        w1d2, w1d1 = w1d1, w1
        w2 = y1 - 2 * w2d1 - 1 * w2d2
        y2 = w2 + 2 * w2d1 + w2d2
        w2d2, w2d1 = w2d1, w2
        out.append(y2)
    return {"y_out": out}


DESIGN = Design(
    name="ewf",
    description="Elliptic-wave-filter-style cascade of two biquad sections",
    source=SOURCE,
    default_inputs={"x_in": [4, 1, 0, 2, 1]},
    reference=_reference,
)
