"""Counter — the smallest looping design; the quickstart workload.

Counts from 0 to a limit read from the environment, emitting every value.
One output event per iteration makes it the natural throughput workload
for the simulator benchmark.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design counter {
  input limit_in;
  output count;
  var n = 0, limit;
  limit = read(limit_in);
  while (n < limit) {
    write(count, n);
    n = n + 1;
  }
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    limit = inputs["limit_in"][0]
    return {"count": list(range(limit))}


DESIGN = Design(
    name="counter",
    description="0..limit counter emitting one event per iteration",
    source=SOURCE,
    default_inputs={"limit_in": [5]},
    reference=_reference,
)
