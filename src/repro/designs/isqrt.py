"""Integer square root by bisection — division-free loop benchmark.

A data-dependent loop whose body mixes comparisons, shifts and
arithmetic; the condition register / guard machinery gets a workout, and
the midpoint computation gives the scheduler a little parallelism to
find inside the loop body.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design isqrt {
  input n_in;
  output root;
  var n, lo = 0, hi, mid, sq;
  n = read(n_in);
  hi = n + 1;
  while ((hi - lo) > 1) {
    mid = (lo + hi) >> 1;
    sq = mid * mid;
    if (sq > n) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  write(root, lo);
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    n = inputs["n_in"][0]
    lo, hi = 0, n + 1
    while hi - lo > 1:
        mid = (lo + hi) >> 1
        if mid * mid > n:
            hi = mid
        else:
            lo = mid
    return {"root": [lo]}


DESIGN = Design(
    name="isqrt",
    description="Integer square root by bisection (shift + compare loop)",
    source=SOURCE,
    default_inputs={"n_in": [133]},
    reference=_reference,
)
