"""GCD — the classic looping/branching synthesis benchmark.

Exercises: while loop, if/else, guarded transitions, data-dependent
iteration count.  Little parallelism is available (every statement touches
``a`` or ``b``), making it the control-flow stress test of the zoo rather
than a scheduling showcase.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design gcd {
  input a_in, b_in;
  output result;
  var a, b;
  a = read(a_in);
  b = read(b_in);
  while (a != b) {
    if (a > b) {
      a = a - b;
    } else {
      b = b - a;
    }
  }
  write(result, a);
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    a = inputs["a_in"][0]
    b = inputs["b_in"][0]
    while a != b:
        if a > b:
            a -= b
        else:
            b -= a
    return {"result": [a]}


DESIGN = Design(
    name="gcd",
    description="Euclid's subtractive GCD: loop + branch control flow",
    source=SOURCE,
    default_inputs={"a_in": [48], "b_in": [36]},
    reference=_reference,
)
