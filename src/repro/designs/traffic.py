"""Traffic-light controller — designer-specified parallelism (``par``).

Two light controllers (north–south and east–west) run as parallel
branches inside each cycle: each computes and publishes its own phase to
its own output pad.  The two writes per cycle are **casually related**
events — neither ordered nor concurrent in the external event structure —
which is exactly the distributed-modules situation the paper uses to
motivate partial-order semantics ("Trying to force a total ordering on
events of different modules will simply introduce unnecessary
constraints").

Phases are complementary by construction (when NS shows green=2, EW
shows red=0), giving the safety property the test suite checks.
"""

from __future__ import annotations

from .base import Design

SOURCE = """
design traffic {
  input cycles_in;
  output ns_light, ew_light;
  var n = 0, cycles, phase = 0, ns, ew;
  cycles = read(cycles_in);
  while (n < cycles) {
    par {
      {
        ns = phase;
        write(ns_light, ns);
      }
      {
        ew = 2 - phase;
        write(ew_light, ew);
      }
    }
    phase = 2 - phase;
    n = n + 1;
  }
}
"""


def _reference(inputs) -> dict[str, list[int]]:
    cycles = inputs["cycles_in"][0]
    ns_values: list[int] = []
    ew_values: list[int] = []
    phase = 0
    for _ in range(cycles):
        ns_values.append(phase)
        ew_values.append(2 - phase)
        phase = 2 - phase
    return {"ns_light": ns_values, "ew_light": ew_values}


DESIGN = Design(
    name="traffic",
    description="Two parallel light controllers; casually related outputs",
    source=SOURCE,
    default_inputs={"cycles_in": [4]},
    reference=_reference,
)
