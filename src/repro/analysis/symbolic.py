"""Symbolic reachability and equivalence — static analysis without the
interpreter.

The explicit explorer (:func:`repro.petri.reachability.explore`) walks the
marking graph one :class:`~repro.petri.marking.Marking` object at a time:
every successor costs Python dict churn, and the 100k-marking budget is
reached exactly where the paper's ``∥`` relation says concurrency should be
*cheap*.  This module is the scaling answer — three cooperating techniques,
none of which ever executes the two-phase interpreter:

**1. Symbolic frontier reachability** (:func:`frontier_explore`).
Markings are packed rows of a dense ``(N, P)`` numpy array over the frozen
place order of :class:`~repro.semantics.vector.CompiledSystem` (net
insertion order), firing is one vectorised incidence-matrix comparison per
transition — ``enabled = all(front >= pre[t])`` — so a single array op
advances *thousands* of frontier markings at once.  Deduplication hashes
the packed row bytes; per-marking predecessor/transition arrays make every
visited marking's firing sequence reconstructible as a counterexample.

**2. Partial-order reduction** (:func:`por_explore`).  Valmari-style
stubborn sets: at each marking a closed set of transitions is computed —
an enabled member pulls in the transitions it shares preset places with
(those that could disable it), a disabled member pulls in the producers of
one unmarked preset place (those that could enable it) — and only the
enabled members are fired.  Two transitions with disjoint place
neighbourhoods commute perfectly, which is precisely what Definition 3.2's
disjoint-subgraph guarantee provides for ``∥``-parallel branches
(:mod:`repro.core.dependence` exposes the same independence at the state
level); exploring one representative order therefore preserves every
deadlock, and per-place peak token counts are covered by the visited
markings' endpoints (the diamond argument: an interleaving's intermediate
marking agrees with the pre- or post-marking place by place).

**3. Complete finite prefix unfolding** (:func:`complete_prefix`).  A
McMillan-style branching-process prefix for 1-safe nets: conditions are
place occurrences, events are transition occurrences with their causal
history, and an event is *cut off* when its local configuration reaches a
marking already reached by a smaller configuration.  Acyclic queries —
which places can ever coexist, which transitions are in structural
conflict — read directly off the prefix's concurrency relation without
enumerating interleavings at all.

:class:`SymbolicAnalyzer` is the facade the rebuilt checkers
(``is_safe``/``coexistent_place_pairs``/``semantically_equivalent`` with
``backend="symbolic"``) sit on; :func:`equivalence_diagnostics` renders an
inequivalence verdict (with its firing-sequence witness) as structured
:class:`~repro.diagnostics.Diagnostic` objects for the SARIF pipeline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..diagnostics import Diagnostic, Location
from ..errors import DefinitionError, ExecutionError
from ..petri.marking import Marking
from ..petri.net import PetriNet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.equivalence import EquivalenceVerdict
    from ..semantics.environment import Environment


class TruncationWarning(UserWarning):
    """A state-space verdict was computed from a *partial* exploration."""


# ---------------------------------------------------------------------------
# the compiled net — frozen orders shared with semantics.vector
# ---------------------------------------------------------------------------
class CompiledNet:
    """A :class:`~repro.petri.net.PetriNet` lowered to dense incidence form.

    Follows the exact frozen-order convention of
    :class:`repro.semantics.vector.CompiledSystem`: ``places`` and
    ``transitions`` in net insertion order, ``pre``/``post`` as dense
    ``(T, P)`` integer matrices.  Token counts travel as ``int16`` rows
    (the explorer's token bound is far below that range).
    """

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.places: tuple[str, ...] = tuple(net.places)
        self.place_index = {p: i for i, p in enumerate(self.places)}
        self.transitions: tuple[str, ...] = tuple(net.transitions)
        n_p, n_t = len(self.places), len(self.transitions)
        self.pre = np.zeros((n_t, n_p), dtype=np.int16)
        self.post = np.zeros((n_t, n_p), dtype=np.int16)
        for ti, t in enumerate(self.transitions):
            for p in net.preset(t):
                self.pre[ti, self.place_index[p]] += 1
            for p in net.postset(t):
                self.post[ti, self.place_index[p]] += 1
        self.delta = self.post - self.pre
        #: producers[p] = transition indices with place p in their postset
        self.producers: list[np.ndarray] = [
            np.nonzero(self.post[:, pi] > 0)[0] for pi in range(n_p)
        ]
        #: conflicting[t] = transition indices sharing a preset place with t
        pre_bool = self.pre > 0
        share = (pre_bool.astype(np.int16) @ pre_bool.astype(np.int16).T) > 0
        self.conflicting: list[np.ndarray] = [
            np.nonzero(share[ti])[0] for ti in range(n_t)
        ]

    # ------------------------------------------------------------------
    def marking_row(self, marking: Marking) -> np.ndarray:
        """Pack a marking into one frozen-order count row."""
        row = np.zeros(len(self.places), dtype=np.int16)
        for place, count in marking.items():
            try:
                row[self.place_index[place]] = count
            except KeyError:
                raise DefinitionError(
                    f"marking names unknown place {place!r}") from None
        return row

    def row_marking(self, row: np.ndarray) -> Marking:
        """Unpack one count row back into a :class:`Marking`."""
        return Marking({
            self.places[i]: int(c) for i, c in enumerate(row.tolist()) if c
        })

    def enabled_mask(self, rows: np.ndarray) -> np.ndarray:
        """``(T, N)`` boolean enabling matrix for a frontier of rows."""
        # one broadcast comparison: front (1,N,P) >= pre (T,1,P)
        return (rows[None, :, :] >= self.pre[:, None, :]).all(axis=2)


# ---------------------------------------------------------------------------
# frontier reachability
# ---------------------------------------------------------------------------
@dataclass
class SymbolicGraph:
    """Result of a frontier (or POR-reduced) exploration.

    ``rows`` holds every visited marking as one packed count row in BFS
    discovery order; ``pred``/``via`` record, per row, the discovery
    predecessor and the transition index that reached it (−1 for the
    initial marking), so :meth:`firing_sequence` can rebuild a
    counterexample path for any node.
    """

    compiled: CompiledNet
    rows: np.ndarray                      # (M, P) int16
    pred: np.ndarray                      # (M,) int64
    via: np.ndarray                       # (M,) int64, transition index
    complete: bool = True
    truncated: bool = False
    truncation_reason: str = ""
    bounded_by: int = 0
    deadlocks: int = 0
    terminals: int = 0
    reduced: bool = False                 # True for POR explorations
    elapsed_s: float = 0.0

    @property
    def num_markings(self) -> int:
        return int(self.rows.shape[0])

    @property
    def is_safe(self) -> bool:
        """True iff every *visited* marking is 1-bounded (a proof only
        when ``complete``)."""
        return self.bounded_by <= 1

    def markings(self) -> list[Marking]:
        """All visited markings (BFS discovery order)."""
        return [self.compiled.row_marking(row) for row in self.rows]

    def marking_set(self) -> frozenset[Marking]:
        return frozenset(self.markings())

    def firing_sequence(self, node: int) -> list[str]:
        """The discovery firing sequence from the initial marking to
        ``node`` — a replayable witness."""
        path: list[str] = []
        while node != 0:
            path.append(self.compiled.transitions[int(self.via[node])])
            node = int(self.pred[node])
        path.reverse()
        return path

    def coexistent_pairs(self) -> frozenset[frozenset[str]]:
        """Unordered place pairs simultaneously marked somewhere, plus
        singleton sets for places ever holding more than one token —
        the exact shape :func:`~repro.petri.reachability.
        coexistent_place_pairs` reports."""
        marked = self.rows > 0
        together = (marked.astype(np.int32).T @ marked.astype(np.int32)) > 0
        pairs: set[frozenset[str]] = set()
        places = self.compiled.places
        rows, cols = np.nonzero(np.triu(together, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            pairs.add(frozenset((places[i], places[j])))
        for pi in np.nonzero((self.rows > 1).any(axis=0))[0].tolist():
            pairs.add(frozenset((places[pi],)))
        return frozenset(pairs)

    def unsafe_witness(self) -> tuple[Marking, list[str]] | None:
        """A visited marking with a ≥2-token place, with its path."""
        over = np.nonzero((self.rows > 1).any(axis=1))[0]
        if not over.size:
            return None
        node = int(over[0])
        return self.compiled.row_marking(self.rows[node]), \
            self.firing_sequence(node)


def _dedupe_rows(rows: np.ndarray) -> np.ndarray:
    """Unique rows, preserving nothing but set identity (sorted order)."""
    return np.unique(rows, axis=0)


def frontier_explore(net: PetriNet, *, max_markings: int = 1_000_000,
                     token_bound: int = 8,
                     initial: Marking | None = None,
                     time_budget: float | None = None,
                     compiled: CompiledNet | None = None) -> SymbolicGraph:
    """Breadth-first symbolic exploration of the reachable marking set.

    Semantics mirror :func:`repro.petri.reachability.explore` over the
    unguarded net: exceeding ``token_bound`` in any place stops the search
    immediately (the violating marking *is* recorded, so safety refutation
    and witness extraction still work), exhausting ``max_markings`` (or
    the optional wall-clock ``time_budget`` in seconds) marks the result
    ``truncated`` instead of silently reporting a partial verdict.
    """
    cn = compiled if compiled is not None else CompiledNet(net)
    started = perf_counter()
    n_p = len(cn.places)
    n_t = len(cn.transitions)
    start = cn.marking_row(initial if initial is not None
                           else net.initial_marking())
    seen: dict[bytes, int] = {start.tobytes(): 0}
    all_rows: list[np.ndarray] = [start[None, :]]
    pred: list[np.ndarray] = [np.full(1, -1, dtype=np.int64)]
    via: list[np.ndarray] = [np.full(1, -1, dtype=np.int64)]
    graph = SymbolicGraph(cn, start[None, :], pred[0], via[0])
    graph.bounded_by = int(start.max()) if n_p else 0
    frontier = start[None, :]
    frontier_ids = np.zeros(1, dtype=np.int64)
    total = 1

    def finish() -> SymbolicGraph:
        graph.rows = np.concatenate(all_rows, axis=0)
        graph.pred = np.concatenate(pred)
        graph.via = np.concatenate(via)
        graph.elapsed_s = perf_counter() - started
        return graph

    while frontier.shape[0]:
        enabled = cn.enabled_mask(frontier) if n_t else \
            np.zeros((0, frontier.shape[0]), dtype=bool)
        any_enabled = enabled.any(axis=0) if n_t else \
            np.zeros(frontier.shape[0], dtype=bool)
        empties = ~frontier.any(axis=1)
        graph.terminals += int(empties.sum())
        graph.deadlocks += int((~any_enabled & ~empties).sum())
        # fire every enabled transition over the whole frontier at once
        succ_chunks: list[np.ndarray] = []
        src_chunks: list[np.ndarray] = []
        via_chunks: list[np.ndarray] = []
        for ti in range(n_t):
            lanes = np.nonzero(enabled[ti])[0]
            if not lanes.size:
                continue
            succ_chunks.append(frontier[lanes] + cn.delta[ti])
            src_chunks.append(frontier_ids[lanes])
            via_chunks.append(np.full(lanes.size, ti, dtype=np.int64))
        if not succ_chunks:
            break
        succs = np.concatenate(succ_chunks, axis=0)
        srcs = np.concatenate(src_chunks)
        vias = np.concatenate(via_chunks)
        peak = int(succs.max()) if succs.size else 0
        graph.bounded_by = max(graph.bounded_by, peak)
        if peak > token_bound:
            # record one violating marking (like explore()) and stop
            bad = int(np.nonzero((succs > token_bound).any(axis=1))[0][0])
            row = succs[bad]
            key = row.tobytes()
            if key not in seen:
                seen[key] = total
                all_rows.append(row[None, :])
                pred.append(srcs[bad:bad + 1])
                via.append(vias[bad:bad + 1])
                total += 1
            graph.complete = False
            graph.truncated = True
            graph.truncation_reason = (
                f"token bound {token_bound} exceeded (a place reached "
                f"{peak} tokens)")
            return finish()
        # dedupe within the batch, keeping the first (src, via) per row
        order = np.lexsort(succs.T[::-1])
        succs, srcs, vias = succs[order], srcs[order], vias[order]
        fresh_in_batch = np.ones(succs.shape[0], dtype=bool)
        if succs.shape[0] > 1:
            fresh_in_batch[1:] = (succs[1:] != succs[:-1]).any(axis=1)
        succs, srcs, vias = (succs[fresh_in_batch], srcs[fresh_in_batch],
                             vias[fresh_in_batch])
        new_rows: list[int] = []
        for i in range(succs.shape[0]):
            key = succs[i].tobytes()
            if key not in seen:
                seen[key] = total + len(new_rows)
                new_rows.append(i)
        if not new_rows:
            break
        keep = np.asarray(new_rows, dtype=np.int64)
        new = succs[keep]
        if total + new.shape[0] > max_markings:
            room = max(0, max_markings - total)
            new = new[:room]
            keep = keep[:room]
            graph.complete = False
            graph.truncated = True
            graph.truncation_reason = (
                f"marking budget {max_markings} exhausted")
        if new.shape[0]:
            all_rows.append(new)
            pred.append(srcs[keep])
            via.append(vias[keep])
            frontier_ids = np.arange(total, total + new.shape[0],
                                     dtype=np.int64)
            total += new.shape[0]
            frontier = new
        else:
            frontier = new
        if graph.truncated:
            return finish()
        if time_budget is not None and perf_counter() - started > time_budget:
            graph.complete = False
            graph.truncated = True
            graph.truncation_reason = (
                f"time budget {time_budget:.3g}s exhausted")
            return finish()
    return finish()


# ---------------------------------------------------------------------------
# partial-order reduction — stubborn sets
# ---------------------------------------------------------------------------
def stubborn_set(cn: CompiledNet, row: np.ndarray,
                 enabled: np.ndarray) -> list[int]:
    """A Valmari-style stubborn set at one marking (transition indices).

    Seeds with the lowest-index enabled transition and closes under:

    * *enabled* members pull in every transition sharing a preset place
      (those are the only ones whose firing can disable them or compete
      for their tokens);
    * *disabled* members pull in the producers of one (deterministically
      chosen) unmarked preset place — the only transitions whose firing
      could enable them.

    Only the enabled members of the closure are explored.  Transitions
    outside the set have disjoint place neighbourhoods with every enabled
    member — the independence Definition 3.2 guarantees between
    ``∥``-parallel branches — so deferring them loses no deadlock, and
    any deferred interleaving's intermediate marking agrees place-by-place
    with markings the reduced search still visits.
    """
    enabled_idx = np.nonzero(enabled)[0]
    if not enabled_idx.size:
        return []
    stub: set[int] = set()
    work = [int(enabled_idx[0])]
    enabled_set = set(enabled_idx.tolist())
    while work:
        ti = work.pop()
        if ti in stub:
            continue
        stub.add(ti)
        if ti in enabled_set:
            for u in cn.conflicting[ti].tolist():
                if u not in stub:
                    work.append(u)
        else:
            pre_places = np.nonzero(cn.pre[ti] > 0)[0]
            unmarked = [int(p) for p in pre_places
                        if row[p] < cn.pre[ti, p]]
            if unmarked:
                for u in cn.producers[unmarked[0]].tolist():
                    if u not in stub:
                        work.append(u)
    return sorted(t for t in stub if t in enabled_set)


def por_explore(net: PetriNet, *, max_markings: int = 1_000_000,
                token_bound: int = 8,
                initial: Marking | None = None,
                compiled: CompiledNet | None = None) -> SymbolicGraph:
    """Stubborn-set-reduced exploration of the marking graph.

    Visits a (often exponentially smaller) subset of the reachable
    markings that still contains every deadlock; ``deadlocks > 0`` and
    ``terminals > 0`` verdicts coincide with the full exploration's.  A
    safety violation reported here (``bounded_by > 1``) is always real;
    the full frontier is the complete safety decision procedure.
    """
    cn = compiled if compiled is not None else CompiledNet(net)
    started = perf_counter()
    start = cn.marking_row(initial if initial is not None
                           else net.initial_marking())
    seen: dict[bytes, int] = {start.tobytes(): 0}
    rows: list[np.ndarray] = [start]
    pred: list[int] = [-1]
    via: list[int] = [-1]
    graph = SymbolicGraph(cn, start[None, :], np.zeros(1, dtype=np.int64),
                          np.zeros(1, dtype=np.int64), reduced=True)
    graph.bounded_by = int(start.max()) if cn.places else 0
    queue = [0]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        row = rows[node]
        if not row.any():
            graph.terminals += 1
            continue
        enabled = (row >= cn.pre).all(axis=1)
        ample = stubborn_set(cn, row, enabled)
        if not ample:
            graph.deadlocks += 1
            continue
        for ti in ample:
            succ = row + cn.delta[ti]
            peak = int(succ.max())
            graph.bounded_by = max(graph.bounded_by, peak)
            key = succ.tobytes()
            target = seen.get(key)
            if target is None:
                if peak > token_bound:
                    seen[key] = len(rows)
                    rows.append(succ)
                    pred.append(node)
                    via.append(ti)
                    graph.complete = False
                    graph.truncated = True
                    graph.truncation_reason = (
                        f"token bound {token_bound} exceeded (a place "
                        f"reached {peak} tokens)")
                    break
                if len(rows) >= max_markings:
                    graph.complete = False
                    graph.truncated = True
                    graph.truncation_reason = (
                        f"marking budget {max_markings} exhausted")
                    break
                target = len(rows)
                seen[key] = target
                rows.append(succ)
                pred.append(node)
                via.append(ti)
                queue.append(target)
        if graph.truncated:
            break
    graph.rows = np.stack(rows, axis=0)
    graph.pred = np.asarray(pred, dtype=np.int64)
    graph.via = np.asarray(via, dtype=np.int64)
    graph.elapsed_s = perf_counter() - started
    return graph


# ---------------------------------------------------------------------------
# complete finite prefix unfolding (McMillan)
# ---------------------------------------------------------------------------
@dataclass
class _Condition:
    """A place occurrence in the branching process."""

    index: int
    place: str
    producer: int  # event index, -1 for initial conditions


@dataclass
class _Event:
    """A transition occurrence with its causal history."""

    index: int
    transition: str
    inputs: tuple[int, ...]        # condition indices consumed
    outputs: tuple[int, ...] = ()  # condition indices produced
    local_config: frozenset[int] = frozenset()  # event indices incl. self
    cutoff: bool = False


@dataclass
class Prefix:
    """A complete finite prefix of a 1-safe net's unfolding."""

    net_places: tuple[str, ...]
    conditions: list[_Condition] = field(default_factory=list)
    events: list[_Event] = field(default_factory=list)
    complete: bool = True
    truncation_reason: str = ""
    #: pairwise concurrency over conditions (co-relation), symmetric
    _co: np.ndarray | None = None

    @property
    def num_events(self) -> int:
        return len(self.events)

    def concurrent(self, b1: int, b2: int) -> bool:
        assert self._co is not None
        return bool(self._co[b1, b2])

    def coexistent_pairs(self) -> frozenset[frozenset[str]]:
        """Place pairs labelling concurrent conditions (exact coexistence
        for safe nets), singleton sets for self-concurrent places."""
        assert self._co is not None
        pairs: set[frozenset[str]] = set()
        n = len(self.conditions)
        rows, cols = np.nonzero(np.triu(self._co, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            p, q = self.conditions[i].place, self.conditions[j].place
            pairs.add(frozenset((p, q)))
            _ = n
        return frozenset(pairs)

    def unsafe_places(self) -> frozenset[str]:
        """Places with two concurrent occurrences — unsafe even though
        the initial marking was 1-bounded."""
        assert self._co is not None
        out: set[str] = set()
        rows, cols = np.nonzero(np.triu(self._co, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            if self.conditions[i].place == self.conditions[j].place:
                out.add(self.conditions[i].place)
        return frozenset(out)

    def conflict_transition_pairs(self) -> frozenset[frozenset[str]]:
        """Transition pairs competing for one condition — structural
        conflict made behavioural (both alternatives really enabled)."""
        consumers: dict[int, set[str]] = {}
        for event in self.events:
            for b in event.inputs:
                consumers.setdefault(b, set()).add(event.transition)
        pairs: set[frozenset[str]] = set()
        for names in consumers.values():
            ordered = sorted(names)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    pairs.add(frozenset((a, b)))
        return frozenset(pairs)


def complete_prefix(net: PetriNet, *, max_events: int = 10_000) -> Prefix:
    """Build a McMillan complete finite prefix of a 1-safe net.

    Requires a 1-bounded initial marking (raises
    :class:`~repro.errors.DefinitionError` otherwise).  Every reachable
    marking of a safe net is the cut of some configuration of the prefix,
    so coexistence and conflict queries are answered exactly without
    interleaving enumeration.  If the net turns out not to be safe the
    unfolding itself surfaces it (:meth:`Prefix.unsafe_places`); callers
    wanting a verdict for possibly-unsafe nets should fall back to
    :func:`frontier_explore`.
    """
    initial = net.initial_marking()
    if any(count > 1 for count in initial.values()):
        raise DefinitionError(
            "complete_prefix needs a 1-bounded initial marking; use "
            "frontier_explore for multi-token nets")
    prefix = Prefix(net_places=tuple(net.places))
    conditions = prefix.conditions
    events = prefix.events
    # per condition b: the events causally below it, and a map
    # {condition -> consuming event} over that history.  Local histories
    # are conflict-free, so each condition has at most one consumer in
    # any single history and the maps merge consistently.
    cond_events: list[frozenset[int]] = []
    cond_cmap: list[dict[int, int]] = []

    for place in initial:
        conditions.append(_Condition(len(conditions), place, -1))
        cond_events.append(frozenset())
        cond_cmap.append({})

    def concurrent(b1: int, b2: int) -> bool:
        """Standard occurrence-net co: neither causally ordered nor in
        conflict."""
        if b1 == b2:
            return False
        cmap1, cmap2 = cond_cmap[b1], cond_cmap[b2]
        if b1 in cmap2 or b2 in cmap1:
            return False  # causally ordered
        if len(cmap1) > len(cmap2):
            cmap1, cmap2 = cmap2, cmap1
        for cond, consumer in cmap1.items():
            other = cmap2.get(cond)
            if other is not None and other != consumer:
                return False  # conflict: one condition, two consumers
        return True

    def marking_of(config: frozenset[int]) -> frozenset[tuple[str, int]]:
        """The cut of a configuration as a place multiset."""
        consumed: set[int] = set()
        produced: set[int] = set()
        for e in config:
            consumed.update(events[e].inputs)
            produced.update(events[e].outputs)
        initial_conds = {b for b in range(len(conditions))
                         if conditions[b].producer < 0}
        cut = (initial_conds | produced) - consumed
        counts: dict[str, int] = {}
        for b in cut:
            counts[conditions[b].place] = counts.get(conditions[b].place,
                                                     0) + 1
        return frozenset(counts.items())

    seen_markings: dict[frozenset[tuple[str, int]], int] = {
        marking_of(frozenset()): 0
    }
    transitions = list(net.transitions)
    presets = {t: sorted(net.preset(t)) for t in transitions}
    postsets = {t: sorted(net.postset(t)) for t in transitions}
    known_events: set[tuple[str, tuple[int, ...]]] = set()

    progress = True
    while progress:
        progress = False
        if len(events) >= max_events:
            prefix.complete = False
            prefix.truncation_reason = f"event budget {max_events} exhausted"
            break
        by_place: dict[str, list[int]] = {}
        for cond in conditions:
            # conditions below a cutoff event are not extended further
            if cond.producer >= 0 and events[cond.producer].cutoff:
                continue
            by_place.setdefault(cond.place, []).append(cond.index)
        for t in transitions:
            needed = presets[t]
            if not needed:
                continue  # source transitions would unfold unboundedly
            pools = [by_place.get(p, []) for p in needed]
            if any(not pool for pool in pools):
                continue
            for combo in _co_sets(pools, concurrent):
                key = (t, tuple(sorted(combo)))
                if key in known_events:
                    continue
                known_events.add(key)
                history: set[int] = set()
                cmap: dict[int, int] = {}
                for b in combo:
                    history |= cond_events[b]
                    cmap.update(cond_cmap[b])
                event = _Event(len(events), t, tuple(sorted(combo)))
                event.local_config = frozenset(history | {event.index})
                events.append(event)
                for b in combo:
                    cmap[b] = event.index
                below = frozenset(event.local_config)
                outputs = []
                for place in postsets[t]:
                    cond = _Condition(len(conditions), place, event.index)
                    conditions.append(cond)
                    cond_events.append(below)
                    cond_cmap.append(cmap)
                    outputs.append(cond.index)
                event.outputs = tuple(outputs)
                mark = marking_of(event.local_config)
                size = len(event.local_config)
                best = seen_markings.get(mark)
                if best is not None and best < size:
                    event.cutoff = True
                elif best is None or size < best:
                    seen_markings[mark] = size
                progress = True
                if len(events) >= max_events:
                    break
            if len(events) >= max_events:
                break

    # final pairwise co-relation over conditions
    n = len(conditions)
    co = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            if concurrent(i, j):
                co[i, j] = co[j, i] = True
    prefix._co = co
    return prefix


def _co_sets(pools: list[list[int]],
             concurrent) -> Iterable[tuple[int, ...]]:
    """All pairwise-concurrent picks of one condition per pool."""
    def extend(prefix_combo: tuple[int, ...], rest: list[list[int]]):
        if not rest:
            yield prefix_combo
            return
        for candidate in rest[0]:
            if candidate in prefix_combo:
                continue
            if all(concurrent(candidate, b) for b in prefix_combo):
                yield from extend(prefix_combo + (candidate,), rest[1:])
    yield from extend((), pools)


# ---------------------------------------------------------------------------
# the facade — what the rebuilt checkers call
# ---------------------------------------------------------------------------
class SymbolicAnalyzer:
    """One-stop symbolic reachability analysis over a net (or system).

    Compiles the net once; every query shares the
    :class:`CompiledNet`.  ``coexistent_pairs`` routes through the
    unfolding prefix when the net is small and 1-safe-looking and falls
    back to the frontier engine otherwise — the three techniques
    cooperate rather than compete.
    """

    def __init__(self, net: PetriNet, *, max_markings: int = 1_000_000,
                 token_bound: int = 8) -> None:
        self.net = net
        self.compiled = CompiledNet(net)
        self.max_markings = max_markings
        self.token_bound = token_bound
        self._full: SymbolicGraph | None = None

    # ------------------------------------------------------------------
    def explore(self) -> SymbolicGraph:
        """The (cached) full frontier exploration."""
        if self._full is None:
            self._full = frontier_explore(
                self.net, max_markings=self.max_markings,
                token_bound=self.token_bound, compiled=self.compiled)
        return self._full

    def reduced(self) -> SymbolicGraph:
        """A stubborn-set-reduced exploration (not cached; cheap)."""
        return por_explore(self.net, max_markings=self.max_markings,
                           token_bound=self.token_bound,
                           compiled=self.compiled)

    def is_safe(self) -> bool:
        """Exact safety decision; raises on a truncated exploration."""
        graph = frontier_explore(self.net, max_markings=self.max_markings,
                                 token_bound=1, compiled=self.compiled)
        if graph.bounded_by > 1:
            return False
        if graph.truncated:
            raise ExecutionError(
                "symbolic reachability budget exhausted before safety "
                f"could be decided ({graph.truncation_reason})")
        return True

    def safety_diagnostics(self, *, system: str = "") -> list[Diagnostic]:
        """Structured findings for safety violations, with a
        firing-sequence counterexample each."""
        graph = frontier_explore(self.net, max_markings=self.max_markings,
                                 token_bound=1, compiled=self.compiled)
        witness = graph.unsafe_witness()
        if witness is None:
            return []
        marking, path = witness
        offenders = sorted(p for p, c in marking.items() if c > 1)
        return [Diagnostic(
            rule="SY001",
            severity="error",
            message=(f"net is not safe: place(s) {offenders} hold more "
                     f"than one token after firing {' -> '.join(path)}"),
            locations=tuple(
                [Location("place", p) for p in offenders]
                + [Location("marking", repr(marking))]),
            hint="fire the listed sequence from M0 to reproduce",
            system=system,
        )]

    def coexistent_pairs(self, *, prefer_unfolding: bool = True,
                         unfolding_max_events: int = 2_000
                         ) -> tuple[frozenset[frozenset[str]], bool]:
        """``(pairs, complete)`` with the explicit checker's contract."""
        initial = self.net.initial_marking()
        if (prefer_unfolding
                and all(c <= 1 for c in initial.values())
                and len(self.net.transitions) <= 64):
            try:
                prefix = complete_prefix(
                    self.net, max_events=unfolding_max_events)
            except DefinitionError:
                prefix = None
            if prefix is not None and prefix.complete \
                    and not prefix.unsafe_places():
                pairs = set(prefix.coexistent_pairs())
                # seed with the initial marking's own coexistences
                marked0 = sorted(initial.marked_places())
                for i, p in enumerate(marked0):
                    for q in marked0[i + 1:]:
                        pairs.add(frozenset((p, q)))
                return frozenset(pairs), True
        graph = self.explore()
        if graph.truncated:
            warn_truncated("coexistent place pairs",
                           graph.truncation_reason)
        return graph.coexistent_pairs(), not graph.truncated


# ---------------------------------------------------------------------------
# symbolic semantic equivalence
# ---------------------------------------------------------------------------
def _compiled_event_structure(system: "DataControlSystem",
                              environment: "Environment", *,
                              max_steps: int):
    """Event structure + firing steps via the *compiled* vector backend.

    Never the interpreter when the system is supported; systems outside
    the vector backend's policy/hook envelope degrade to the interpreter
    (explicitly, and only for the data phase the static techniques cannot
    replace)."""
    from ..semantics.event_structure import event_structure_from_trace
    from ..semantics.policies import MaximalStepPolicy
    from ..semantics.simulator import Simulator

    try:
        simulator = Simulator(system, environment, MaximalStepPolicy(),
                              backend="vector")
    except DefinitionError:
        simulator = Simulator(system, environment, MaximalStepPolicy())
    trace = simulator.run(max_steps=max_steps)
    return event_structure_from_trace(system, trace), \
        [list(step) for step in trace.steps]


def symbolic_semantically_equivalent(
        gamma: "DataControlSystem", gamma_prime: "DataControlSystem",
        environment: "Environment | None" = None, *,
        max_steps: int = 10_000) -> "EquivalenceVerdict":
    """Definition 4.1 checked without the interpreter.

    Static prescreens first (external interfaces must match — two systems
    with different external arc names cannot produce equal event
    structures, no execution needed), then both event structures are
    extracted through the compiled vector backend and compared; an
    inequivalence verdict carries the two distinguishing firing sequences
    as a replayable witness.
    """
    from ..core.equivalence import EquivalenceVerdict
    from ..semantics.environment import Environment

    ext_left = gamma.external_arc_names()
    ext_right = gamma_prime.external_arc_names()
    if ext_left != ext_right:
        only_left = sorted(ext_left - ext_right)
        only_right = sorted(ext_right - ext_left)
        return EquivalenceVerdict(
            False, "semantic",
            f"external interfaces differ: only-left={only_left}, "
            f"only-right={only_right}", backend="symbolic")
    env = environment if environment is not None else Environment()
    left, steps_left = _compiled_event_structure(
        gamma, env.fork(), max_steps=max_steps)
    right, steps_right = _compiled_event_structure(
        gamma_prime, env.fork(), max_steps=max_steps)
    if left.semantically_equal(right):
        return EquivalenceVerdict(True, "semantic", backend="symbolic")
    return EquivalenceVerdict(
        False, "semantic",
        left.explain_difference(right) or "structures differ",
        witness={"left": steps_left, "right": steps_right},
        backend="symbolic")


# ---------------------------------------------------------------------------
# diagnostics / SARIF bridge
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _EquivRule:
    """Rule metadata shaped like a lint rule (for the SARIF driver)."""

    id: str
    title: str
    clause: str
    severity: str
    structural: bool = False


EQUIV_RULES: tuple[_EquivRule, ...] = (
    _EquivRule("EQ001", "systems are not semantically equivalent",
               "4.1", "error"),
    _EquivRule("EQ002", "equivalence verdict is budget-relative",
               "4.1", "info"),
)


def equivalence_diagnostics(verdict: "EquivalenceVerdict", *,
                            left: str, right: str) -> list[Diagnostic]:
    """Render an equivalence verdict as structured diagnostics.

    An inequivalence produces one ``EQ001`` error whose message embeds
    the reason and whose witness firing sequence (when present) rides
    along as ``marking`` locations — the SARIF pipeline then carries the
    counterexample into CI artifacts unchanged.
    """
    if verdict.equivalent:
        return []
    system = f"{left} vs {right}"
    locations: list[Location] = []
    if verdict.witness:
        for side in ("left", "right"):
            steps = verdict.witness.get(side, [])
            flat = " ; ".join(",".join(step) for step in steps)
            locations.append(Location(
                "marking", f"{side} firing sequence: {flat or '(empty)'}"))
    return [Diagnostic(
        rule="EQ001",
        severity="error",
        message=(f"{left} and {right} are not "
                 f"{verdict.relation}-equivalent: {verdict.reason}"),
        locations=tuple(locations),
        hint="replay the recorded firing sequences to reproduce the "
             "distinguishing behaviour",
        system=system,
    )]


def warn_truncated(what: str, reason: str) -> None:
    """Emit the standard partial-state-space warning."""
    warnings.warn(
        f"{what} computed from a truncated exploration ({reason}); "
        "the verdict is not a proof",
        TruncationWarning, stacklevel=3)


__all__ = [
    "CompiledNet",
    "SymbolicGraph",
    "SymbolicAnalyzer",
    "Prefix",
    "TruncationWarning",
    "frontier_explore",
    "por_explore",
    "stubborn_set",
    "complete_prefix",
    "symbolic_semantically_equivalent",
    "equivalence_diagnostics",
    "EQUIV_RULES",
    "warn_truncated",
]
