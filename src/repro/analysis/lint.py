"""``repro.analysis.lint`` — the structural design-rule checker.

A rule-registry-based static analyzer over
:class:`~repro.core.system.DataControlSystem` producing structured
:class:`~repro.diagnostics.Diagnostic` objects.  Every rule here is
**structural**: it inspects the net's flow relation, P-invariants, the
data path and the two extension mappings, and never enumerates reachable
markings — the PRES+ equivalence-checking line avoids exactly that state
explosion with path-based analysis, and so do we.  The behavioural,
reachability-backed Definition 3.2 verdict remains available as
:func:`repro.core.properly_designed.check_properly_designed`; the lint
engine is its scalable over-approximation (plus a set of hygiene rules
the paper's definition does not mention but every real design wants).

Structural concurrency
----------------------
Several rules must know whether two control states can hold tokens at
the same time.  Without reachability we answer in three grades:

* **mutex** — both places carry weight ≥ 1 in a common semi-positive
  P-invariant whose initial weighted token sum is ≤ 1 (the conservation
  law proves they are never simultaneously marked), or the places are the
  direct successors of two transitions that compete for a common input
  place under provably exclusive guards (if/else branch heads).
* **parallel** — the places are structurally concurrent (``∥`` of
  Definition 2.3(5)): no flow path orders them.  Sharing resources here
  is reported as an *error*.
* **sequential** — flow-ordered but not provably exclusive (loops can
  overlap iterations); sharing is reported as a *warning*.

Rule table
----------
==== ======== ================================================= ==========
id   severity title                                             Def. 3.2
==== ======== ================================================= ==========
PD001 error/  coexistence-capable states share active subgraph   3.2(1)
      warning
PD002 error/  control net not provably safe (P-invariant          3.2(2)
      info    over-approximation; error when M0 itself is unsafe)
PD003 error   competing transitions without exclusive guards      3.2(3)
PD004 error   combinational loop within one control state         3.2(4)
PD005 error   control state drives no sequential vertex           3.2(5)
CN001 warning structurally dead place (unreachable in F)          —
CN002 warning structurally dead transition (dead input place)     —
CN003 error   source transition (empty preset floods the net)     —
DP000 error   data-path well-formedness (Definition 3.3 shapes)   3.3
DP001 warning arc never opened by any control state               —
DP002 warning sequential vertex never driven by an opened arc     —
DP003 error   guard port combinationally undriven where consulted —
DP004 error/  drive conflict on an input port                     —
      warning
==== ======== ================================================= ==========
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from functools import cached_property
from itertools import combinations
from typing import Any, Callable, Iterable, Sequence

from ..core.system import DataControlSystem
from ..datapath.ports import PortId
from ..diagnostics import Diagnostic, Location, count_by_severity, severity_at_least, worst_severity
from ..errors import DefinitionError, TransformError
from ..petri.invariants import invariant_token_sum, positive_p_invariants
from ..petri.properties import structural_conflicts, unsafe_witness_message
from ..petri.relations import StructuralRelations

#: Baseline file format marker (see :func:`load_baseline`).
BASELINE_FORMAT = 1

#: Lint report JSON format marker.
REPORT_FORMAT = 1


# ---------------------------------------------------------------------------
# shared structural facts, computed once per linted system
# ---------------------------------------------------------------------------
class LintContext:
    """Memoised structural facts shared by the rules.

    Everything here is derived without marking enumeration: flow-graph
    reachability, the Definition 2.3 relations (a boolean-matrix closure)
    and the P-invariant cone of :mod:`repro.petri.invariants`.
    """

    def __init__(self, system: DataControlSystem) -> None:
        self.system = system
        self.net = system.net
        self.datapath = system.datapath

    @cached_property
    def relations(self) -> StructuralRelations:
        # reuse the system-level cache: the Definition 2.3 closure is the
        # single most expensive structural artefact, and the checker,
        # the transforms and the lint rules all want the same one
        return self.system.relations

    @cached_property
    def flow_reachable(self) -> frozenset[str]:
        """Net elements reachable from the initially marked places in F."""
        seen: set[str] = set()
        stack = [p for p in self.net.places if self.net.initial.get(p, 0) > 0]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.net.postset(node))
        return frozenset(seen)

    @cached_property
    def safe_invariants(self) -> list[dict[str, int]]:
        """Semi-positive P-invariants with initial weighted token sum ≤ 1."""
        initial = self.net.initial_marking()
        return [invariant for invariant in positive_p_invariants(self.net)
                if invariant_token_sum(invariant, initial) <= 1]

    @cached_property
    def invariant_safe_places(self) -> frozenset[str]:
        """Places proven 1-bounded by some safe invariant."""
        safe: set[str] = set()
        for invariant in self.safe_invariants:
            safe.update(p for p, w in invariant.items() if w >= 1)
        return frozenset(safe)

    @cached_property
    def _mutex_index(self) -> dict[str, frozenset[int]]:
        index: dict[str, set[int]] = {}
        for i, invariant in enumerate(self.safe_invariants):
            for place, weight in invariant.items():
                if weight >= 1:
                    index.setdefault(place, set()).add(i)
        return {p: frozenset(s) for p, s in index.items()}

    @cached_property
    def _branch_exclusive_pairs(self) -> frozenset[frozenset[str]]:
        """Place pairs entered through guard-exclusive branch transitions."""
        pairs: set[frozenset[str]] = set()
        for place in self.net.places:
            for t_1, t_2 in combinations(sorted(self.net.postset(place)), 2):
                if not guards_exclusive(self.system, t_1, t_2):
                    continue
                for p in self.net.postset(t_1):
                    for q in self.net.postset(t_2):
                        if p != q:
                            pairs.add(frozenset((p, q)))
        return frozenset(pairs)

    def proven_mutex(self, s_1: str, s_2: str) -> bool:
        """True iff the places are structurally proven never co-marked."""
        if s_1 == s_2:
            return s_1 in self.invariant_safe_places
        common = self._mutex_index.get(s_1, frozenset()) \
            & self._mutex_index.get(s_2, frozenset())
        if common:
            return True
        return frozenset((s_1, s_2)) in self._branch_exclusive_pairs

    def concurrency_class(self, s_1: str, s_2: str) -> str:
        """``"mutex"`` / ``"parallel"`` / ``"sequential"`` (see module doc)."""
        if self.proven_mutex(s_1, s_2):
            return "mutex"
        if s_1 != s_2 and self.relations.parallel(s_1, s_2):
            return "parallel"
        return "sequential"

    @cached_property
    def ass_cache(self) -> dict[str, tuple[frozenset[str], frozenset[str]]]:
        return {p: self.system.ass(p) for p in self.system.control}

    @cached_property
    def opening_states(self) -> dict[str, frozenset[str]]:
        """Arc name → control states whose ``C`` set opens it."""
        opened: dict[str, set[str]] = {}
        for place, arcs in self.system.control.items():
            for arc in arcs:
                opened.setdefault(arc, set()).add(place)
        return {a: frozenset(s) for a, s in opened.items()}


# ---------------------------------------------------------------------------
# the rule registry
# ---------------------------------------------------------------------------
RuleCheck = Callable[[DataControlSystem, LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered design rule."""

    id: str
    title: str
    severity: str
    clause: str
    check: RuleCheck
    structural: bool = True


_REGISTRY: dict[str, LintRule] = {}


def lint_rule(rule_id: str, title: str, *, severity: str, clause: str = "—",
              structural: bool = True) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule check function under a stable id."""
    def decorate(check: RuleCheck) -> RuleCheck:
        if rule_id in _REGISTRY:
            raise DefinitionError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = LintRule(rule_id, title, severity, clause, check,
                                      structural)
        return check
    return decorate


def all_rules() -> list[LintRule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DefinitionError(
            f"unknown lint rule {rule_id!r}; known rules: {known}") from None


# ---------------------------------------------------------------------------
# PD — the Definition 3.2 clauses, structurally
# ---------------------------------------------------------------------------
@lint_rule("PD001", "coexistence-capable states share their active subgraph",
           severity="error", clause="3.2(1)")
def _pd001_disjoint_ass(system: DataControlSystem,
                        ctx: LintContext) -> Iterable[Diagnostic]:
    for s_1, s_2 in combinations(sorted(system.control), 2):
        arcs_1, verts_1 = ctx.ass_cache[s_1]
        arcs_2, verts_2 = ctx.ass_cache[s_2]
        shared_arcs = arcs_1 & arcs_2
        shared_verts = verts_1 & verts_2
        if not shared_arcs and not shared_verts:
            continue
        grade = ctx.concurrency_class(s_1, s_2)
        if grade == "mutex":
            continue
        what = []
        if shared_arcs:
            what.append(f"arcs {sorted(shared_arcs)}")
        if shared_verts:
            what.append(f"vertices {sorted(shared_verts)}")
        if grade == "parallel":
            severity, how = "error", "structurally concurrent"
        else:
            severity, how = "warning", "not provably exclusive"
        locations = (Location("place", s_1), Location("place", s_2)) + tuple(
            Location("arc", a) for a in sorted(shared_arcs)) + tuple(
            Location("vertex", v) for v in sorted(shared_verts))
        yield Diagnostic(
            "PD001", severity,
            f"states {s_1!r} and {s_2!r} are {how} yet share "
            f"{', '.join(what)}",
            locations,
            hint="serialize the states or give each its own resources "
                 "(Definition 3.2(1): ASS(S_i) ∩ ASS(S_j) = ∅)",
        )


@lint_rule("PD002", "control net is not provably safe",
           severity="info", clause="3.2(2)")
def _pd002_safety(system: DataControlSystem,
                  ctx: LintContext) -> Iterable[Diagnostic]:
    initial = system.net.initial_marking()
    refuted = sorted(p for p in initial if initial[p] > 1)
    for place in refuted:
        yield Diagnostic(
            "PD002", "error",
            "initial marking is already unsafe: "
            + unsafe_witness_message(place, initial),
            (Location("place", place), Location("marking", repr(initial))),
            hint="a properly designed net is 1-bounded (Definition 3.2(2)); "
                 "start every place with at most one token",
        )
    unproven = sorted(set(system.net.places)
                      - ctx.invariant_safe_places - set(refuted))
    if unproven:
        # Info, not warning: terminating designs drain their tokens
        # through sink transitions, so their tail states are never
        # invariant-covered — an exact verdict needs reachability.
        yield Diagnostic(
            "PD002", "info",
            f"{len(unproven)} place(s) not covered by any P-invariant with "
            f"initial token sum ≤ 1: {unproven} — safety cannot be proven "
            "structurally",
            tuple(Location("place", p) for p in unproven),
            hint="run the reachability-based check_properly_designed for an "
                 "exact verdict, or restructure so token flow is conserved",
        )


def is_complement(system: DataControlSystem, a: PortId, b: PortId) -> bool:
    """True iff port ``b`` is the output of a NOT vertex driven from ``a``."""
    vertex = system.datapath.vertex(b.vertex)
    op = vertex.ops.get(b.port)
    if op is None or op.name != "not":
        return False
    for in_port in vertex.input_ids():
        for arc in system.datapath.arcs_into(in_port):
            if arc.source == a:
                return True
    return False


def guards_exclusive(system: DataControlSystem, t_1: str, t_2: str) -> bool:
    """Static sufficient condition for mutually exclusive guards.

    Each transition must be guarded by exactly one port, and one port must
    be the logical complement of the other (a ``not`` vertex wired from
    it).  This is exactly the branch pattern the frontend compiler emits;
    hand-built systems with richer exclusivity should be verified with the
    dynamic sweep instead.
    """
    g_1 = system.guard_ports(t_1)
    g_2 = system.guard_ports(t_2)
    if len(g_1) != 1 or len(g_2) != 1:
        return False
    (p_1,) = g_1
    (p_2,) = g_2
    return is_complement(system, p_1, p_2) or is_complement(system, p_2, p_1)


def conflict_diagnostics(system: DataControlSystem) -> list[Diagnostic]:
    """PD003 findings (shared with the Definition 3.2 checker)."""
    found: list[Diagnostic] = []
    for place, t_1, t_2 in structural_conflicts(system.net):
        if guards_exclusive(system, t_1, t_2):
            continue
        found.append(Diagnostic(
            "PD003", "error",
            f"transitions {t_1!r} and {t_2!r} compete for place {place!r} "
            "without provably exclusive guards",
            (Location("place", place), Location("transition", t_1),
             Location("transition", t_2)),
            hint="guard one transition with a port and the other with its "
                 "inversion (Definition 3.2(3))",
        ))
    return found


@lint_rule("PD003", "competing transitions without exclusive guards",
           severity="error", clause="3.2(3)")
def _pd003_conflict_free(system: DataControlSystem,
                         ctx: LintContext) -> Iterable[Diagnostic]:
    return conflict_diagnostics(system)


def combinational_loop_diagnostics(system: DataControlSystem
                                   ) -> list[Diagnostic]:
    """PD004 findings (shared with the Definition 3.2 checker)."""
    from ..datapath.validate import combinational_cycle

    found: list[Diagnostic] = []
    for place in sorted(system.control):
        cycle = combinational_cycle(system.datapath,
                                    system.control_arcs(place))
        if cycle is not None:
            found.append(Diagnostic(
                "PD004", "error",
                f"state {place!r} activates combinational loop "
                f"{' -> '.join(cycle)}",
                (Location("place", place),)
                + tuple(Location("vertex", v) for v in cycle),
                hint="break the loop with a sequential vertex "
                     "(Definition 3.2(4))",
            ))
    return found


@lint_rule("PD004", "combinational loop within one control state",
           severity="error", clause="3.2(4)")
def _pd004_comb_loops(system: DataControlSystem,
                      ctx: LintContext) -> Iterable[Diagnostic]:
    return combinational_loop_diagnostics(system)


def sequential_vertex_diagnostics(system: DataControlSystem
                                  ) -> list[Diagnostic]:
    """PD005 findings (shared with the Definition 3.2 checker)."""
    found: list[Diagnostic] = []
    for place in sorted(system.net.places):
        if not system.control_arcs(place):
            # A state controlling no arcs performs no operation; the rule
            # only constrains states that are mapped by C.
            continue
        vertices = system.associated_vertices(place)
        if not any(system.datapath.vertex(v).is_sequential
                   for v in vertices):
            found.append(Diagnostic(
                "PD005", "error",
                f"state {place!r} drives no sequential vertex",
                (Location("place", place),),
                hint="every operating state must latch a result "
                     "(Definition 3.2(5)); route one controlled arc into a "
                     "register or pad",
            ))
    return found


@lint_rule("PD005", "control state drives no sequential vertex",
           severity="error", clause="3.2(5)")
def _pd005_sequential(system: DataControlSystem,
                      ctx: LintContext) -> Iterable[Diagnostic]:
    return sequential_vertex_diagnostics(system)


# ---------------------------------------------------------------------------
# CN — control-net hygiene
# ---------------------------------------------------------------------------
@lint_rule("CN001", "structurally dead place", severity="warning")
def _cn001_dead_place(system: DataControlSystem,
                      ctx: LintContext) -> Iterable[Diagnostic]:
    for place in sorted(system.net.places):
        if place in ctx.flow_reachable:
            continue
        yield Diagnostic(
            "CN001", "warning",
            f"place {place!r} is unreachable from the initial marking along "
            "the flow relation (it can never hold a token)",
            (Location("place", place),),
            hint="remove the dead state or connect it to the live net",
        )


@lint_rule("CN002", "structurally dead transition", severity="warning")
def _cn002_dead_transition(system: DataControlSystem,
                           ctx: LintContext) -> Iterable[Diagnostic]:
    for transition in sorted(system.net.transitions):
        preset = system.net.preset(transition)
        if not preset:
            continue  # CN003's business
        dead_inputs = sorted(p for p in preset
                             if p not in ctx.flow_reachable)
        if not dead_inputs:
            continue
        yield Diagnostic(
            "CN002", "warning",
            f"transition {transition!r} can never fire: input place(s) "
            f"{dead_inputs} are unreachable from the initial marking",
            (Location("transition", transition),)
            + tuple(Location("place", p) for p in dead_inputs),
            hint="remove the dead transition or mark/connect its inputs",
        )


@lint_rule("CN003", "source transition floods the net", severity="error")
def _cn003_source_transition(system: DataControlSystem,
                             ctx: LintContext) -> Iterable[Diagnostic]:
    for transition in sorted(system.net.transitions):
        if system.net.preset(transition):
            continue
        yield Diagnostic(
            "CN003", "error",
            f"transition {transition!r} has an empty preset: it is "
            "permanently enabled and pumps unbounded tokens into "
            f"{sorted(system.net.postset(transition))}",
            (Location("transition", transition),),
            hint="give the transition at least one input place; a safe net "
                 "cannot contain token sources",
        )


# ---------------------------------------------------------------------------
# DP — data-path rules
# ---------------------------------------------------------------------------
@lint_rule("DP000", "data-path well-formedness", severity="error",
           clause="3.3")
def _dp000_well_formed(system: DataControlSystem,
                       ctx: LintContext) -> Iterable[Diagnostic]:
    from ..datapath.validate import datapath_diagnostics

    return datapath_diagnostics(system.datapath)


@lint_rule("DP001", "arc never opened by any control state",
           severity="warning")
def _dp001_never_opened(system: DataControlSystem,
                        ctx: LintContext) -> Iterable[Diagnostic]:
    for arc in sorted(set(system.datapath.arcs) - set(ctx.opening_states)):
        yield Diagnostic(
            "DP001", "warning",
            f"arc {arc!r} is controlled by no state (never opens)",
            (Location("arc", arc),),
            hint="add the arc to some state's C set or delete it",
        )


@lint_rule("DP002", "sequential vertex never driven", severity="warning")
def _dp002_seq_never_driven(system: DataControlSystem,
                            ctx: LintContext) -> Iterable[Diagnostic]:
    for name in sorted(system.datapath.vertices):
        vertex = system.datapath.vertex(name)
        if not vertex.is_sequential or vertex.is_external:
            continue
        if not vertex.in_ports:
            continue
        driven = any(
            arc.name in ctx.opening_states
            for port in vertex.input_ids()
            for arc in system.datapath.arcs_into(port)
        )
        if not driven:
            yield Diagnostic(
                "DP002", "warning",
                f"sequential vertex {name!r} is never driven: no opened arc "
                "targets any of its input ports, so its state can never "
                "change",
                (Location("vertex", name),),
                hint="open an arc into the register from some state or "
                     "replace it with a constant",
            )


def _undriven_combinational_inputs(system: DataControlSystem,
                                   open_arcs: frozenset[str],
                                   port: PortId,
                                   visiting: frozenset[str]) -> list[PortId]:
    """Input ports that keep ``port`` undefined under the given open arcs.

    A value on an output port is combinationally available when its vertex
    is sequential (it holds the last latched value), is an environment
    pad, has no input ports (a constant), or has every input port fed by
    an open arc whose source is itself available.  Cycles are cut by the
    ``visiting`` set (a genuine loop is PD004's business).
    """
    vertex = system.datapath.vertex(port.vertex)
    if vertex.is_sequential or vertex.is_external or not vertex.in_ports:
        return []
    if vertex.name in visiting:
        return []
    visiting = visiting | {vertex.name}
    missing: list[PortId] = []
    for in_port in vertex.input_ids():
        feeding = [arc for arc in system.datapath.arcs_into(in_port)
                   if arc.name in open_arcs]
        if not feeding:
            missing.append(in_port)
            continue
        for arc in feeding:
            missing.extend(_undriven_combinational_inputs(
                system, open_arcs, arc.source, visiting))
    return missing


@lint_rule("DP003", "guard port combinationally undriven where consulted",
           severity="error")
def _dp003_guard_undriven(system: DataControlSystem,
                          ctx: LintContext) -> Iterable[Diagnostic]:
    for transition in sorted(system.guards):
        for place in sorted(p for p in system.net.preset(transition)
                            if system.net.is_place(p)):
            open_arcs = system.control_arcs(place)
            for guard in sorted(system.guard_ports(transition), key=str):
                missing = _undriven_combinational_inputs(
                    system, open_arcs, guard, frozenset())
                if not missing:
                    continue
                missing_names = sorted({str(p) for p in missing})
                yield Diagnostic(
                    "DP003", "error",
                    f"guard {guard} of transition {transition!r} is "
                    f"combinationally undriven in state {place!r}: input "
                    f"port(s) {missing_names} receive no arc opened by "
                    f"C({place})",
                    (Location("transition", transition),
                     Location("place", place),
                     Location("port", str(guard)))
                    + tuple(Location("port", n) for n in missing_names),
                    hint="latch the guard value into a register or open its "
                         "feeding arcs in the state that consults it",
                )


@lint_rule("DP004", "drive conflict on an input port", severity="error")
def _dp004_drive_conflict(system: DataControlSystem,
                          ctx: LintContext) -> Iterable[Diagnostic]:
    by_port: dict[PortId, list[str]] = {}
    for arc in system.datapath.arcs.values():
        if arc.name in ctx.opening_states:
            by_port.setdefault(arc.target, []).append(arc.name)
    for port in sorted(by_port, key=str):
        arcs = sorted(by_port[port])
        if len(arcs) < 2:
            continue
        for a_1, a_2 in combinations(arcs, 2):
            worst: str | None = None
            culprits: list[tuple[str, str]] = []
            for s_1 in sorted(ctx.opening_states[a_1]):
                for s_2 in sorted(ctx.opening_states[a_2]):
                    if s_1 == s_2:
                        grade = "same-state"
                    else:
                        grade = ctx.concurrency_class(s_1, s_2)
                    if grade == "mutex":
                        continue
                    severity = ("error" if grade in ("same-state", "parallel")
                                else "warning")
                    if worst is None or (severity == "error"
                                         and worst == "warning"):
                        worst = severity
                    culprits.append((s_1, s_2))
            if worst is None:
                continue
            shown = culprits[:3]
            pairs = ", ".join(
                f"{s_1!r}" if s_1 == s_2 else f"{s_1!r}+{s_2!r}"
                for s_1, s_2 in shown)
            more = f" (+{len(culprits) - len(shown)} more)" \
                if len(culprits) > len(shown) else ""
            yield Diagnostic(
                "DP004", worst,
                f"input port {port} is driven by arcs {a_1!r} and {a_2!r} "
                f"simultaneously open under state(s) {pairs}{more}",
                (Location("port", str(port)), Location("arc", a_1),
                 Location("arc", a_2))
                + tuple(Location("place", s)
                        for s in sorted({s for pair in shown for s in pair})),
                hint="route the sources through a multiplexer or make the "
                     "driving states mutually exclusive",
            )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
@dataclass
class LintReport:
    """All diagnostics of one lint run over one system."""

    system: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()
    suppressed: int = 0

    @property
    def counts(self) -> dict[str, int]:
        return count_by_severity(self.diagnostics)

    @property
    def worst(self) -> str | None:
        return worst_severity(self.diagnostics)

    def ok(self, fail_on: str = "error") -> bool:
        """True iff no diagnostic at/above the ``fail_on`` severity."""
        if fail_on in ("never", "none"):
            return True
        return not any(severity_at_least(d.severity, fail_on)
                       for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def fingerprints(self) -> frozenset[str]:
        return frozenset(d.fingerprint for d in self.diagnostics)

    def with_baseline(self, fingerprints: Iterable[str]) -> "LintReport":
        """A copy with baselined findings removed (counted as suppressed)."""
        known = frozenset(fingerprints)
        kept = [d for d in self.diagnostics if d.fingerprint not in known]
        return LintReport(self.system, kept, self.rules_run,
                          self.suppressed + len(self.diagnostics) - len(kept))

    def as_dict(self) -> dict[str, Any]:
        return {
            "system": self.system,
            "counts": self.counts,
            "suppressed": self.suppressed,
            "rules_run": list(self.rules_run),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_text(self) -> str:
        counts = self.counts
        lines = [f"lint {self.system}: {counts['error']} error(s), "
                 f"{counts['warning']} warning(s), {counts['info']} info"
                 + (f", {self.suppressed} baselined" if self.suppressed
                    else "")]
        for diagnostic in self.diagnostics:
            lines.append(f"  {diagnostic}")
            if diagnostic.hint:
                lines.append(f"      hint: {diagnostic.hint}")
        return "\n".join(lines)


def run_lint(system: DataControlSystem, *,
             rules: Sequence[str] | None = None) -> LintReport:
    """Run (a subset of) the registered rules over one system.

    Purely structural: no reachable-marking enumeration happens, however
    large the design.  Diagnostics come back most severe first.
    """
    selected = ([get_rule(rule_id) for rule_id in rules]
                if rules is not None else all_rules())
    ctx = LintContext(system)
    diagnostics: list[Diagnostic] = []
    for rule in selected:
        for diagnostic in rule.check(system, ctx):
            diagnostics.append(replace(diagnostic, system=system.name))
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(system.name, diagnostics,
                      tuple(rule.id for rule in selected))


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------
def baseline_document(reports: Iterable[LintReport]) -> dict[str, Any]:
    """The JSON document ``repro lint --write-baseline`` emits."""
    fingerprints = sorted({fp for report in reports
                           for fp in report.fingerprints()})
    return {"format": BASELINE_FORMAT, "fingerprints": fingerprints}


def load_baseline(path: str) -> frozenset[str]:
    """Read a baseline: fingerprints to suppress.

    Accepts the native baseline document, a bare JSON list of
    fingerprints, or a ``repro lint --format json`` report (whose recorded
    diagnostics become the baseline).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, list):
        return frozenset(str(fp) for fp in document)
    if "fingerprints" in document:
        return frozenset(str(fp) for fp in document["fingerprints"])
    reports = document.get("reports")
    if reports is not None:
        return frozenset(
            str(d["fingerprint"])
            for report in reports for d in report.get("diagnostics", ()))
    raise DefinitionError(f"unrecognised baseline file {path!r}")


# ---------------------------------------------------------------------------
# transformation-pipeline hook
# ---------------------------------------------------------------------------
def error_fingerprints(system: DataControlSystem, *,
                       rules: Sequence[str] | None = None) -> frozenset[str]:
    """Fingerprints of the error-level findings of one system."""
    return frozenset(d.fingerprint
                     for d in run_lint(system, rules=rules).diagnostics
                     if d.severity == "error")


def lint_regressions(before: DataControlSystem | frozenset[str],
                     after: DataControlSystem, *,
                     rules: Sequence[str] | None = None) -> list[Diagnostic]:
    """Error-level findings of ``after`` that ``before`` did not have.

    ``before`` may be a system or a precomputed fingerprint set (from
    :func:`error_fingerprints`) so pipelines probing many candidate moves
    lint the starting point once.  Renaming an offending element changes
    its fingerprint, so a transformation that merely renames a flawed
    state re-reports the finding — conservative, never unsound.
    """
    known = (before if isinstance(before, frozenset)
             else error_fingerprints(before, rules=rules))
    return [d for d in run_lint(after, rules=rules).diagnostics
            if d.severity == "error" and d.fingerprint not in known]


def assert_lint_preserved(before: DataControlSystem | frozenset[str],
                          after: DataControlSystem, *,
                          rules: Sequence[str] | None = None) -> None:
    """Raise :class:`~repro.errors.TransformError` on a lint regression."""
    regressions = lint_regressions(before, after, rules=rules)
    if regressions:
        details = "; ".join(str(d) for d in regressions[:5])
        raise TransformError(
            f"transformation introduced {len(regressions)} lint error(s): "
            + details)
