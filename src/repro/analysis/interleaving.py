"""CCS-style interleaving composition — the paper's Section 1 comparison.

"CCS … models the occurrence of potentially concurrent events as a
shuffle (interleaving) of those events; i.e., the events can occur in
either order.  As such, it has the composition explosion problem.  That
is when several agents are composed together, the possible number of
behaviors are of the exponential order of the number of agents."

This module makes that argument quantitative.  An :class:`Agent` is a
small labelled transition system; :func:`shuffle_product` composes N
agents by interleaving (no synchronisation — the worst case the paper
gestures at) and enumerates the reachable product states.  For N
independent agents with ``k`` states each, that is ``k^N`` states and the
number of distinct interleaved *behaviours* grows multinomially —
:func:`interleaving_count` computes it exactly with big integers.

The contrast object is :func:`petri_representation`: the same N agents as
one Petri net — ``Σ k_i`` places, ``Σ t_i`` transitions — where the
parallelism is represented, not expanded.  The composition-explosion
benchmark (experiment E1) sweeps N and prints both curves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import factorial
from typing import Sequence

from ..errors import DefinitionError
from ..petri.net import PetriNet


@dataclass(frozen=True)
class Agent:
    """A labelled transition system (one CCS agent, modulo value passing).

    ``transitions`` maps a state to ``(label, next_state)`` pairs.
    """

    name: str
    states: tuple[str, ...]
    transitions: tuple[tuple[str, str, str], ...]  # (src, label, dst)
    initial: str

    def __post_init__(self) -> None:
        state_set = set(self.states)
        if self.initial not in state_set:
            raise DefinitionError(
                f"agent {self.name!r}: initial state {self.initial!r} unknown"
            )
        for src, _label, dst in self.transitions:
            if src not in state_set or dst not in state_set:
                raise DefinitionError(
                    f"agent {self.name!r}: transition {src!r} -> {dst!r} "
                    "references unknown states"
                )

    def successors(self, state: str) -> list[tuple[str, str]]:
        return [(label, dst) for src, label, dst in self.transitions
                if src == state]


def cycle_agent(name: str, size: int) -> Agent:
    """A ``size``-state cyclic agent ``q0 -a0-> q1 -a1-> … -> q0``."""
    if size < 1:
        raise DefinitionError("agent needs at least one state")
    states = tuple(f"{name}_q{i}" for i in range(size))
    transitions = tuple(
        (states[i], f"{name}_a{i}", states[(i + 1) % size])
        for i in range(size)
    )
    return Agent(name, states, transitions, states[0])


def sequence_agent(name: str, labels: Sequence[str]) -> Agent:
    """A terminating agent performing the given label sequence once."""
    states = tuple(f"{name}_q{i}" for i in range(len(labels) + 1))
    transitions = tuple(
        (states[i], labels[i], states[i + 1]) for i in range(len(labels))
    )
    return Agent(name, states, transitions, states[0])


@dataclass
class ProductResult:
    """Reachable shuffle product of a set of agents."""

    num_states: int
    num_transitions: int
    complete: bool
    agents: int


def shuffle_product(agents: Sequence[Agent], *,
                    max_states: int = 2_000_000) -> ProductResult:
    """BFS enumeration of the interleaved product automaton.

    No synchronisation between agents: every agent may move
    independently, and the product state space is (reachably) the product
    of the component state spaces — the composition explosion made
    concrete.  Stops early (``complete=False``) at ``max_states``.
    """
    initial = tuple(agent.initial for agent in agents)
    seen = {initial}
    queue: deque[tuple[str, ...]] = deque([initial])
    num_transitions = 0
    complete = True
    while queue:
        state = queue.popleft()
        for index, agent in enumerate(agents):
            for _label, nxt in agent.successors(state[index]):
                num_transitions += 1
                successor = state[:index] + (nxt,) + state[index + 1:]
                if successor not in seen:
                    if len(seen) >= max_states:
                        complete = False
                        continue
                    seen.add(successor)
                    queue.append(successor)
    return ProductResult(len(seen), num_transitions, complete, len(agents))


def interleaving_count(event_counts: Sequence[int]) -> int:
    """Exact number of interleavings of N independent event sequences.

    ``(Σ nᵢ)! / Π nᵢ!`` — the number of distinct total orders (behaviours)
    a shuffle model must distinguish for sequences of the given lengths.
    """
    total = factorial(sum(event_counts))
    for count in event_counts:
        total //= factorial(count)
    return total


def petri_representation(agents: Sequence[Agent]) -> PetriNet:
    """The same agents as one Petri net: linear, not exponential, size.

    Each agent state becomes a place (its initial state marked), each
    agent transition a net transition.  ``|S| = Σ states``,
    ``|T| = Σ transitions`` — the partial-order representation the paper
    advocates.
    """
    net = PetriNet(name="agents")
    for agent in agents:
        for state in agent.states:
            net.add_place(state, marked=(state == agent.initial))
        for i, (src, label, dst) in enumerate(agent.transitions):
            tname = f"{label}_{i}" if label in net.transitions else label
            if tname in net.transitions or tname in net.places:
                tname = f"{agent.name}_t{i}"
            net.add_transition(tname)
            net.add_arc(src, tname)
            net.add_arc(tname, dst)
    return net


def composition_growth(max_agents: int, agent_size: int = 3, *,
                       max_states: int = 2_000_000
                       ) -> list[dict[str, object]]:
    """The E1 sweep: rows of product-vs-Petri sizes for N = 1..max_agents."""
    rows: list[dict[str, object]] = []
    for n in range(1, max_agents + 1):
        agents = [cycle_agent(f"A{i}", agent_size) for i in range(n)]
        product = shuffle_product(agents, max_states=max_states)
        net = petri_representation(agents)
        rows.append({
            "agents": n,
            "product_states": product.num_states,
            "product_complete": product.complete,
            "petri_places": len(net.places),
            "petri_transitions": len(net.transitions),
            "behaviours": interleaving_count([agent_size] * n),
        })
    return rows
