"""SARIF 2.1.0 serialization of lint reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS standard
CI systems ingest for code-scanning annotations.  We map each
:class:`~repro.diagnostics.Diagnostic` to a SARIF ``result``:

* ``ruleId`` — the stable lint rule id (``PD001``, …), with the full rule
  metadata (title, Definition 3.2 clause, default severity) recorded once
  under ``tool.driver.rules``;
* ``level`` — ``error``/``warning`` pass through, ``info`` becomes SARIF's
  ``note``;
* ``logicalLocations`` — diagnostics anchor to model elements (places,
  transitions, vertices, arcs, ports), not files, so they serialize as
  logical locations with ``kind`` and ``fullyQualifiedName``
  ``<system>/<kind>:<name>``;
* ``partialFingerprints`` — the diagnostic's stable fingerprint, letting
  SARIF viewers track a finding across runs exactly like our baseline
  files do.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Our severities → SARIF result levels.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

#: Diagnostic location kinds → SARIF logicalLocation kinds (the standard
#: has no Petri-net vocabulary; ``member``/``module`` are the closest
#: well-known kinds and custom strings are permitted).
_LOCATION_KINDS = {
    "place": "place",
    "transition": "transition",
    "vertex": "vertex",
    "arc": "arc",
    "port": "port",
    "marking": "marking",
}


def _rule_descriptor(rule: Any) -> dict[str, Any]:
    description = rule.title
    if rule.clause != "—":
        description += f" (Definition {rule.clause})"
    return {
        "id": rule.id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        "properties": {"clause": rule.clause, "structural": rule.structural},
    }


def _result(diagnostic: Any) -> dict[str, Any]:
    prefix = f"{diagnostic.system}/" if diagnostic.system else ""
    locations = [{
        "logicalLocations": [{
            "kind": _LOCATION_KINDS.get(loc.kind, loc.kind),
            "name": loc.name,
            "fullyQualifiedName": f"{prefix}{loc.kind}:{loc.name}",
        }]
    } for loc in diagnostic.locations]
    message = diagnostic.message
    if diagnostic.hint:
        message += f" — hint: {diagnostic.hint}"
    result: dict[str, Any] = {
        "ruleId": diagnostic.rule,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
        "partialFingerprints": {
            "reproDiagnostic/v1": diagnostic.fingerprint,
        },
        "properties": {"system": diagnostic.system},
    }
    if locations:
        result["locations"] = locations
    return result


def sarif_log(reports: Iterable["LintReport"], *,
              tool_version: str | None = None) -> dict[str, Any]:
    """Build one SARIF log document covering one run over many systems."""
    from .. import __version__
    from .lint import all_rules

    report_list = list(reports)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "https://example.invalid/repro",
                    "version": tool_version or __version__,
                    "rules": [_rule_descriptor(r) for r in all_rules()],
                }
            },
            "results": [_result(d) for report in report_list
                        for d in report.diagnostics],
            "properties": {
                "systems": [report.system for report in report_list],
                "suppressed": sum(r.suppressed for r in report_list),
            },
        }],
    }


def sarif_dumps(reports: Iterable["LintReport"], *, indent: int = 2) -> str:
    """The SARIF log as a JSON string."""
    return json.dumps(sarif_log(reports), indent=indent, sort_keys=False)


def sarif_diagnostics_log(diagnostics: Iterable[Any], rules: Iterable[Any],
                          *, tool_name: str = "repro-equiv",
                          systems: Iterable[str] = (),
                          tool_version: str | None = None) -> dict[str, Any]:
    """A SARIF log for free-standing diagnostics (not a lint run).

    Used by the symbolic engine's equivalence/safety checkers, whose
    findings carry firing-sequence counterexamples rather than lint rule
    hits.  ``rules`` supplies the descriptors (anything shaped like a
    lint rule: ``id``/``title``/``clause``/``severity``/``structural``).
    """
    from .. import __version__

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri": "https://example.invalid/repro",
                    "version": tool_version or __version__,
                    "rules": [_rule_descriptor(r) for r in rules],
                }
            },
            "results": [_result(d) for d in diagnostics],
            "properties": {"systems": list(systems)},
        }],
    }
