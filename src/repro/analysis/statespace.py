"""State-space statistics for data/control flow systems.

Quantifies the representational advantage of the model: the control net
is linear in the program size, while its interleaved state space
(markings) can be exponential in the concurrency width — which the model
never needs to expand for execution or for the equivalence checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.system import DataControlSystem
from ..petri.reachability import explore


@dataclass
class StateSpaceStats:
    """Size figures for one system."""

    places: int
    transitions: int
    flow_arcs: int
    datapath_vertices: int
    datapath_arcs: int
    markings: int
    marking_edges: int
    complete: bool
    max_concurrency: int  # widest marking: tokens held simultaneously

    def summary(self) -> str:
        return (
            f"net {self.places}P/{self.transitions}T/{self.flow_arcs}F, "
            f"datapath {self.datapath_vertices}V/{self.datapath_arcs}A, "
            f"{self.markings} reachable markings "
            f"({'complete' if self.complete else 'truncated'}), "
            f"max concurrency {self.max_concurrency}"
        )


def state_space_stats(system: DataControlSystem, *,
                      max_markings: int = 100_000) -> StateSpaceStats:
    """Explore the unguarded marking graph and collect size statistics.

    The unguarded exploration over-approximates the guarded behaviour
    (guards only remove firings), so the marking count is an upper bound
    on the states any execution can visit.
    """
    graph = explore(system.net, max_markings=max_markings)
    widest = max((m.total_tokens for m in graph.markings), default=0)
    return StateSpaceStats(
        places=len(system.net.places),
        transitions=len(system.net.transitions),
        flow_arcs=system.net.num_arcs,
        datapath_vertices=system.datapath.num_vertices,
        datapath_arcs=system.datapath.num_arcs,
        markings=graph.num_markings,
        marking_edges=len(graph.edges),
        complete=graph.complete,
        max_concurrency=widest,
    )
