"""Analysis tooling: the structural lint engine and comparison baselines.

* :mod:`~repro.analysis.lint` — rule-registry design-rule checker over
  :class:`~repro.core.system.DataControlSystem` (structural, zero
  reachability enumeration) producing :class:`~repro.diagnostics.Diagnostic`
  findings;
* :mod:`~repro.analysis.sarif` — SARIF 2.1.0 serialization of lint runs;
* :mod:`~repro.analysis.symbolic` — static reachability/equivalence
  engine (vectorised frontier bitsets, stubborn-set partial-order
  reduction, McMillan complete finite prefixes) that never executes the
  interpreter;
* :mod:`~repro.analysis.interleaving` — CCS-style shuffle composition and
  the composition-explosion measurement (Section 1 comparison);
* :mod:`~repro.analysis.regex_baseline` — McFarland-style total-order
  event model and the over-constraint measurement;
* :mod:`~repro.analysis.statespace` — marking-graph statistics.
"""

from .interleaving import (
    Agent,
    ProductResult,
    composition_growth,
    cycle_agent,
    interleaving_count,
    petri_representation,
    sequence_agent,
    shuffle_product,
)
from .regex_baseline import (
    chains_linearisations,
    count_linear_extensions,
    order_relation,
    overconstraint_report,
)
from .lint import (
    LintContext,
    LintReport,
    LintRule,
    all_rules,
    assert_lint_preserved,
    baseline_document,
    error_fingerprints,
    get_rule,
    lint_regressions,
    lint_rule,
    load_baseline,
    run_lint,
)
from .sarif import sarif_dumps, sarif_log
from .statespace import StateSpaceStats, state_space_stats
from .symbolic import (
    CompiledNet,
    Prefix,
    SymbolicAnalyzer,
    SymbolicGraph,
    TruncationWarning,
    complete_prefix,
    equivalence_diagnostics,
    frontier_explore,
    por_explore,
    stubborn_set,
    symbolic_semantically_equivalent,
)

__all__ = [
    "LintRule",
    "LintContext",
    "LintReport",
    "lint_rule",
    "all_rules",
    "get_rule",
    "run_lint",
    "baseline_document",
    "load_baseline",
    "error_fingerprints",
    "lint_regressions",
    "assert_lint_preserved",
    "sarif_log",
    "sarif_dumps",
    "Agent",
    "cycle_agent",
    "sequence_agent",
    "shuffle_product",
    "ProductResult",
    "interleaving_count",
    "petri_representation",
    "composition_growth",
    "count_linear_extensions",
    "chains_linearisations",
    "order_relation",
    "overconstraint_report",
    "StateSpaceStats",
    "state_space_stats",
    "CompiledNet",
    "SymbolicGraph",
    "SymbolicAnalyzer",
    "Prefix",
    "TruncationWarning",
    "frontier_explore",
    "por_explore",
    "stubborn_set",
    "complete_prefix",
    "symbolic_semantically_equivalent",
    "equivalence_diagnostics",
]
