"""Analysis tooling and the paper's comparison baselines.

* :mod:`~repro.analysis.interleaving` — CCS-style shuffle composition and
  the composition-explosion measurement (Section 1 comparison);
* :mod:`~repro.analysis.regex_baseline` — McFarland-style total-order
  event model and the over-constraint measurement;
* :mod:`~repro.analysis.statespace` — marking-graph statistics.
"""

from .interleaving import (
    Agent,
    ProductResult,
    composition_growth,
    cycle_agent,
    interleaving_count,
    petri_representation,
    sequence_agent,
    shuffle_product,
)
from .regex_baseline import (
    chains_linearisations,
    count_linear_extensions,
    order_relation,
    overconstraint_report,
)
from .statespace import StateSpaceStats, state_space_stats

__all__ = [
    "Agent",
    "cycle_agent",
    "sequence_agent",
    "shuffle_product",
    "ProductResult",
    "interleaving_count",
    "petri_representation",
    "composition_growth",
    "count_linear_extensions",
    "chains_linearisations",
    "order_relation",
    "overconstraint_report",
    "StateSpaceStats",
    "state_space_stats",
]
