"""Total-order (regular-expression) event model — the McFarland baseline.

The paper contrasts its partially ordered event structures with
McFarland's approach, which "uses regular expression to formulate the
event structures.  Consequently it is difficult to deal with concurrent
event structures" — a regular language of event sequences must commit to
*linearisations* of every concurrent or casual pair.

This module quantifies the over-constraint: given an
:class:`~repro.core.events.EventStructure`, it counts

* the **casual pairs** the partial order leaves open
  (:meth:`EventStructure.casual_pairs`), each of which a total-order
  model must arbitrarily fix; and
* the number of **linear extensions** of the partial order — the number
  of distinct sequences a regular expression would need to enumerate to
  capture the same behaviour without over-constraining it.

Linear-extension counting is #P-complete in general; the implementation
is exact dynamic programming over downward-closed sets (fine for the
event-structure sizes the benchmarks use) with a closed-form shortcut
for the common independent-chains shape.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial
from typing import Sequence

from ..core.events import EventKey, EventStructure


def order_relation(structure: EventStructure) -> dict[EventKey, frozenset[EventKey]]:
    """The strict partial order a linearisation must respect.

    Precedence pairs are ordered; concurrent pairs are *simultaneous* —
    a sequential (regex) model must still pick an order for them, so they
    are treated like casual pairs here (unordered), which is exactly the
    over-approximation that inflates the count.
    """
    order: dict[EventKey, set[EventKey]] = {e.key: set() for e in structure.events}
    for before, after in structure.precedence:
        order[after].add(before)
    return {k: frozenset(v) for k, v in order.items()}


def count_linear_extensions(structure: EventStructure, *,
                            limit: int = 10_000_000) -> int:
    """Exact number of linear extensions of the event partial order.

    DP over subsets: ``ext(S) = Σ ext(S ∖ {m})`` over maximal elements
    ``m`` of the downward-closed set ``S``.  Raises ``ValueError`` when
    the structure has more than 24 events (the DP would not fit) or the
    count exceeds ``limit`` — the benchmark uses the closed form
    :func:`chains_linearisations` beyond that.
    """
    keys = sorted({event.key for event in structure.events})
    if len(keys) > 24:
        raise ValueError("too many events for exact subset DP")
    index = {key: i for i, key in enumerate(keys)}
    preds = order_relation(structure)
    pred_masks = [0] * len(keys)
    for key, earlier in preds.items():
        mask = 0
        for p in earlier:
            mask |= 1 << index[p]
        pred_masks[index[key]] = mask
    full = (1 << len(keys)) - 1

    @lru_cache(maxsize=None)
    def ext(remaining: int) -> int:
        if remaining == 0:
            return 1
        done = full & ~remaining
        total = 0
        bits = remaining
        while bits:
            low = bits & -bits
            bits ^= low
            i = low.bit_length() - 1
            # i is eligible last... choose next event whose preds are done
            if pred_masks[i] & ~done:
                continue
            total += ext(remaining ^ low)
            if total > limit:
                raise ValueError("linear extension count exceeds limit")
        return total

    return ext(full)


def chains_linearisations(chain_lengths: Sequence[int]) -> int:
    """Closed form for N independent chains: the multinomial coefficient."""
    total = factorial(sum(chain_lengths))
    for length in chain_lengths:
        total //= factorial(length)
    return total


def overconstraint_report(structure: EventStructure) -> dict[str, object]:
    """How much freedom a total-order model destroys for this structure."""
    casual = structure.casual_pairs()
    try:
        extensions = count_linear_extensions(structure)
    except ValueError:
        extensions = -1  # too large to enumerate — the point stands
    return {
        "events": len(structure),
        "precedence_pairs": len(structure.precedence),
        "concurrent_pairs": len(structure.concurrency),
        "casual_pairs": len(casual),
        "linear_extensions": extensions,
    }
