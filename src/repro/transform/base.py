"""Transformation framework.

A :class:`Transformation` is a named rewrite of a
:class:`~repro.core.system.DataControlSystem` that **preserves semantics**
(Section 4 of the paper).  Transformations are pure: :meth:`apply` returns
a *new* system, leaving the input untouched, so the synthesis optimizer
can explore candidate moves and discard the ones that do not pay off.

Every transformation carries its proof obligation in code:

* :meth:`is_legal` checks the paper's side conditions (cheap, static);
* :meth:`apply` performs the rewrite and then, unless ``verify=False``,
  re-establishes the relevant equivalence relation between input and
  output — Definition 4.5 for control transformations, Definition 4.6 for
  data-path transformations — raising
  :class:`~repro.errors.TransformError` if the rewrite turned out not to
  preserve it.  This defence-in-depth mirrors the paper's structure:
  theorems guarantee the transformations are sound, and the checkers are
  the executable form of those theorems.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..core.system import DataControlSystem
from ..errors import TransformError


@dataclass
class Legality:
    """Result of a legality pre-check."""

    legal: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.legal


class Transformation(abc.ABC):
    """Base class for all semantics-preserving rewrites."""

    #: which equivalence the transformation preserves:
    #: ``"data-invariant"`` (Definition 4.5), ``"control-invariant"``
    #: (Definition 4.6) or ``"behavioural"`` (extended transformations,
    #: verified by simulation only).
    preserves: str = "data-invariant"

    @abc.abstractmethod
    def is_legal(self, system: DataControlSystem) -> Legality:
        """Check side conditions without modifying anything."""

    @abc.abstractmethod
    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        """Perform the rewrite on a fresh copy (no legality re-check)."""

    def _verify(self, before: DataControlSystem,
                after: DataControlSystem) -> None:
        """Re-establish the preserved equivalence; raise on failure.

        Subclasses override to call the appropriate checker.  The default
        does nothing (for transformations whose legality check is already
        a complete proof).
        """

    def apply(self, system: DataControlSystem, *,
              verify: bool = True) -> DataControlSystem:
        """Check legality, rewrite, and (by default) verify equivalence."""
        legality = self.is_legal(system)
        if not legality:
            raise TransformError(f"{self.describe()}: {legality.reason}")
        # _rewrite builds on DataControlSystem.copy(), whose caches start
        # empty; rewrites that provably keep the control net intact (e.g.
        # the vertex merger) re-seed them explicitly.
        result = self._rewrite(system)
        if verify:
            self._verify(system, result)
        return result

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``parallelize(s3, s4)``."""
        return type(self).__name__

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


@dataclass
class AppliedTransform:
    """One entry of a transformation log."""

    description: str
    preserves: str
    legal: bool
    reason: str = ""


@dataclass
class TransformLog:
    """Record of a transformation sequence — the synthesis audit trail."""

    entries: list[AppliedTransform] = field(default_factory=list)

    def record(self, transform: Transformation, *, legal: bool = True,
               reason: str = "") -> None:
        self.entries.append(AppliedTransform(
            transform.describe(), transform.preserves, legal, reason,
        ))

    @property
    def applied(self) -> int:
        return sum(1 for e in self.entries if e.legal)

    @property
    def rejected(self) -> int:
        return sum(1 for e in self.entries if not e.legal)

    def summary(self) -> str:
        lines = [f"{len(self.entries)} transformation attempt(s): "
                 f"{self.applied} applied, {self.rejected} rejected"]
        for entry in self.entries:
            mark = "+" if entry.legal else "-"
            note = f" ({entry.reason})" if entry.reason else ""
            lines.append(f" {mark} [{entry.preserves}] {entry.description}{note}")
        return "\n".join(lines)


def apply_sequence(system: DataControlSystem,
                   transforms: list[Transformation], *,
                   verify: bool = True,
                   skip_illegal: bool = False,
                   log: TransformLog | None = None) -> DataControlSystem:
    """Apply a sequence of transformations left to right.

    With ``skip_illegal=True``, transformations whose side conditions fail
    are recorded in the log and skipped instead of raising — the mode the
    greedy optimizer uses when probing candidate moves.
    """
    current = system
    for transform in transforms:
        legality = transform.is_legal(current)
        if not legality:
            if log is not None:
                log.record(transform, legal=False, reason=legality.reason)
            if skip_illegal:
                continue
            raise TransformError(f"{transform.describe()}: {legality.reason}")
        current = transform.apply(current, verify=verify)
        if log is not None:
            log.record(transform)
    return current
