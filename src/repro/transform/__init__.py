"""Semantics-preserving transformations (Section 4 and Section 5).

* data-invariant control rewrites —
  :class:`~repro.transform.control.ParallelizeStates`,
  :class:`~repro.transform.control.SerializeStates`,
  :class:`~repro.transform.control.RestructureBlock`;
* control-invariant data-path rewrites —
  :class:`~repro.transform.datapath_tf.VertexMerger`,
  :class:`~repro.transform.datapath_tf.VertexSplitter`;
* the framework — :class:`~repro.transform.base.Transformation`,
  :func:`~repro.transform.base.apply_sequence`,
  :class:`~repro.transform.base.TransformLog`;
* behavioural verification — :mod:`~repro.transform.verify`.
"""

from .base import (
    AppliedTransform,
    Legality,
    Transformation,
    TransformLog,
    apply_sequence,
)
from .control import ParallelizeStates, RestructureBlock, SerializeStates
from .datapath_tf import VertexMerger, VertexSplitter
from .extended import (
    EliminateDeadVertices,
    MergeStates,
    SplitState,
    removed_area,
)
from .register_sharing import (
    RegisterMerger,
    RegisterSharingReport,
    live_places,
    registers_interfere,
    share_registers,
)
from .verify import (
    BehaviouralReport,
    assert_behaviourally_equivalent,
    behaviourally_equivalent,
)

__all__ = [
    "Transformation",
    "Legality",
    "TransformLog",
    "AppliedTransform",
    "apply_sequence",
    "ParallelizeStates",
    "SerializeStates",
    "RestructureBlock",
    "VertexMerger",
    "VertexSplitter",
    "MergeStates",
    "SplitState",
    "EliminateDeadVertices",
    "removed_area",
    "RegisterMerger",
    "RegisterSharingReport",
    "share_registers",
    "registers_interfere",
    "live_places",
    "BehaviouralReport",
    "behaviourally_equivalent",
    "assert_behaviourally_equivalent",
]
