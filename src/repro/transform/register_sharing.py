"""Register sharing — an extended transformation with lifetime analysis.

Definition 4.6 deliberately cannot merge *state-holding* vertices: two
registers carry two live values, and "same operational definition +
sequentially ordered uses" says nothing about whether those values'
lifetimes overlap.  Classic high-level synthesis shares registers anyway,
justified by **liveness analysis**: two registers may share storage iff
no point of the control exists where both hold a value that will still be
read.

This module implements that analysis on the control net and the
resulting :class:`RegisterMerger` transformation
(``preserves="behavioural"`` — an extension, verified by the test
battery, not by a theorem from the paper):

* a register is **defined** at the states opening an arc into its data
  port, and **used** at the states opening an arc from its output (plus
  the decision states of any transition whose guard traces back to it);
* liveness is the standard backward may-analysis over the place-level
  successor graph (fixpoint; loops handled naturally);
* two registers **interfere** iff some place has both live on entry, or
  two *coexistent* places (simultaneously markable — fork branches) have
  one live each;
* additionally, a register live at an initially marked place carries its
  reset value, so merging requires equal initial values in that case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dependence import sequential_sources
from ..core.system import DataControlSystem
from ..datapath.operations import OpKind
from ..datapath.ports import PortId
from ..values import UNDEF
from .base import Legality, Transformation


def _plain_registers(system: DataControlSystem) -> list[str]:
    """Vertices that are plain ``reg`` units (single d/q, no next-state fn)."""
    names = []
    for vertex in system.datapath.vertices.values():
        if vertex.is_external:
            continue
        ops = [vertex.operation(p) for p in vertex.out_ports]
        if len(ops) == 1 and ops[0].name == "reg" and ops[0].kind is OpKind.SEQ:
            names.append(vertex.name)
    return sorted(names)


def def_states(system: DataControlSystem, register: str) -> frozenset[str]:
    """States that (may) latch a new value into the register."""
    dp = system.datapath
    vertex = dp.vertex(register)
    states: set[str] = set()
    for in_port in vertex.input_ids():
        for arc in dp.arcs_into(in_port):
            states.update(system.controlling_states(arc.name))
    return frozenset(states)


def use_states(system: DataControlSystem, register: str) -> frozenset[str]:
    """States whose activity reads the register's current value.

    Arcs from the register's output port read it directly; a transition
    guarded by a port combinationally derived from the register reads it
    while the transition's input places are marked.
    """
    dp = system.datapath
    vertex = dp.vertex(register)
    states: set[str] = set()
    for out_port in vertex.output_ids():
        for arc in dp.arcs_from(out_port):
            states.update(system.controlling_states(arc.name))
    for transition, ports in system.guards.items():
        for port in ports:
            if port.vertex == register or \
                    register in sequential_sources(system, port):
                states.update(system.net.preset(transition))
                break
    return frozenset(states)


def live_places(system: DataControlSystem, register: str) -> frozenset[str]:
    """Places where the register is live on entry (backward may-liveness).

    ``live_in(p) = use(p) ∨ (¬def(p) ∧ ∨_{q ∈ succ(p)} live_in(q))`` —
    within one state, reads observe the *old* value (latches commit at
    departure), so a state that both uses and defines keeps the register
    live on entry.
    """
    net = system.net
    uses = use_states(system, register)
    defs = def_states(system, register)
    successors: dict[str, set[str]] = {p: set() for p in net.places}
    for t in net.transitions:
        for p in net.preset(t):
            successors[p].update(net.postset(t))
    live: set[str] = set(uses)
    changed = True
    while changed:
        changed = False
        for place in net.places:
            if place in live or place in defs:
                continue
            if successors[place] & live:
                live.add(place)
                changed = True
    return frozenset(live)


@dataclass
class InterferenceReport:
    """Why two registers may or may not share storage."""

    interferes: bool
    reason: str = ""


def registers_interfere(system: DataControlSystem, r_1: str, r_2: str
                        ) -> InterferenceReport:
    """Do the two registers' value lifetimes ever overlap?

    Five conditions, any of which blocks sharing:

    1. both live on entry to some place (two values needed at once);
    2. a write to one kills the other's still-needed value — the classic
       "defined where the other is live(-out)" interference;
    3. the concurrent variant of 2: a write in a place coexistent with a
       place where the other is live;
    4. writes race: both written in the same or coexistent places (even
       dead values must not double-latch one storage in a single step);
    5. both reset values observable (live at the initial marking) but
       different.
    """
    net = system.net
    live_1 = live_places(system, r_1)
    live_2 = live_places(system, r_2)
    both = live_1 & live_2
    if both:
        return InterferenceReport(
            True, f"both live on entry to {sorted(both)[:3]}")
    pairs, complete = system.coexistence()
    if not complete:
        return InterferenceReport(True, "reachability budget exhausted — "
                                        "assuming interference")
    for pair in pairs:
        members = sorted(pair)
        p = members[0]
        q = members[-1]
        if (p in live_1 and q in live_2) or (p in live_2 and q in live_1):
            return InterferenceReport(
                True, f"live in coexistent places {p!r} / {q!r}")

    successors: dict[str, set[str]] = {p: set() for p in net.places}
    for t in net.transitions:
        for p in net.preset(t):
            successors[p].update(net.postset(t))

    def live_out(live: frozenset[str], place: str) -> bool:
        return bool(successors.get(place, set()) & live)

    defs_1 = def_states(system, r_1)
    defs_2 = def_states(system, r_2)
    for defs, live, victim in ((defs_1, live_2, r_2), (defs_2, live_1, r_1)):
        for place in defs:
            if live_out(live, place):
                return InterferenceReport(
                    True, f"write at {place!r} would destroy the live "
                          f"value of {victim!r}")
            for pair in pairs:
                if place in pair:
                    other = next(iter(pair - {place}), place)
                    if other in live:
                        return InterferenceReport(
                            True, f"write at {place!r} coexists with "
                                  f"{other!r} where {victim!r} is live")
    if defs_1 & defs_2:
        return InterferenceReport(
            True, f"written in the same state {sorted(defs_1 & defs_2)[:2]}")
    for p in defs_1:
        for q in defs_2:
            if frozenset((p, q)) in pairs:
                return InterferenceReport(
                    True, f"written in coexistent states {p!r} / {q!r}")
    # initial values: a register live at an initially marked place
    # carries its reset value into the merged storage
    initial_places = {p for p, n in system.net.initial.items() if n > 0}
    init_live_1 = bool(live_1 & initial_places)
    init_live_2 = bool(live_2 & initial_places)
    if init_live_1 and init_live_2:
        dp = system.datapath
        v_1, v_2 = dp.vertex(r_1), dp.vertex(r_2)
        i_1 = v_1.initial_value(v_1.out_ports[0])
        i_2 = v_2.initial_value(v_2.out_ports[0])
        if i_1 is UNDEF or i_2 is UNDEF or i_1 != i_2:
            return InterferenceReport(
                True, "both reset values are observable and differ")
    return InterferenceReport(False)


@dataclass
class RegisterMerger(Transformation):
    """Merge register ``r_1`` into ``r_2`` when their lifetimes never
    overlap.

    The rewrite is structurally identical to the Definition 4.6 vertex
    merger (arc names preserved, ``C`` untouched, guards remapped); only
    the *legality* differs — lifetime disjointness replaces operation
    interchangeability.
    """

    r_1: str
    r_2: str

    preserves = "behavioural"

    def describe(self) -> str:
        return f"share_register({self.r_1} -> {self.r_2})"

    def is_legal(self, system: DataControlSystem) -> Legality:
        registers = _plain_registers(system)
        if self.r_1 == self.r_2:
            return Legality(False, "cannot merge a register with itself")
        for name in (self.r_1, self.r_2):
            if name not in registers:
                return Legality(False,
                                f"{name!r} is not a plain register")
        report = registers_interfere(system, self.r_1, self.r_2)
        if report.interferes:
            return Legality(False, f"lifetimes interfere: {report.reason}")
        # the merged register keeps r_2's reset value; if r_1's reset
        # value is the observable one, carry it over instead -> handled
        # in _rewrite by choosing the live one; require not both (checked
        # by registers_interfere already).
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        result._relations = system._relations
        result._coexistence = system._coexistence
        dp = result.datapath

        # pick the surviving reset value: the one whose register is live
        # at the initial marking (at most one is, per legality)
        initial_places = {p for p, n in result.net.initial.items() if n > 0}
        v_1 = dp.vertex(self.r_1)
        keep_init_from_1 = bool(live_places(result, self.r_1)
                                & initial_places)
        if keep_init_from_1:
            v_2 = dp.vertex(self.r_2)
            dp.vertices[self.r_2] = type(v_2)(
                v_2.name, v_2.in_ports, v_2.out_ports, dict(v_2.ops),
                {v_2.out_ports[0]: v_1.initial_value(v_1.out_ports[0])},
            )

        def remap(port: PortId) -> PortId:
            if port.vertex == self.r_1:
                return PortId(self.r_2, port.port)
            return port

        for arc in list(dp.arcs.values()):
            if arc.source.vertex == self.r_1 or arc.target.vertex == self.r_1:
                dp.remove_arc(arc.name)
                dp.connect(remap(arc.source), remap(arc.target), name=arc.name)
        for transition, ports in list(result.guards.items()):
            result.guards[transition] = {remap(p) for p in ports}
        dp.remove_vertex(self.r_1)
        return result


@dataclass
class RegisterSharingReport:
    """Outcome of the greedy register-sharing pass."""

    merges: list[tuple[str, str]] = field(default_factory=list)
    registers_before: int = 0
    registers_after: int = 0

    def summary(self) -> str:
        return (f"shared {len(self.merges)} register(s): "
                f"{self.registers_before} -> {self.registers_after}")


def share_registers(system: DataControlSystem, *, verify: bool = True
                    ) -> tuple[DataControlSystem, RegisterSharingReport]:
    """Greedy register binning by interference (first-fit).

    Like functional-unit allocation this is first-fit on a graph whose
    optimal colouring is NP-hard; first-fit matches period practice.
    """
    report = RegisterSharingReport(
        registers_before=len(_plain_registers(system)))
    current = system
    bins: list[str] = []
    for name in _plain_registers(system):
        merged = False
        for representative in bins:
            transform = RegisterMerger(name, representative)
            if transform.is_legal(current):
                current = transform.apply(current, verify=verify)
                report.merges.append((name, representative))
                merged = True
                break
        if not merged:
            bins.append(name)
    report.registers_after = len(_plain_registers(current))
    return current, report
