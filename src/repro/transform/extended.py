"""Extended transformations — beyond the paper's two families.

The paper presents two equivalence-backed transformation families and
notes the CAMAD system applies "a set of transformation, analysis, and
optimization algorithms" [3,4].  This module implements three further
moves that the CAMAD literature uses, clearly marked as extensions:
they change the control state set ``S`` (which Definitions 4.5/4.6 fix),
so they fall outside the paper's two structural equivalences and are
classified ``preserves="behavioural"`` — their soundness argument is the
side conditions below plus the behavioural test battery, not a theorem
from the paper.

* :class:`MergeStates` — fuse two data-independent states that execute
  back-to-back into one state opening both arc sets (one control step
  instead of two — "scheduling compaction" at state granularity, saving
  control logic where :class:`ParallelizeStates` would keep two places).
* :class:`SplitState` — the inverse: split one state's arc set into two
  sequential states (used to meet a clock-period target: each half has a
  shorter combinational path).
* :class:`EliminateDeadVertices` — drop vertices no arc touches and no
  guard reads (cleanup after mergers and splits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.dependence import DataDependence
from ..core.system import DataControlSystem
from ..datapath.validate import combinational_cycle
from .base import Legality, Transformation
from .control import _fresh_transition


@dataclass
class MergeStates(Transformation):
    """Fuse ``S1 → t → S2`` into the single state ``S1`` with
    ``C(S1) ∪ C(S2)``.

    Side conditions:

    * the usual simple-chain pattern (sole unguarded connector, as for
      :class:`~repro.transform.control.ParallelizeStates`);
    * the states are *data independent* — in one step both arc sets open
      simultaneously, so a read-after-write pair would see the old value;
    * their resources are disjoint (rule 3.2(1) within the fused state)
      and the union opens no combinational loop (rule 3.2(4));
    * neither state controls an external arc — fusing I/O states would
      merge two observable events into one activation, changing ``S(Γ)``.
    """

    s1: str
    s2: str

    preserves = "behavioural"

    def describe(self) -> str:
        return f"merge_states({self.s1} + {self.s2})"

    def _middle(self, system: DataControlSystem) -> str | None:
        net = system.net
        post = net.postset(self.s1)
        if len(post) != 1:
            return None
        (t,) = post
        if net.preset(t) != {self.s1} or net.postset(t) != {self.s2}:
            return None
        if net.preset(self.s2) != {t}:
            return None
        return t

    def is_legal(self, system: DataControlSystem) -> Legality:
        net = system.net
        if self.s1 == self.s2:
            return Legality(False, "cannot fuse a state with itself")
        if self.s1 not in net.places or self.s2 not in net.places:
            return Legality(False, f"unknown place {self.s1!r} or {self.s2!r}")
        t = self._middle(system)
        if t is None:
            return Legality(False,
                            f"no simple chain {self.s1} -> t -> {self.s2}")
        if system.guard_ports(t):
            return Legality(False, f"connector {t!r} is guarded")
        if net.initial.get(self.s2, 0):
            return Legality(False, f"{self.s2!r} is initially marked")
        external = system.external_arc_names()
        if (system.control_arcs(self.s1) & external) or \
                (system.control_arcs(self.s2) & external):
            return Legality(False,
                            "states controlling external arcs cannot be "
                            "fused (it would merge observable events)")
        dependence = DataDependence(system)
        if dependence.direct(self.s1, self.s2):
            return Legality(False,
                            f"{self.s1} ↔ {self.s2}: a dependent pair fused "
                            "into one step would read stale values")
        arcs_1, verts_1 = system.ass(self.s1)
        arcs_2, verts_2 = system.ass(self.s2)
        if (arcs_1 & arcs_2) or (verts_1 & verts_2):
            return Legality(False,
                            "states share data-path resources")
        union = system.control_arcs(self.s1) | system.control_arcs(self.s2)
        if combinational_cycle(system.datapath, union) is not None:
            return Legality(False,
                            "fused arc set contains a combinational loop")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        net = result.net
        t = self._middle(result)
        assert t is not None
        drains = sorted(net.postset(self.s2))
        union = result.control_arcs(self.s1) | result.control_arcs(self.s2)
        net.remove_transition(t)
        net.remove_place(self.s2)
        for drain in drains:
            net.add_arc(self.s1, drain)
        result.control.pop(self.s2, None)
        result.set_control(self.s1, union)
        return result


@dataclass
class SplitState(Transformation):
    """Split one state into two sequential states partitioning its arcs.

    ``first_arcs`` names the arcs that stay with the original state; the
    rest move to a fresh successor state ``new_place``.  Side conditions
    mirror :class:`MergeStates` in reverse: both halves must keep a
    sequential vertex (rule 3.2(5)), the second half must not depend on a
    register the first half latches differently… which is guaranteed
    because the halves were simultaneous before — splitting can only
    *delay* reads, so the legality test forbids the second half reading
    any register the first half writes.
    """

    place: str
    first_arcs: tuple[str, ...]
    new_place: str

    preserves = "behavioural"

    def describe(self) -> str:
        return f"split_state({self.place} -> {self.place}+{self.new_place})"

    def _partition(self, system: DataControlSystem
                   ) -> tuple[frozenset[str], frozenset[str]] | None:
        arcs = system.control_arcs(self.place)
        first = frozenset(self.first_arcs)
        if not first or not first < arcs:
            return None
        return first, arcs - first

    def is_legal(self, system: DataControlSystem) -> Legality:
        net = system.net
        if self.place not in net.places:
            return Legality(False, f"unknown place {self.place!r}")
        if self.new_place in net.places or self.new_place in net.transitions:
            return Legality(False,
                            f"name {self.new_place!r} already in use")
        parts = self._partition(system)
        if parts is None:
            return Legality(False,
                            "first_arcs must be a non-empty strict subset "
                            f"of C({self.place})")
        first, second = parts
        dp = system.datapath
        external = system.external_arc_names()
        if (first & external) or (second & external):
            return Legality(False,
                            "splitting a state with external arcs would "
                            "re-time its observable events")

        def has_sequential(arc_names: Iterable[str]) -> bool:
            return any(dp.vertex(dp.arc(a).target.vertex).is_sequential
                       for a in arc_names)

        if not has_sequential(first) or not has_sequential(second):
            return Legality(False,
                            "each half must drive a sequential vertex "
                            "(rule 3.2(5))")
        # the delayed half must not read what the first half writes
        first_writes = {dp.arc(a).target.vertex for a in first
                        if dp.vertex(dp.arc(a).target.vertex).is_sequential}
        second_reads = {dp.arc(a).source.vertex for a in second}
        stale = first_writes & second_reads
        if stale:
            return Legality(False,
                            f"second half reads {sorted(stale)} which the "
                            "first half latches — the split would change "
                            "the value observed")
        # symmetric hazard: the *first* half commits one step earlier
        # than before, so the second half must not overwrite its sources
        second_writes = {dp.arc(a).target.vertex for a in second
                         if dp.vertex(dp.arc(a).target.vertex).is_sequential}
        first_reads = {dp.arc(a).source.vertex for a in first}
        if second_writes & first_reads:
            return Legality(False,
                            "first half reads registers the second half "
                            "writes — splitting would reorder the hazard")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        net = result.net
        parts = self._partition(result)
        assert parts is not None
        first, second = parts
        drains = sorted(net.postset(self.place))
        net.add_place(self.new_place)
        for drain in drains:
            net.remove_arc(self.place, drain)
            net.add_arc(self.new_place, drain)
        t_new = _fresh_transition(result, f"t_{self.place}_split")
        net.add_transition(t_new)
        net.add_arc(self.place, t_new)
        net.add_arc(t_new, self.new_place)
        result.set_control(self.place, first)
        result.set_control(self.new_place, second)
        return result


@dataclass
class EliminateDeadVertices(Transformation):
    """Remove vertices that no arc touches and no guard reads.

    Mergers leave no dead vertices themselves (they remap arcs), but a
    sequence of splits and re-merges, or hand edits, can strand units.
    Purely structural: dead vertices have no observable behaviour.
    """

    preserves = "behavioural"

    def describe(self) -> str:
        return "eliminate_dead_vertices"

    def _dead(self, system: DataControlSystem) -> list[str]:
        dp = system.datapath
        touched: set[str] = set()
        for arc in dp.arcs.values():
            touched.add(arc.source.vertex)
            touched.add(arc.target.vertex)
        for ports in system.guards.values():
            touched.update(port.vertex for port in ports)
        return sorted(set(dp.vertices) - touched)

    def is_legal(self, system: DataControlSystem) -> Legality:
        if not self._dead(system):
            return Legality(False, "no dead vertices to eliminate")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        for name in self._dead(result):
            result.datapath.remove_vertex(name)
        return result


def removed_area(system: DataControlSystem) -> float:
    """Total area of currently-dead vertices (what elimination would save)."""
    transform = EliminateDeadVertices()
    dead = transform._dead(system)
    total = 0.0
    for name in dead:
        vertex = system.datapath.vertex(name)
        total += sum(op.area for op in vertex.ops.values())
    return total
