"""Control-invariant data-path transformations (Definition 4.6, Theorem 4.2).

* :class:`VertexMerger` — merge vertex ``V_i`` into ``V_j``: the two
  operations share one hardware unit.  "The intrinsic property of a
  merger operation is to share hardware resources … for example two
  addition operations can be implemented with the same adder" (Section 4).
  Arc identities are preserved — ``A'`` is ``A`` with endpoints remapped —
  so the control mapping ``C`` needs no change, exactly as in the paper's
  definition.

* :class:`VertexSplitter` — the inverse: duplicate a shared vertex and
  move a subset of its uses onto the copy.  This is the Section 5 move
  "possibly additional data manipulation units in the data path will
  allow more operation units to operate at the same time": splitting is
  what makes a subsequent parallelization legal when two operations
  previously shared a unit.

Legality for the merger is :func:`repro.core.equivalence.merger_legal` —
the executable hypothesis of Theorem 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.equivalence import merger_legal
from ..core.system import DataControlSystem
from ..datapath.ports import PortId
from ..errors import TransformError
from .base import Legality, Transformation


@dataclass
class VertexMerger(Transformation):
    """Merge ``v_i`` into ``v_j`` (Definition 4.6)."""

    v_i: str
    v_j: str

    preserves = "control-invariant"

    def describe(self) -> str:
        return f"merge({self.v_i} -> {self.v_j})"

    def is_legal(self, system: DataControlSystem) -> Legality:
        verdict = merger_legal(system, self.v_i, self.v_j)
        return Legality(verdict.equivalent, verdict.reason)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        # a merger never touches the control net, so the structural and
        # coexistence caches stay valid — carry them over (explore() is
        # the expensive part of repeated merger legality checks)
        result._relations = system._relations
        result._coexistence = system._coexistence
        dp = result.datapath

        def remap(port: PortId) -> PortId:
            if port.vertex == self.v_i:
                return PortId(self.v_j, port.port)
            return port

        for arc in list(dp.arcs.values()):
            if arc.source.vertex == self.v_i or arc.target.vertex == self.v_i:
                dp.remove_arc(arc.name)
                dp.connect(remap(arc.source), remap(arc.target), name=arc.name)
        for transition, ports in list(result.guards.items()):
            result.guards[transition] = {remap(p) for p in ports}
        dp.remove_vertex(self.v_i)
        return result


@dataclass
class VertexSplitter(Transformation):
    """Duplicate a shared vertex; move the uses of the given control
    states onto the copy.

    Legality:

    * the vertex is combinational (splitting a register would split its
      state);
    * its output ports are not used as guards (guards are not tied to a
      single control state, so re-pointing them is ambiguous);
    * every arc touching the vertex is controlled either entirely by
      ``states`` or entirely by other states — otherwise one arc would
      have to exist on both copies at once.

    The inverse :class:`VertexMerger` restores the original system, which
    is how the transformation's soundness is tested.
    """

    vertex: str
    clone: str
    states: Sequence[str]

    preserves = "control-invariant"

    def describe(self) -> str:
        return f"split({self.vertex} -> {self.clone} @ {list(self.states)})"

    def _moved_arcs(self, system: DataControlSystem) -> list[str] | None:
        """Arcs to remap, or None if some arc straddles the state split."""
        chosen = set(self.states)
        moved: list[str] = []
        for arc in system.datapath.arcs.values():
            if self.vertex not in (arc.source.vertex, arc.target.vertex):
                continue
            controllers = system.controlling_states(arc.name)
            if not controllers:
                return None  # uncontrolled arc touching the vertex
            if controllers <= chosen:
                moved.append(arc.name)
            elif controllers & chosen:
                return None  # straddles the split
        return moved

    def is_legal(self, system: DataControlSystem) -> Legality:
        dp = system.datapath
        if self.vertex not in dp.vertices:
            return Legality(False, f"unknown vertex {self.vertex!r}")
        if self.clone in dp.vertices:
            return Legality(False, f"clone name {self.clone!r} already in use")
        vertex = dp.vertex(self.vertex)
        if not vertex.is_combinational:
            return Legality(False,
                            f"{self.vertex!r} is state-holding; splitting "
                            "would split its state")
        for port in vertex.output_ids():
            if system.guarded_transitions(port):
                return Legality(False,
                                f"output port {port} is used as a guard")
        unknown = [s for s in self.states if s not in system.net.places]
        if unknown:
            return Legality(False, f"unknown control states {unknown}")
        moved = self._moved_arcs(system)
        if moved is None:
            return Legality(False,
                            "an arc touching the vertex is controlled by "
                            "states on both sides of the split (or by none)")
        if not moved:
            return Legality(False,
                            f"states {list(self.states)} control no arc "
                            f"touching {self.vertex!r} — nothing to split")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        dp = result.datapath
        original = dp.vertex(self.vertex)
        dp.add_vertex(original.renamed(self.clone))
        moved = self._moved_arcs(result)
        assert moved is not None

        def remap(port: PortId) -> PortId:
            if port.vertex == self.vertex:
                return PortId(self.clone, port.port)
            return port

        for name in moved:
            arc = dp.arc(name)
            dp.remove_arc(name)
            dp.connect(remap(arc.source), remap(arc.target), name=name)
        return result

    def _verify(self, before: DataControlSystem,
                after: DataControlSystem) -> None:
        """Splitting must be undoable by the Definition 4.6 merger."""
        verdict = merger_legal(after, self.clone, self.vertex)
        if not verdict:
            raise TransformError(
                f"{self.describe()} produced a split that the merger could "
                f"not undo: {verdict.reason}"
            )
