"""Data-invariant control transformations (Definition 4.5, Theorem 4.1).

These rewrites change only the transition set ``T`` and flow relation
``F`` of the control Petri net — the data path ``D``, the place set
``S``, the control mapping ``C``, the guard ports and the initial marking
``M0`` are untouched.  Legality reduces to keeping every ordered,
data-dependent state pair in the same relative order; Theorem 4.1 then
gives semantic equivalence.

* :class:`ParallelizeStates` — collapse a sequential pair ``S1 → t → S2``
  of data-*independent* states into a parallel fork/join.  This is the
  "add one more control flow path … allow more operation units to operate
  at the same time" move of Section 5.
* :class:`SerializeStates` — the inverse: order a parallel,
  data-independent pair (used to *reduce* peak resource demand before
  sharing hardware).
* :class:`RestructureBlock` — rebuild a whole linear region into layered
  fork/join steps according to a schedule (the workhorse behind list
  scheduling; a compound of parallelize moves applied at once).

Every ``apply`` re-checks Definition 4.5 between input and output by
default — the executable form of Theorem 4.1's hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.dependence import DataDependence
from ..core.equivalence import data_invariant_equivalent
from ..core.system import DataControlSystem
from ..errors import TransformError
from .base import Legality, Transformation


def _fresh_transition(system: DataControlSystem, stem: str) -> str:
    """A transition name not yet used in the net."""
    name = stem
    counter = 0
    net = system.net
    while name in net.transitions or name in net.places:
        counter += 1
        name = f"{stem}_{counter}"
    return name


def _unsafe_guarded_feeders(system: DataControlSystem, head: str,
                            companions: Sequence[str]) -> set[str]:
    """Guarded feeders of ``head`` that do not dominate every companion.

    A rewrite that forks the feeders of ``head`` into additional places
    makes each feeder *adjacent* to those places, so their markings become
    directly dependent (Definition 4.3(d)) on whatever the feeder's guard
    reads.  If the feeder already **dominated** a companion, that
    dependence existed before (clause (d) counts dominating transitions
    too) and the fork changes nothing; otherwise the fork would mint a
    dependence pair the original system does not have, breaking
    Definition 4.5.
    """
    from ..petri.relations import dominators

    net = system.net
    guarded = [t for t in net.preset(head) if system.guard_ports(t)]
    if not guarded or not companions:
        return set()
    dom_sets = dominators(net)
    return {
        t for t in guarded
        if any(t not in dom_sets.get(p, frozenset()) for p in companions)
    }


def _ass_overlap(system: DataControlSystem, s_1: str, s_2: str) -> bool:
    """Would the two states violate Definition 3.2(1) if made parallel?

    Checks both the associated vertex sets (shared data-manipulation
    units — e.g. a functional unit merged by Definition 4.6) and the
    controlled arc sets.  Transformations must keep properly designed
    systems properly designed, so two states may only become parallel
    when their active subgraphs are disjoint.
    """
    arcs_1, verts_1 = system.ass(s_1)
    arcs_2, verts_2 = system.ass(s_2)
    return bool(arcs_1 & arcs_2) or bool(verts_1 & verts_2)


class _ControlTransform(Transformation):
    """Shared verification: Definition 4.5 between before and after."""

    preserves = "data-invariant"

    def _verify(self, before: DataControlSystem,
                after: DataControlSystem) -> None:
        verdict = data_invariant_equivalent(before, after)
        if not verdict:
            raise TransformError(
                f"{self.describe()} broke data-invariance: {verdict.reason}"
            )


@dataclass
class ParallelizeStates(_ControlTransform):
    """Turn ``S1 → t → S2`` into ``{S1 ∥ S2}``.

    Pattern requirements (checked by :meth:`is_legal`):

    * a transition ``t`` with ``•t = {S1}`` and ``t• = {S2}`` exists,
      is unguarded, and is the *only* successor of ``S1`` and the only
      predecessor of ``S2``;
    * ``¬(S1 ◇ S2)`` — the states are data-independent (Definition 4.4).

    Rewrite: remove ``t``; every transition that fed ``S1`` now also
    feeds ``S2`` (fork), and every transition draining ``S2`` now also
    drains ``S1`` (join).
    """

    s1: str
    s2: str

    def describe(self) -> str:
        return f"parallelize({self.s1}, {self.s2})"

    def _middle_transition(self, system: DataControlSystem) -> str | None:
        net = system.net
        post = net.postset(self.s1)
        if len(post) != 1:
            return None
        (t,) = post
        if net.preset(t) != {self.s1} or net.postset(t) != {self.s2}:
            return None
        if net.preset(self.s2) != {t}:
            return None
        return t

    def is_legal(self, system: DataControlSystem) -> Legality:
        net = system.net
        if self.s1 not in net.places or self.s2 not in net.places:
            return Legality(False, f"unknown place {self.s1!r} or {self.s2!r}")
        t = self._middle_transition(system)
        if t is None:
            return Legality(False,
                            f"no simple chain {self.s1} -> t -> {self.s2}")
        if system.guard_ports(t):
            return Legality(False, f"middle transition {t!r} is guarded")
        guarded_drains = [u for u in net.postset(self.s2)
                          if system.guard_ports(u)]
        if guarded_drains:
            return Legality(
                False,
                f"{self.s2!r} drains through guarded transition(s) "
                f"{sorted(guarded_drains)} — joining {self.s1!r} into them "
                "would move the guard decision point",
            )
        unsafe_feeds = _unsafe_guarded_feeders(system, self.s1, [self.s2])
        if unsafe_feeds:
            return Legality(
                False,
                f"{self.s1!r} is fed by guarded transition(s) "
                f"{sorted(unsafe_feeds)} that do not dominate {self.s2!r} — "
                f"forking {self.s2!r} out of them would make M({self.s2}) "
                "newly depend on the guard decision "
                "(a new Definition 4.3(d) pair)",
            )
        if not net.preset(self.s1):
            return Legality(False,
                            f"{self.s1!r} has no feeding transition to fork from")
        if system.net.initial.get(self.s1, 0) or system.net.initial.get(self.s2, 0):
            return Legality(False,
                            "initially marked places cannot be parallelized "
                            "(M0 is fixed by Definition 4.5)")
        dependence = DataDependence(system)
        if dependence.direct(self.s1, self.s2):
            return Legality(False,
                            f"{self.s1} ↔ {self.s2} (data dependent — "
                            "reordering would change semantics)")
        if _ass_overlap(system, self.s1, self.s2):
            return Legality(False,
                            f"{self.s1} and {self.s2} share data-path "
                            "resources — parallelizing them would violate "
                            "Definition 3.2(1)")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        net = result.net
        t = self._middle_transition(result)
        assert t is not None  # is_legal ran first
        feeders = sorted(net.preset(self.s1))
        drainers = sorted(net.postset(self.s2) - {t})
        net.remove_transition(t)
        for feeder in feeders:
            net.add_arc(feeder, self.s2)
        for drainer in drainers:
            net.add_arc(self.s1, drainer)
        return result


@dataclass
class SerializeStates(_ControlTransform):
    """Order a parallel pair: ``{S1 ∥ S2}`` becomes ``S1 → t → S2``.

    Pattern requirements:

    * a common fork ``ta`` with arcs to both states and a common join
      ``tb`` with arcs from both states exist; ``ta`` and ``tb`` are
      unguarded;
    * ``S2`` is fed only by ``ta`` and ``S1`` drains only into ``tb``
      (so the rewire leaves no stranded token paths);
    * ``¬(S1 ◇ S2)`` — Definition 4.5 is symmetric: introducing an order
      between *dependent* states would add an ordered dependent pair that
      the original system does not have.
    """

    s1: str
    s2: str

    def describe(self) -> str:
        return f"serialize({self.s1}, {self.s2})"

    def _fork_join(self, system: DataControlSystem) -> tuple[str, str] | None:
        net = system.net
        forks = net.preset(self.s1) & net.preset(self.s2)
        joins = net.postset(self.s1) & net.postset(self.s2)
        if not forks or not joins:
            return None
        return sorted(forks)[0], sorted(joins)[0]

    def is_legal(self, system: DataControlSystem) -> Legality:
        net = system.net
        if self.s1 not in net.places or self.s2 not in net.places:
            return Legality(False, f"unknown place {self.s1!r} or {self.s2!r}")
        if not system.relations.parallel(self.s1, self.s2):
            return Legality(False, f"{self.s1} and {self.s2} are not parallel")
        pair = self._fork_join(system)
        if pair is None:
            return Legality(False,
                            f"{self.s1} and {self.s2} share no fork/join")
        ta, tb = pair
        if system.guard_ports(ta) or system.guard_ports(tb):
            return Legality(False, "fork or join transition is guarded")
        if net.preset(self.s2) != {ta}:
            return Legality(False,
                            f"{self.s2!r} has feeders besides the fork {ta!r}")
        if net.postset(self.s1) != {tb}:
            return Legality(False,
                            f"{self.s1!r} has drains besides the join {tb!r}")
        if system.net.initial.get(self.s1, 0) or system.net.initial.get(self.s2, 0):
            return Legality(False,
                            "initially marked places cannot be serialized "
                            "(M0 is fixed by Definition 4.5)")
        dependence = DataDependence(system)
        if dependence.direct(self.s1, self.s2):
            return Legality(False,
                            f"{self.s1} ↔ {self.s2} (ordering dependent states "
                            "adds an ordered dependent pair)")
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        net = result.net
        pair = self._fork_join(result)
        assert pair is not None
        ta, tb = pair
        net.remove_arc(ta, self.s2)
        net.remove_arc(self.s1, tb)
        t_new = _fresh_transition(result, f"t_{self.s1}_{self.s2}")
        net.add_transition(t_new)
        net.add_arc(self.s1, t_new)
        net.add_arc(t_new, self.s2)
        return result


@dataclass
class RestructureBlock(_ControlTransform):
    """Rebuild a linear chain of places into layered fork/join steps.

    ``places`` must form a chain ``p1 → t1 → p2 → … → pn`` whose interior
    transitions are unguarded and connect exactly one place to the next.
    ``layers`` is a partition of the same places into an ordered list of
    steps; places within one layer execute in parallel, consecutive
    layers are separated by fresh join/fork transitions.

    Legality requires the layering to respect the data-dependence order:
    if ``p_i ◇ p_j`` and ``i < j`` in the chain, then ``p_i``'s layer
    must come strictly before ``p_j``'s.  This is what a list scheduler
    produces; the transformation is the mechanism that realises its
    schedule on the control net (Section 5's "sequence of transformations
    moves a design from abstract description to implementation").
    """

    places: Sequence[str]
    layers: Sequence[Sequence[str]]

    def describe(self) -> str:
        layer_text = " | ".join(",".join(layer) for layer in self.layers)
        return f"restructure[{layer_text}]"

    def _interior_transitions(self, system: DataControlSystem) -> list[str] | None:
        net = system.net
        transitions: list[str] = []
        for a, b in zip(self.places, self.places[1:]):
            candidates = [t for t in net.postset(a)
                          if net.preset(t) == {a} and net.postset(t) == {b}]
            if len(candidates) != 1:
                return None
            t = candidates[0]
            if net.preset(b) != {t} or net.postset(a) != {t}:
                return None
            if system.guard_ports(t):
                return None
            transitions.append(t)
        return transitions

    def is_legal(self, system: DataControlSystem) -> Legality:
        net = system.net
        chain = list(self.places)
        if len(chain) < 2:
            return Legality(False, "chain must contain at least two places")
        for place in chain:
            if place not in net.places:
                return Legality(False, f"unknown place {place!r}")
        flat = [p for layer in self.layers for p in layer]
        if sorted(flat) != sorted(chain):
            return Legality(False, "layers are not a partition of the chain")
        if any(not layer for layer in self.layers):
            return Legality(False, "empty layer")
        if self._interior_transitions(system) is None:
            return Legality(False,
                            "places do not form a simple unguarded chain")
        if not net.preset(chain[0]):
            return Legality(False,
                            f"{chain[0]!r} has no feeding transition — the "
                            "first layer could never receive tokens")
        marked = [p for p in chain if net.initial.get(p, 0)]
        if marked:
            return Legality(False,
                            f"initially marked place(s) {marked} inside the "
                            "block (M0 is fixed by Definition 4.5)")
        # dependence order must be respected
        layer_of = {p: i for i, layer in enumerate(self.layers) for p in layer}
        position = {p: i for i, p in enumerate(chain)}
        dependence = DataDependence(system)
        for i, p in enumerate(chain):
            for q in chain[i + 1:]:
                if dependence.direct(p, q):
                    if layer_of[p] >= layer_of[q]:
                        return Legality(
                            False,
                            f"{p} ↔ {q} but layering puts {p!r} (layer "
                            f"{layer_of[p]}) not before {q!r} (layer "
                            f"{layer_of[q]})",
                        )
        # guarded exits pin the condition state: the block's drain
        # transitions take their guard decision when the *last layer*
        # completes, so if any drain is guarded (the chain ends in an
        # if/while condition state) that state must remain the sole
        # member of the last layer — otherwise the guard would be
        # evaluated at a different control point.
        net_last_drains = net.postset(chain[-1])
        if any(system.guard_ports(t) for t in net_last_drains):
            if list(self.layers[-1]) != [chain[-1]]:
                return Legality(
                    False,
                    f"the chain drains through guarded transition(s) "
                    f"{sorted(net_last_drains)}; {chain[-1]!r} must remain "
                    "alone in the final layer",
                )
        # guarded entries constrain the first layer symmetrically: the
        # rewrite forks every feeding transition into the whole first
        # layer, making each guarded feeder *adjacent* to every first-layer
        # place.  That is harmless when the feeder already dominated the
        # place (its guard sources are already in the place's Definition
        # 4.3(d) set — the loop-back transition of a while body dominates
        # the whole body, so body compaction stays legal), but a
        # non-dominating guarded feeder (one arm of an if) would create a
        # brand-new dependence pair the original system does not have.
        unsafe = _unsafe_guarded_feeders(
            system, chain[0], [p for p in self.layers[0] if p != chain[0]])
        if unsafe:
            return Legality(
                False,
                f"the chain is entered through guarded transition(s) "
                f"{sorted(unsafe)} that do not dominate the whole first "
                f"layer; {chain[0]!r} must remain alone in it",
            )
        # states sharing data-path resources must not land in one layer
        # (Definition 3.2(1) — e.g. after a functional unit was merged)
        for layer in self.layers:
            members = sorted(layer)
            for i, p in enumerate(members):
                for q in members[i + 1:]:
                    if _ass_overlap(system, p, q):
                        return Legality(
                            False,
                            f"layer co-schedules {p!r} and {q!r}, which "
                            "share data-path resources (Definition 3.2(1))",
                        )
        del position
        return Legality(True)

    def _rewrite(self, system: DataControlSystem) -> DataControlSystem:
        result = system.copy()
        net = result.net
        interior = self._interior_transitions(result)
        assert interior is not None
        first, last = self.places[0], self.places[-1]
        feeders = sorted(net.preset(first))
        drainers = sorted(net.postset(last) - set(interior))
        for t in interior:
            net.remove_transition(t)
        layers = [list(layer) for layer in self.layers]
        # detach the old boundary arcs: the first/last layer may contain
        # different places than the chain's old head/tail
        for feeder in feeders:
            for place in self.places:
                if place in net.postset(feeder):
                    net.remove_arc(feeder, place)
        for place in self.places:
            for drainer in drainers:
                if drainer in net.postset(place):
                    net.remove_arc(place, drainer)
        # entry: every feeder forks into the whole first layer
        for place in layers[0]:
            for feeder in feeders:
                net.add_arc(feeder, place)
        # between consecutive layers: fresh join/fork transition
        for i in range(len(layers) - 1):
            t_new = _fresh_transition(result, f"t_layer{i}")
            net.add_transition(t_new)
            for place in layers[i]:
                net.add_arc(place, t_new)
            for place in layers[i + 1]:
                net.add_arc(t_new, place)
        # exit: the whole last layer joins into every drainer
        for place in layers[-1]:
            for drainer in drainers:
                net.add_arc(place, drainer)
        return result
