"""Transformation verification utilities.

Structural checkers live next to their definitions in
:mod:`repro.core.equivalence`; this module layers the *behavioural*
verification on top: simulate both systems against the same environments
(and several firing policies) and compare external event structures —
the executable statement of Theorems 4.1 and 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.equivalence import EquivalenceVerdict
from ..core.system import DataControlSystem
from ..semantics.environment import Environment
from ..semantics.event_structure import default_policy_sweep, extract_event_structure


@dataclass
class BehaviouralReport:
    """Result of a behavioural equivalence sweep."""

    equivalent: bool
    environments_checked: int = 0
    policies_checked: int = 0
    failure: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def behaviourally_equivalent(before: DataControlSystem,
                             after: DataControlSystem,
                             environments: Sequence[Environment], *,
                             policies=None,
                             max_steps: int = 10_000) -> BehaviouralReport:
    """Compare event structures across environments × firing policies.

    Both systems consume forked copies of every environment, and the
    *after* system is additionally exercised under the whole policy
    battery (the *before* system under the default maximal-step policy —
    if ``before`` is properly designed its structure is policy-invariant,
    and comparing each ``after``-policy against it covers both systems).
    """
    battery = list(policies) if policies is not None else default_policy_sweep()
    checked_policies = 0
    for env_index, environment in enumerate(environments):
        reference = extract_event_structure(before, environment.fork(),
                                            max_steps=max_steps)
        for policy in battery:
            candidate = extract_event_structure(after, environment.fork(),
                                                policy=policy,
                                                max_steps=max_steps)
            checked_policies += 1
            if not reference.semantically_equal(candidate):
                difference = reference.explain_difference(candidate)
                return BehaviouralReport(
                    False, env_index + 1, checked_policies,
                    f"environment #{env_index}: {difference}",
                )
    return BehaviouralReport(True, len(environments), checked_policies)


def assert_behaviourally_equivalent(before: DataControlSystem,
                                    after: DataControlSystem,
                                    environments: Sequence[Environment], *,
                                    max_steps: int = 10_000) -> None:
    """Raise :class:`AssertionError` with the diff if the sweep fails."""
    report = behaviourally_equivalent(before, after, environments,
                                      max_steps=max_steps)
    if not report:
        raise AssertionError(
            f"systems are not behaviourally equivalent: {report.failure}"
        )
