"""Transformation verification utilities.

Structural checkers live next to their definitions in
:mod:`repro.core.equivalence`; this module layers the *behavioural*
verification on top: simulate both systems against the same environments
(and several firing policies) and compare external event structures —
the executable statement of Theorems 4.1 and 4.2.

Two backends: ``"explicit"`` runs the interpreter under the full default
policy battery (maximal, sequential, three random seeds); ``"symbolic"``
routes every extraction through the compiled vector engine
(:mod:`repro.semantics.vector`) with the deterministic policy battery the
vector backend supports — far faster on wide systems, and the explicit
backend remains the differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.system import DataControlSystem
from ..errors import DefinitionError, ValidationError
from ..semantics.environment import Environment
from ..semantics.event_structure import (
    default_policy_sweep,
    event_structure_from_trace,
    extract_event_structure,
)


@dataclass
class BehaviouralReport:
    """Result of a behavioural equivalence sweep."""

    equivalent: bool
    environments_checked: int = 0
    policies_checked: int = 0
    failure: str = ""
    backend: str = "explicit"

    def __bool__(self) -> bool:
        return self.equivalent


def _vector_policy_sweep():
    """The deterministic battery the compiled vector backend supports."""
    from ..semantics.policies import (
        MaximalStepPolicy,
        SeededMaximalPolicy,
        SequentialPolicy,
    )

    return [MaximalStepPolicy(), SequentialPolicy(),
            SeededMaximalPolicy(1), SeededMaximalPolicy(2),
            SeededMaximalPolicy(3)]


def _extract_vector(system: DataControlSystem, environment: Environment,
                    policy, *, max_steps: int):
    """Event structure via the compiled vector engine (interpreter only as
    an explicit fallback when the system is outside the vector envelope)."""
    from ..semantics.simulator import Simulator

    try:
        simulator = Simulator(system, environment, policy, backend="vector")
    except DefinitionError:
        simulator = Simulator(system, environment, policy)
    trace = simulator.run(max_steps=max_steps)
    return event_structure_from_trace(system, trace)


def behaviourally_equivalent(before: DataControlSystem,
                             after: DataControlSystem,
                             environments: Sequence[Environment], *,
                             policies=None,
                             max_steps: int = 10_000,
                             backend: str = "explicit") -> BehaviouralReport:
    """Compare event structures across environments × firing policies.

    Both systems consume forked copies of every environment, and the
    *after* system is additionally exercised under the whole policy
    battery (the *before* system under the default maximal-step policy —
    if ``before`` is properly designed its structure is policy-invariant,
    and comparing each ``after``-policy against it covers both systems).
    """
    if backend not in ("explicit", "symbolic"):
        raise ValidationError(
            f"unknown verification backend {backend!r}: "
            "expected 'explicit' or 'symbolic'")
    if policies is not None:
        battery = list(policies)
    elif backend == "symbolic":
        battery = _vector_policy_sweep()
    else:
        battery = default_policy_sweep()
    checked_policies = 0
    for env_index, environment in enumerate(environments):
        if backend == "symbolic":
            from ..semantics.policies import MaximalStepPolicy

            reference = _extract_vector(before, environment.fork(),
                                        MaximalStepPolicy(),
                                        max_steps=max_steps)
        else:
            reference = extract_event_structure(before, environment.fork(),
                                                max_steps=max_steps)
        for policy in battery:
            if backend == "symbolic":
                candidate = _extract_vector(after, environment.fork(),
                                            policy, max_steps=max_steps)
            else:
                candidate = extract_event_structure(after,
                                                    environment.fork(),
                                                    policy=policy,
                                                    max_steps=max_steps)
            checked_policies += 1
            if not reference.semantically_equal(candidate):
                difference = reference.explain_difference(candidate)
                return BehaviouralReport(
                    False, env_index + 1, checked_policies,
                    f"environment #{env_index}: {difference}",
                    backend=backend,
                )
    return BehaviouralReport(True, len(environments), checked_policies,
                             backend=backend)


def assert_behaviourally_equivalent(before: DataControlSystem,
                                    after: DataControlSystem,
                                    environments: Sequence[Environment], *,
                                    max_steps: int = 10_000,
                                    backend: str = "explicit") -> None:
    """Raise :class:`AssertionError` with the diff if the sweep fails."""
    report = behaviourally_equivalent(before, after, environments,
                                      max_steps=max_steps, backend=backend)
    if not report:
        raise AssertionError(
            f"systems are not behaviourally equivalent: {report.failure}"
        )
