"""Generative design fuzzing with cross-backend differential oracles.

The fourth wall of the test pyramid: where the unit suite checks
hand-built designs and the property suite checks the zoo, this package
*generates* arbitrary :class:`~repro.core.system.DataControlSystem`\\ s —
properly designed by construction, deliberately broken by mutation, or
structurally degenerate — and demands that every independent
implementation of the paper's semantics agree on them:

* :mod:`repro.fuzz.generate` — the seeded, size-parameterised generator;
* :mod:`repro.fuzz.oracles` — interpreter vs vector traces, explicit vs
  symbolic analyses, static checks vs runtime monitors;
* :mod:`repro.fuzz.shrink` — delta-debugging divergences to minimal
  repros;
* :mod:`repro.fuzz.corpus` — the pinned regression corpus under
  ``tests/corpus/``;
* :mod:`repro.fuzz.campaign` — the campaign loop behind ``repro fuzz``
  and the content-addressed ``fuzz`` job kind.
"""

from .campaign import FuzzConfig, FuzzReport, run_fuzz, shrink_divergence
from .corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusEntry,
    case_from_entry,
    entry_from_divergence,
    entry_from_record,
    evaluate_replay,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from .generate import (
    BOUNDARY_VALUES,
    MUTATIONS,
    QUIRKS,
    FuzzCase,
    GeneratorConfig,
    apply_mutation,
    case_seed,
    generate_case,
)
from .oracles import (
    ORACLES,
    Divergence,
    OracleReport,
    analysis_oracle,
    monitor_oracle,
    run_oracles,
    trace_oracle,
)
from .shrink import shrink_case

__all__ = [
    "BOUNDARY_VALUES",
    "DEFAULT_CORPUS_DIR",
    "CorpusEntry",
    "Divergence",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "GeneratorConfig",
    "MUTATIONS",
    "ORACLES",
    "OracleReport",
    "QUIRKS",
    "analysis_oracle",
    "apply_mutation",
    "case_from_entry",
    "case_seed",
    "entry_from_divergence",
    "entry_from_record",
    "evaluate_replay",
    "generate_case",
    "load_corpus",
    "load_entry",
    "monitor_oracle",
    "replay_entry",
    "run_fuzz",
    "run_oracles",
    "save_entry",
    "shrink_case",
    "shrink_divergence",
    "trace_oracle",
]
