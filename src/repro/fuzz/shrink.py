"""Delta-debugging shrinker for divergent fuzz cases.

Given a failing case (as its JSON dict form) and a *failure predicate*
(usually "re-running the oracle still produces a divergence with the
same fingerprint"), the shrinker greedily removes places, transitions,
datapath arcs, vertices, and environment values while the predicate
keeps holding, converging on a minimal repro.

Structural removals cascade: dropping a vertex also drops the datapath
arcs touching it, the control entries naming those arcs, any guards
reading its ports, and its environment sequence — so every candidate is
a *well-formed* serialised system.  Candidates that still fail to
deserialise (or crash the oracle) simply don't satisfy the predicate and
are skipped.

List-shaped removals use the classic ddmin schedule (drop large chunks
first, halve the granularity on failure), so a 500-place system shrinks
in hundreds — not tens of thousands — of predicate evaluations.  The
whole procedure is deterministic: candidates are tried in sorted order,
and the same input dict + predicate always yields the same minimal
repro.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

Predicate = Callable[[dict[str, Any]], bool]


def _clone(data: dict[str, Any]) -> dict[str, Any]:
    return json.loads(json.dumps(data))


# ---------------------------------------------------------------------------
# cascading removals over the serialised system form
# ---------------------------------------------------------------------------
def _drop_places(data: dict[str, Any], names: set[str]) -> None:
    net = data["system"]["net"]
    net["places"] = [p for p in net["places"] if p["name"] not in names]
    net["flow"] = [[s, t] for s, t in net["flow"]
                   if s not in names and t not in names]
    data["system"]["control"] = {
        place: arcs for place, arcs in data["system"]["control"].items()
        if place not in names}


def _drop_transitions(data: dict[str, Any], names: set[str]) -> None:
    net = data["system"]["net"]
    net["transitions"] = [t for t in net["transitions"]
                          if t["name"] not in names]
    net["flow"] = [[s, t] for s, t in net["flow"]
                   if s not in names and t not in names]
    data["system"]["guards"] = {
        transition: ports
        for transition, ports in data["system"]["guards"].items()
        if transition not in names}


def _drop_dp_arcs(data: dict[str, Any], names: set[str]) -> None:
    dp = data["system"]["datapath"]
    dp["arcs"] = [a for a in dp["arcs"] if a["name"] not in names]
    control = data["system"]["control"]
    for place in list(control):
        kept = [a for a in control[place] if a not in names]
        if kept:
            control[place] = kept
        else:
            del control[place]


def _drop_vertices(data: dict[str, Any], names: set[str]) -> None:
    dp = data["system"]["datapath"]
    dp["vertices"] = [v for v in dp["vertices"] if v["name"] not in names]
    dead_arcs = {a["name"] for a in dp["arcs"]
                 if a["source"].split(".")[0] in names
                 or a["target"].split(".")[0] in names}
    _drop_dp_arcs(data, dead_arcs)
    guards = data["system"]["guards"]
    for transition in list(guards):
        kept = [p for p in guards[transition]
                if p.split(".")[0] not in names]
        if kept:
            guards[transition] = kept
        else:
            del guards[transition]
    env = data.get("environment")
    if env:
        for vertex in names:
            env["sequences"].pop(vertex, None)


# ---------------------------------------------------------------------------
# ddmin over one name list
# ---------------------------------------------------------------------------
def _ddmin(names: list[str],
           still_fails_without: Callable[[set[str]], bool],
           budget: list[int]) -> tuple[list[str], int]:
    """Minimise ``names`` such that removing the complement keeps failing.

    Returns (kept names, accepted reduction count).  ``budget`` is a
    single-element mutable attempt counter shared across passes.

    ``still_fails_without`` always receives the *cumulative* removal set
    (everything accepted so far plus the chunk under test): accepted
    chunks interact — two individually-safe removals can break the
    predicate together — so every candidate tested is exactly the state
    the caller would materialise.
    """
    kept = list(names)
    removed: set[str] = set()
    steps = 0
    granularity = 2
    while len(kept) >= 1 and granularity <= 2 * len(kept):
        chunk = max(1, len(kept) // granularity)
        reduced = False
        start = 0
        while start < len(kept):
            if budget[0] <= 0:
                return kept, steps
            budget[0] -= 1
            candidate = set(kept[start:start + chunk])
            if candidate and still_fails_without(removed | candidate):
                kept = [n for n in kept if n not in candidate]
                removed |= candidate
                steps += 1
                reduced = True
                granularity = max(granularity - 1, 2)
            else:
                start += chunk
        if not reduced:
            if granularity >= len(kept):
                break
            granularity = min(len(kept), granularity * 2)
    return kept, steps


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def shrink_case(case_dict: dict[str, Any], predicate: Predicate, *,
                max_attempts: int = 3000
                ) -> tuple[dict[str, Any], int]:
    """Greedy fixpoint reduction of ``case_dict`` under ``predicate``.

    Returns ``(shrunk dict, accepted reduction steps)``.  The input dict
    is not modified.  ``max_attempts`` bounds total predicate
    evaluations so a slow oracle cannot stall a campaign.
    """
    best = _clone(case_dict)
    if not predicate(best):
        return best, 0  # not reproducible — nothing to shrink against
    budget = [max_attempts]
    total = 0

    def attempt(mutator: Callable[[dict[str, Any]], None]) -> bool:
        nonlocal best, total
        if budget[0] <= 0:
            return False
        candidate = _clone(best)
        mutator(candidate)
        if candidate == best:
            return False
        budget[0] -= 1
        if predicate(candidate):
            best = candidate
            total += 1
            return True
        return False

    def structural_pass(category: str,
                        names_of: Callable[[dict[str, Any]], list[str]],
                        dropper: Callable[[dict[str, Any], set[str]], None]
                        ) -> int:
        names = sorted(names_of(best))

        def fails_without(subset: set[str]) -> bool:
            candidate = _clone(best)
            dropper(candidate, subset)
            return predicate(candidate)

        kept, steps = _ddmin(names, fails_without, budget)
        removed = set(names) - set(kept)
        if removed:
            dropper(best, removed)
        return steps

    changed = True
    while changed and budget[0] > 0:
        changed = False
        before = total
        total += structural_pass(
            "places",
            lambda d: [p["name"] for p in d["system"]["net"]["places"]],
            _drop_places)
        total += structural_pass(
            "transitions",
            lambda d: [t["name"]
                       for t in d["system"]["net"]["transitions"]],
            _drop_transitions)
        total += structural_pass(
            "vertices",
            lambda d: [v["name"]
                       for v in d["system"]["datapath"]["vertices"]],
            _drop_vertices)
        total += structural_pass(
            "arcs",
            lambda d: [a["name"] for a in d["system"]["datapath"]["arcs"]],
            _drop_dp_arcs)
        total += _shrink_environment(best, attempt)
        total += _shrink_values(best, attempt)
        changed = total > before
    return best, total


def _shrink_environment(best: dict[str, Any],
                        attempt: Callable[..., bool]) -> int:
    steps = 0
    env = best.get("environment") or {}
    for vertex in sorted(env.get("sequences", {})):
        def drop(d, vertex=vertex):
            d["environment"]["sequences"].pop(vertex, None)
        if attempt(drop):
            steps += 1
            continue
        length = len(env["sequences"].get(vertex, []))
        if length > 1:
            def truncate(d, vertex=vertex):
                d["environment"]["sequences"][vertex] = \
                    d["environment"]["sequences"][vertex][:1]
            if attempt(truncate):
                steps += 1
    return steps


def _iter_value_slots(data: dict[str, Any]) -> Iterable[tuple]:
    env = data.get("environment") or {}
    for vertex in sorted(env.get("sequences", {})):
        for index in range(len(env["sequences"][vertex])):
            yield ("env", vertex, index)
    for position, vertex in enumerate(data["system"]["datapath"]["vertices"]):
        for port in sorted(vertex.get("init", {})):
            yield ("init", position, port)


def _shrink_values(best: dict[str, Any],
                   attempt: Callable[..., bool]) -> int:
    steps = 0
    for slot in list(_iter_value_slots(best)):
        def zero(d, slot=slot):
            if slot[0] == "env":
                seq = d["environment"]["sequences"][slot[1]]
                if seq[slot[2]] != 0:
                    seq[slot[2]] = 0
            else:
                d["system"]["datapath"]["vertices"][slot[1]]["init"].pop(
                    slot[2], None)
        if attempt(zero):
            steps += 1
    return steps
