"""Differential oracles: three independent ways to catch a lying engine.

Each oracle runs one :class:`~repro.fuzz.generate.FuzzCase` through two
or more implementations that must agree, and reports any disagreement as
a :class:`Divergence`:

``trace``
    interpreter fast path vs naive evaluator vs vector backend (scalar
    and numpy engines): traces must be observationally equal
    (:func:`~repro.semantics.profile.traces_equivalent`) or fail with
    the same structured error class/kind.
``analysis``
    explicit vs symbolic ``is_safe`` / ``reachable_markings`` verdicts,
    plus self-equivalence under both equivalence backends.
``monitor``
    static Definition 3.2 verdicts (``check_properly_designed`` + lint)
    vs the runtime monitor stack: a runtime RT001–RT004 finding on a
    system the static side called proper is a bug in one of the two.

Known, *documented* asymmetries are classified as explained (not
divergences): the numpy engine's 64-bit storage limit raises a
structured :class:`~repro.errors.ExecutionError` on values the
big-integer interpreter computes exactly (see ``semantics/vector.py``).

Divergences carry a stable ``fingerprint`` — the hash of the (oracle,
kind, detail key) triple — used for triage bucketing and as the shrink
predicate: a reduced case still reproduces iff it still produces a
divergence with the same fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ReproError, RuntimeFaultError
from .generate import FuzzCase

#: Oracle names accepted by :func:`run_oracles`.
ORACLES = ("trace", "analysis", "monitor")

#: Message marker of the numpy engine's documented 64-bit storage limit.
_NUMPY_RANGE_MARKER = "64-bit range"

#: Runtime monitor family -> static rules that must have flagged it.
_RUNTIME_TO_STATIC = {
    "RT001": {"PD002"},
    "RT002": {"PD001", "DP004"},
    "RT003": {"PD003"},
    "RT004": {"PD004"},
}


@dataclass
class Divergence:
    """One observed disagreement between implementations."""

    oracle: str
    kind: str
    detail: str
    detail_key: str
    seed: int
    shape: str
    mutation: str | None
    system: dict[str, Any]
    environment: dict[str, Any] | None
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        material = json.dumps(
            {"oracle": self.oracle, "kind": self.kind,
             "detail_key": self.detail_key},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]

    def as_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "oracle": self.oracle,
            "kind": self.kind,
            "detail": self.detail,
            "detail_key": self.detail_key,
            "seed": self.seed,
            "shape": self.shape,
            "mutation": self.mutation,
            "system": self.system,
            "environment": self.environment,
            "params": self.params,
        }


@dataclass
class OracleReport:
    """Everything the oracles observed about one case."""

    divergences: list[Divergence] = field(default_factory=list)
    explained: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)


def _env_dict(environment) -> dict[str, Any] | None:
    from ..runtime.jobs import _environment_to_dict

    return _environment_to_dict(environment)


def _case_provenance(case: FuzzCase) -> dict[str, Any]:
    from ..io.json_io import system_to_dict

    return {
        "seed": case.seed,
        "shape": case.shape,
        "mutation": case.mutation,
        "system": system_to_dict(case.system),
        "environment": _env_dict(case.environment),
    }


def _divergence(case: FuzzCase, oracle: str, kind: str, detail: str,
                detail_key: str, **params: Any) -> Divergence:
    prov = _case_provenance(case)
    return Divergence(oracle=oracle, kind=kind, detail=detail,
                      detail_key=detail_key, seed=prov["seed"],
                      shape=prov["shape"], mutation=prov["mutation"],
                      system=prov["system"],
                      environment=prov["environment"], params=params)


# ---------------------------------------------------------------------------
# trace oracle
# ---------------------------------------------------------------------------
def _outcome(run: Callable[[], Any]):
    """("ok", trace) or ("error", class name, fault kind, message)."""
    try:
        return ("ok", run())
    except ReproError as error:
        kind = error.kind if isinstance(error, RuntimeFaultError) else ""
        return ("error", type(error).__name__, kind, str(error))


def _outcome_key(outcome) -> str:
    if outcome[0] == "ok":
        trace = outcome[1]
        return (f"ok steps={trace.step_count} term={trace.terminated} "
                f"dead={trace.deadlocked} conflicts={len(trace.conflicts)}")
    return f"error {outcome[1]}({outcome[2]})"


def _outcomes_match(reference, other) -> bool:
    from ..semantics.profile import traces_equivalent

    if reference[0] != other[0]:
        return False
    if reference[0] == "ok":
        return traces_equivalent(reference[1], other[1])
    return reference[1] == other[1] and reference[2] == other[2]


def _is_numpy_range_limit(outcome) -> bool:
    return (outcome[0] == "error" and outcome[1] == "ExecutionError"
            and _NUMPY_RANGE_MARKER in outcome[3])


def trace_oracle(case: FuzzCase, *, max_steps: int = 256) -> OracleReport:
    """Interpreter (fast + naive) vs vector backend (scalar + numpy)."""
    from ..semantics.simulator import simulate
    from ..semantics.vector import Lane, VectorSimulator

    report = OracleReport()
    system, env, strict = case.system, case.environment, case.strict

    def interp(fast: bool):
        return simulate(system, env.fork(), strict=strict, fast=fast,
                        max_steps=max_steps, on_limit="return")

    def vector(mode: str):
        sim = VectorSimulator(system, strict=strict, mode=mode)
        result = sim.run([Lane(env.fork())], max_steps=max_steps,
                         on_limit="return")
        return result.trace(0)

    def vector_captured(mode: str):
        """Per-lane outcomes of a 3-lane capture_errors batch.

        ``capture_errors=True`` promises that a failing lane is recorded
        — never raised — and that siblings are unaffected, so every lane
        of an identical triple must reproduce the reference outcome.
        """
        sim = VectorSimulator(system, strict=strict, mode=mode)
        result = sim.run([Lane(env.fork()) for _ in range(3)],
                         max_steps=max_steps, on_limit="return",
                         capture_errors=True)
        outcomes = []
        for i in range(3):
            error = result.error(i)
            if error is None:
                outcomes.append(("ok", result.trace(i)))
            else:
                fault = (error.kind
                         if isinstance(error, RuntimeFaultError) else "")
                outcomes.append(("error", type(error).__name__, fault,
                                 str(error)))
        return outcomes

    reference = _outcome(lambda: interp(True))
    checks = (
        ("fast_naive_mismatch", lambda: interp(False)),
        ("vector_scalar_mismatch", lambda: vector("scalar")),
        ("vector_numpy_mismatch", lambda: vector("numpy")),
    )
    for kind, run in checks:
        other = _outcome(run)
        if _outcomes_match(reference, other):
            continue
        if kind == "vector_numpy_mismatch" and _is_numpy_range_limit(other):
            report.explained.append("numpy_range_limit")
            continue
        detail_key = f"{_outcome_key(reference)} vs {_outcome_key(other)}"
        report.divergences.append(_divergence(
            case, "trace", kind,
            f"interpreter: {_outcome_key(reference)}; "
            f"candidate: {_outcome_key(other)}",
            detail_key, strict=strict, max_steps=max_steps))

    for kind, mode in (("capture_scalar_mismatch", "scalar"),
                       ("capture_numpy_mismatch", "numpy")):
        try:
            lane_outcomes = vector_captured(mode)
        except ReproError as error:
            report.divergences.append(_divergence(
                case, "trace", kind,
                f"capture_errors leaked {type(error).__name__}: {error}",
                f"capture leak {type(error).__name__}",
                strict=strict, max_steps=max_steps))
            continue
        for lane, other in enumerate(lane_outcomes):
            if _outcomes_match(reference, other):
                continue
            if mode == "numpy" and _is_numpy_range_limit(other):
                report.explained.append("numpy_range_limit")
                continue
            detail_key = (f"lane {_outcome_key(reference)} vs "
                          f"{_outcome_key(other)}")
            report.divergences.append(_divergence(
                case, "trace", kind,
                f"capture lane {lane}: interpreter "
                f"{_outcome_key(reference)}; captured "
                f"{_outcome_key(other)}",
                detail_key, strict=strict, max_steps=max_steps))
            break
    return report


# ---------------------------------------------------------------------------
# analysis oracle
# ---------------------------------------------------------------------------
def _analysis_outcome(run: Callable[[], Any]):
    try:
        return ("ok", run())
    except ReproError as error:
        return ("error", type(error).__name__)


def _marking_set(markings) -> frozenset:
    return frozenset(frozenset(m.items()) for m in markings)


def analysis_oracle(case: FuzzCase, *, max_markings: int = 4096,
                    max_steps: int = 256) -> OracleReport:
    """Explicit vs symbolic safety/reachability/equivalence verdicts."""
    import warnings

    from ..core.equivalence import semantically_equivalent
    from ..petri.reachability import explore, is_safe, reachable_markings

    report = OracleReport()
    net = case.system.net
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        graph = explore(net, max_markings=max_markings)
    if graph.truncated:
        report.skipped.append("analysis_budget")
        return report

    pairs = (
        ("safety_verdict",
         lambda: is_safe(net, max_markings=max_markings, backend="explicit"),
         lambda: is_safe(net, max_markings=max_markings,
                         backend="symbolic"),
         lambda value: value),
        ("marking_set",
         lambda: reachable_markings(net, max_markings=max_markings,
                                    backend="explicit"),
         lambda: reachable_markings(net, max_markings=max_markings,
                                    backend="symbolic"),
         _marking_set),
    )
    for kind, explicit, symbolic, canon in pairs:
        a = _analysis_outcome(explicit)
        b = _analysis_outcome(symbolic)
        if a[0] == "ok" and b[0] == "ok":
            ca, cb = canon(a[1]), canon(b[1])
            if ca == cb:
                continue
            detail = f"explicit={ca!r} symbolic={cb!r}"
            if kind == "marking_set":
                detail = (f"explicit reaches {len(ca)} markings, "
                          f"symbolic reaches {len(cb)}; "
                          f"symmetric difference {len(ca ^ cb)}")
            detail_key = kind
        elif a[0] == b[0]:  # both errored with the same class: agreement
            if a[1] == b[1]:
                continue
            detail = f"explicit raised {a[1]}, symbolic raised {b[1]}"
            detail_key = f"{a[1]} vs {b[1]}"
        else:
            detail = f"explicit {a}, symbolic {b}"
            detail_key = f"{a[0]}:{a[1] if a[0] == 'error' else 'ok'} vs " \
                         f"{b[0]}:{b[1] if b[0] == 'error' else 'ok'}"
        report.divergences.append(_divergence(
            case, "analysis", kind, detail, detail_key,
            max_markings=max_markings))

    # self-equivalence must hold under both backends (proper cases only:
    # the bounded explicit check simulates, which improper nets may abort)
    if case.mutation is None and case.shape == "block":
        for backend in ("explicit", "symbolic"):
            verdict = _analysis_outcome(lambda: semantically_equivalent(
                case.system, case.system.copy(), case.environment.fork(),
                max_steps=max_steps, backend=backend))
            if verdict[0] == "ok" and verdict[1].equivalent:
                continue
            detail = (f"{backend} self-equivalence failed: "
                      + (verdict[1].reason if verdict[0] == "ok"
                         else f"raised {verdict[1]}"))
            report.divergences.append(_divergence(
                case, "analysis", "self_equivalence", detail,
                f"self_equivalence:{backend}", backend=backend))
    return report


# ---------------------------------------------------------------------------
# monitor oracle
# ---------------------------------------------------------------------------
def _static_rules(system) -> tuple[bool, frozenset[str]]:
    """(fully proper?, set of flagged rule ids from check + lint)."""
    from ..analysis.lint import run_lint
    from ..core.properly_designed import check_properly_designed

    flagged: set[str] = set()
    check = check_properly_designed(system)
    for result in check.checks:
        if not result.ok:
            flagged.add("PD00" + result.rule.split(":", 1)[0])
    lint = run_lint(system)
    for diagnostic in lint.diagnostics:
        if diagnostic.severity == "error":
            flagged.add(diagnostic.rule)
    return check.ok and lint.ok("error"), frozenset(flagged)


def _runtime_families(case: FuzzCase, max_steps: int) -> frozenset[str]:
    """RT001–RT004 families observed by the runtime monitor stack."""
    from ..faults.monitors import (
        DriveConflictMonitor,
        GuardConflictMonitor,
        SafetyMonitor,
        _TraceConflictMonitor,
        finding_from_error,
    )
    from ..semantics.policies import MaximalStepPolicy
    from ..semantics.simulator import Simulator

    monitors = [SafetyMonitor(), DriveConflictMonitor(),
                GuardConflictMonitor()]
    simulator = Simulator(case.system, case.environment.fork(),
                          MaximalStepPolicy(), False, True, monitors)
    findings = []
    trace = None
    try:
        trace = simulator.run(max_steps=max_steps, on_limit="return")
    except ReproError as error:
        findings.append(finding_from_error(error, case.system.name))
    if trace is not None:
        for monitor in monitors:
            if isinstance(monitor, _TraceConflictMonitor):
                monitor.scan(None, trace)
    for monitor in monitors:
        findings.extend(monitor.findings)
    return frozenset(f.diagnostic.rule for f in findings
                     if f.diagnostic.rule in _RUNTIME_TO_STATIC)


def monitor_oracle(case: FuzzCase, *, max_steps: int = 256) -> OracleReport:
    """Lint/check verdicts vs the runtime Definition 3.2 monitors."""
    report = OracleReport()
    if case.shape != "block":
        report.skipped.append("monitor_shape")
        return report
    proper, static = _static_rules(case.system)
    runtime = _runtime_families(case, max_steps)

    for family in sorted(runtime):
        if not (_RUNTIME_TO_STATIC[family] & static):
            report.divergences.append(_divergence(
                case, "monitor", "runtime_only_fault",
                f"runtime monitors flagged {family} but the static "
                f"analyses passed (flagged: {sorted(static) or 'nothing'})",
                f"runtime_only:{family}"))
    if case.mutation is None and not proper:
        report.divergences.append(_divergence(
            case, "monitor", "generator_improper",
            "a proper-by-construction case failed static analysis: "
            f"{sorted(static)}",
            f"generator_improper:{','.join(sorted(static))}"))
    return report


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def run_oracles(case: FuzzCase, *, oracles=ORACLES, max_steps: int = 256,
                analysis_place_limit: int = 40,
                max_markings: int = 4096) -> OracleReport:
    """Run the selected oracles over one case; merge their reports."""
    merged = OracleReport()
    for name in oracles:
        if name not in ORACLES:
            raise ValueError(f"unknown oracle {name!r}; "
                             f"choose from {ORACLES}")
        if name == "trace":
            part = trace_oracle(case, max_steps=max_steps)
        elif name == "analysis":
            if len(case.system.net.places) > analysis_place_limit:
                merged.skipped.append("analysis_size")
                continue
            part = analysis_oracle(case, max_markings=max_markings,
                                   max_steps=max_steps)
        else:
            if len(case.system.net.places) > analysis_place_limit:
                merged.skipped.append("monitor_size")
                continue
            part = monitor_oracle(case, max_steps=max_steps)
        merged.divergences.extend(part.divergences)
        merged.explained.extend(part.explained)
        merged.skipped.extend(part.skipped)
    return merged
