"""Seeded generator of random :class:`DataControlSystem`\\ s.

The generator grows **properly-designed systems by construction** using
typed growth rules over a block grammar::

    block := LEAF | SEQ(block...) | PAR(block...) | CHOICE(block, block)

Every control place — including the fork/join and decide/merge glue
states — receives a *private* datapath pattern (load / constant-load /
compute / emit), which discharges the Definition 3.2 clauses
structurally:

* rule 1 (disjoint ASS): no two states share a datapath resource;
* rule 2 (safety): block-structured nets are 1-bounded — one token per
  active branch, forks and joins balance;
* rule 3 (conflict freedom): every CHOICE is resolved by complementary
  guards (comparator + inverter, the ``guarded_choice`` idiom);
* rule 4 (no combinational loops): each pattern is a tiny DAG;
* rule 5 (sequential drive): every pattern latches a register or writes
  an output pad.

On top of the proper skeleton, :data:`MUTATIONS` deliberately break one
clause each (``extra_token`` → unsafe net, ``shared_drive`` → multi
driver, ``guard_drop`` → naked conflict place, ``comb_loop`` → cyclic
combinational path within a state, ``no_seq`` → a state with no
sequential vertex), and :data:`QUIRKS` produce the structurally-legal
edge shapes (empty system, zero-token marking, single-place self loop)
that exercise backend corner cases.

Everything is a pure function of the integer seed: the same seed yields
byte-identical ``system_to_dict`` forms and environments, which is what
makes fuzz campaigns content-addressable and shardable.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..core.system import DataControlSystem
from ..datapath.graph import DataPath
from ..datapath.library import (
    comparator,
    constant,
    input_pad,
    inverter,
    operator,
    output_pad,
    register,
)
from ..petri.net import PetriNet
from ..semantics.environment import Environment

#: Mutation operator names, each targeting one Definition 3.2 clause.
MUTATIONS = ("extra_token", "shared_drive", "guard_drop", "comb_loop",
             "no_seq")

#: Structurally-legal edge shapes generated at a low rate.
QUIRKS = ("empty", "zero_token", "self_loop")

#: Values likely to expose backend boundary behaviour (int64 edges, the
#: float-exactness cliff at 2**53, the vector engine's overflow guards).
BOUNDARY_VALUES = (
    0, 1, -1, 2**31 - 1, -(2**31), 2**53 - 1, 2**53 + 1,
    2**62 - 1, -(2**62), 2**63 - 1, -(2**63),
)

_PATTERNS = ("load", "konst", "compute", "emit")
_COMPUTE_OPS = ("add", "sub", "mul", "div", "mod")


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and mix parameters of one fuzz campaign."""

    min_places: int = 4
    max_places: int = 24
    env_length: int = 4
    #: Fraction of cases receiving one clause-breaking mutation.
    mutation_rate: float = 0.0
    #: Fraction of cases replaced by an edge shape from :data:`QUIRKS`.
    quirk_rate: float = 0.06
    #: Probability that a generated value is drawn from the boundary pool.
    boundary_rate: float = 0.15


@dataclass
class FuzzCase:
    """One generated test case (system + stimulus + provenance)."""

    seed: int
    system: DataControlSystem
    environment: Environment
    shape: str                 # "block" or one of QUIRKS
    mutation: str | None       # None = proper by construction
    strict: bool               # strictness the trace oracle will use


def case_seed(campaign_seed: int, index: int) -> int:
    """Per-case seed — a pure function of (campaign seed, case index).

    Shardable: a job generating cases ``[offset, offset + n)`` of
    campaign ``seed`` reproduces exactly the cases a single full run
    would generate at those indices.
    """
    return (campaign_seed * 1_000_003 + index * 7919 + 17) & 0x7FFFFFFF


def _value(rng: Random, config: GeneratorConfig) -> int:
    if rng.random() < config.boundary_rate:
        return rng.choice(BOUNDARY_VALUES)
    return rng.randint(-9, 9)


class _Builder:
    """Accumulates the net, datapath, control and guards of one system."""

    def __init__(self, rng: Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.dp = DataPath(name="fuzz")
        self.net = PetriNet(name="fuzz")
        self.control: dict[str, list[str]] = {}
        self.guards: dict[str, list[str]] = {}
        self.env: dict[str, list[int]] = {}
        self._n = 0

    def _id(self) -> int:
        self._n += 1
        return self._n

    def new_transition(self) -> str:
        name = f"t{self._id()}"
        self.net.add_transition(name)
        return name

    # -- states ---------------------------------------------------------
    def new_state(self, *, marked: bool = False) -> str:
        """A fresh place with a private datapath pattern (rule 5 holds)."""
        i = self._id()
        place = f"s{i}"
        self.net.add_place(place, marked=marked)
        self.control[place] = self._pattern(i)
        return place

    def _pattern(self, i: int) -> list[str]:
        rng, cfg = self.rng, self.config
        kind = rng.choice(_PATTERNS)
        if kind == "load":
            self.dp.add_vertex(input_pad(f"x{i}"))
            self.dp.add_vertex(register(f"r{i}"))
            self.dp.connect(f"x{i}.out", f"r{i}.d", name=f"a{i}_in")
            self.env[f"x{i}"] = [_value(rng, cfg)
                                 for _ in range(cfg.env_length)]
            return [f"a{i}_in"]
        if kind == "konst":
            init = _value(rng, cfg) if rng.random() < 0.3 else None
            self.dp.add_vertex(constant(f"k{i}", _value(rng, cfg)))
            self.dp.add_vertex(register(f"r{i}", init))
            self.dp.connect(f"k{i}.o", f"r{i}.d", name=f"a{i}_k")
            return [f"a{i}_k"]
        if kind == "compute":
            op = rng.choice(_COMPUTE_OPS)
            right = _value(rng, cfg)
            if op in ("div", "mod") and rng.random() < 0.9 and right == 0:
                right = 1  # keep some division-by-zero cases, not many
            self.dp.add_vertex(constant(f"ka{i}", _value(rng, cfg)))
            self.dp.add_vertex(constant(f"kb{i}", right))
            self.dp.add_vertex(operator(f"op{i}", op))
            self.dp.add_vertex(register(f"r{i}"))
            self.dp.connect(f"ka{i}.o", f"op{i}.l", name=f"a{i}_l")
            self.dp.connect(f"kb{i}.o", f"op{i}.r", name=f"a{i}_r")
            self.dp.connect(f"op{i}.o", f"r{i}.d", name=f"a{i}_o")
            return [f"a{i}_l", f"a{i}_r", f"a{i}_o"]
        # emit
        self.dp.add_vertex(constant(f"k{i}", _value(rng, cfg)))
        self.dp.add_vertex(output_pad(f"y{i}"))
        self.dp.connect(f"k{i}.o", f"y{i}.in", name=f"a{i}_y")
        return [f"a{i}_y"]

    # -- block emission -------------------------------------------------
    def emit(self, block, *, marked: bool = False) -> tuple[str, str]:
        """Emit ``block``; return its (entry place, exit place)."""
        kind = block[0]
        if kind == "leaf":
            place = self.new_state(marked=marked)
            return place, place
        if kind == "seq":
            entry, exit_ = self.emit(block[1][0], marked=marked)
            for part in block[1][1:]:
                t = self.new_transition()
                self.net.add_arc(exit_, t)
                nxt_entry, exit_ = self.emit(part)
                self.net.add_arc(t, nxt_entry)
            return entry, exit_
        if kind == "par":
            pre = self.new_state(marked=marked)
            fork = self.new_transition()
            self.net.add_arc(pre, fork)
            join = self.new_transition()
            post = self.new_state()
            self.net.add_arc(join, post)
            for branch in block[1]:
                b_entry, b_exit = self.emit(branch)
                self.net.add_arc(fork, b_entry)
                self.net.add_arc(b_exit, join)
            return pre, post
        if kind == "choice":
            return self._emit_choice(block, marked=marked)
        raise AssertionError(f"unknown block kind {kind!r}")

    def _emit_choice(self, block, *, marked: bool) -> tuple[str, str]:
        """Guarded choice: latch an input, branch on ``x != 0``."""
        i = self._id()
        # stage 1: latch the scrutinee
        read = f"s{i}r"
        self.net.add_place(read, marked=marked)
        self.dp.add_vertex(input_pad(f"x{i}"))
        self.dp.add_vertex(register(f"rx{i}"))
        self.dp.connect(f"x{i}.out", f"rx{i}.d", name=f"a{i}_read")
        self.env[f"x{i}"] = [_value(self.rng, self.config)
                             for _ in range(self.config.env_length)]
        self.control[read] = [f"a{i}_read"]
        # stage 2: evaluate the condition and latch it
        decide = f"s{i}d"
        self.net.add_place(decide)
        self.dp.add_vertex(constant(f"z{i}", 0))
        self.dp.add_vertex(comparator(f"nz{i}", "ne"))
        self.dp.add_vertex(inverter(f"nv{i}"))
        self.dp.add_vertex(register(f"c{i}"))
        self.dp.connect(f"rx{i}.q", f"nz{i}.l", name=f"a{i}_cl")
        self.dp.connect(f"z{i}.o", f"nz{i}.r", name=f"a{i}_cr")
        self.dp.connect(f"nz{i}.o", f"nv{i}.i", name=f"a{i}_nv")
        self.dp.connect(f"nz{i}.o", f"c{i}.d", name=f"a{i}_lat")
        self.control[decide] = [f"a{i}_cl", f"a{i}_cr", f"a{i}_nv",
                                f"a{i}_lat"]
        t_read = self.new_transition()
        self.net.add_arc(read, t_read)
        self.net.add_arc(t_read, decide)
        # branches under complementary guards
        t_then = self.new_transition()
        t_else = self.new_transition()
        self.net.add_arc(decide, t_then)
        self.net.add_arc(decide, t_else)
        self.guards[t_then] = [f"nz{i}.o"]
        self.guards[t_else] = [f"nv{i}.o"]
        then_entry, then_exit = self.emit(block[1])
        else_entry, else_exit = self.emit(block[2])
        self.net.add_arc(t_then, then_entry)
        self.net.add_arc(t_else, else_entry)
        merge = self.new_state()
        t_mt = self.new_transition()
        t_me = self.new_transition()
        self.net.add_arc(then_exit, t_mt)
        self.net.add_arc(t_mt, merge)
        self.net.add_arc(else_exit, t_me)
        self.net.add_arc(t_me, merge)
        return read, merge

    def finish(self, seed: int) -> DataControlSystem:
        system = DataControlSystem(self.dp, self.net, name=f"fuzz{seed}")
        for place, arcs in self.control.items():
            system.set_control(place, arcs)
        for transition, ports in self.guards.items():
            system.set_guard(transition, ports)
        return system


def _grow(rng: Random, budget: int):
    """Recursive typed growth of the block tree (~``budget`` states)."""
    if budget <= 1:
        return ("leaf",)
    r = rng.random()
    if r < 0.40 or budget < 3:
        k = rng.randint(2, max(2, min(4, budget)))
        parts, remaining = [], budget
        for j in range(k):
            if j == k - 1:
                share = max(1, remaining)  # last part spends what's left
            else:
                share = rng.randint(1, max(1, remaining - (k - 1 - j)))
            parts.append(_grow(rng, share))
            remaining = max(0, remaining - share)
        return ("seq", parts)
    if r < 0.65 and budget >= 4:
        k = rng.randint(2, 3)
        share = max(1, (budget - 2) // k)
        return ("par", [_grow(rng, share) for _ in range(k)])
    if r < 0.85 and budget >= 5:
        share = max(1, (budget - 4) // 2)
        return ("choice", _grow(rng, share), _grow(rng, share))
    # never collapse a big budget to a single leaf — min_places is a floor
    return ("seq", [("leaf",), _grow(rng, budget - 1)])


# ---------------------------------------------------------------------------
# quirk shapes — structurally legal backend corner cases
# ---------------------------------------------------------------------------
def _quirk_system(shape: str, rng: Random, config: GeneratorConfig,
                  seed: int) -> tuple[DataControlSystem, Environment]:
    if shape == "empty":
        system = DataControlSystem(DataPath(name="fuzz"),
                                   PetriNet(name="fuzz"), name=f"fuzz{seed}")
        return system, Environment()
    builder = _Builder(rng, config)
    if shape == "zero_token":
        entry, exit_ = builder.emit(("seq", [("leaf",), ("leaf",)]),
                                    marked=False)
        t_end = builder.new_transition()
        builder.net.add_arc(exit_, t_end)
        system = builder.finish(seed)
    else:  # self_loop: one state cycling through a single transition
        place = builder.new_state(marked=True)
        t = builder.new_transition()
        builder.net.add_arc(place, t)
        builder.net.add_arc(t, place)
        system = builder.finish(seed)
    env = Environment({k: list(v) for k, v in sorted(builder.env.items())},
                      exhausted_policy="cycle")
    return system, env


# ---------------------------------------------------------------------------
# mutation operators — each breaks one Definition 3.2 clause
# ---------------------------------------------------------------------------
def _mutate_extra_token(system: DataControlSystem, rng: Random) -> bool:
    places = sorted(system.net.places)
    if not places:
        return False
    system.net.set_initial(rng.choice(places), 2)
    return True


def _mutate_shared_drive(system: DataControlSystem, rng: Random) -> bool:
    """Rule 1: two *coexistent* states made to share a datapath arc.

    Falls back to a same-state double drive (a runtime drive conflict,
    lint DP004) when the net has no coexistent controlled place pair —
    purely sequential skeletons have none.
    """
    controlled = sorted(p for p, arcs in system.control.items() if arcs)
    pairs = [(a, b)
             for i, a in enumerate(controlled)
             for b in controlled[i + 1:]
             if system.may_coexist(a, b)]
    if pairs:
        place_a, place_b = rng.choice(pairs)
        system.datapath.add_vertex(register("mutshr"))
        system.datapath.add_vertex(constant("mutk", 7))
        system.datapath.connect("mutk.o", "mutshr.d", name="mut_drive")
        system.set_control(place_a,
                           list(system.control[place_a]) + ["mut_drive"])
        system.set_control(place_b,
                           list(system.control[place_b]) + ["mut_drive"])
        return True
    candidates = []
    for place, arcs in sorted(system.control.items()):
        for arc_name in sorted(arcs):
            arc = system.datapath.arcs[arc_name]
            target = system.datapath.vertices[arc.target.vertex]
            if target.is_sequential:
                candidates.append((place, str(arc.target)))
    if not candidates:
        return False
    place, target = rng.choice(candidates)
    system.datapath.add_vertex(constant("mutk", 7))
    system.datapath.connect("mutk.o", target, name="mut_drive")
    system.set_control(place, list(system.control[place]) + ["mut_drive"])
    return True


def _mutate_guard_drop(system: DataControlSystem, rng: Random) -> bool:
    guarded = sorted(system.guards)
    if not guarded:
        return False
    system.guards.pop(rng.choice(guarded))
    return True


def _mutate_comb_loop(system: DataControlSystem, rng: Random) -> bool:
    controlled = sorted(p for p, arcs in system.control.items() if arcs)
    if not controlled:
        return False
    place = rng.choice(controlled)
    system.datapath.add_vertex(inverter("mutia"))
    system.datapath.add_vertex(inverter("mutib"))
    system.datapath.connect("mutia.o", "mutib.i", name="mut_fwd")
    system.datapath.connect("mutib.o", "mutia.i", name="mut_bwd")
    system.set_control(place, list(system.control[place])
                       + ["mut_fwd", "mut_bwd"])
    return True


def _mutate_no_seq(system: DataControlSystem, rng: Random) -> bool:
    for place in sorted(system.control):
        arcs = system.control[place]
        comb_only = [
            a for a in arcs
            if not system.datapath.vertices[
                system.datapath.arcs[a].target.vertex].is_sequential
        ]
        if comb_only and len(comb_only) < len(arcs):
            system.set_control(place, comb_only)
            return True
    return False


_MUTATORS = {
    "extra_token": _mutate_extra_token,
    "shared_drive": _mutate_shared_drive,
    "guard_drop": _mutate_guard_drop,
    "comb_loop": _mutate_comb_loop,
    "no_seq": _mutate_no_seq,
}


def apply_mutation(system: DataControlSystem, name: str,
                   rng: Random) -> bool:
    """Apply one named mutation in place; ``False`` if inapplicable."""
    if name not in _MUTATORS:
        raise ValueError(f"unknown mutation {name!r}; "
                         f"choose one of {MUTATIONS}")
    return _MUTATORS[name](system, rng)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def generate_case(seed: int,
                  config: GeneratorConfig | None = None) -> FuzzCase:
    """Generate one deterministic fuzz case from ``seed``."""
    config = config or GeneratorConfig()
    rng = Random(seed)
    strict = rng.random() < 0.5
    if rng.random() < config.quirk_rate:
        shape = rng.choice(QUIRKS)
        system, env = _quirk_system(shape, rng, config, seed)
        return FuzzCase(seed, system, env, shape, None, strict)

    target = rng.randint(config.min_places, config.max_places)
    builder = _Builder(rng, config)
    block = _grow(rng, target)
    _entry, exit_ = builder.emit(block, marked=True)
    t_end = builder.new_transition()
    builder.net.add_arc(exit_, t_end)
    system = builder.finish(seed)

    policy = rng.choice(("hold", "cycle", "cycle", "raise"))
    env = Environment({k: list(v) for k, v in sorted(builder.env.items())},
                      exhausted_policy=policy)

    mutation = None
    if rng.random() < config.mutation_rate:
        order = list(MUTATIONS)
        rng.shuffle(order)
        for name in order:
            if apply_mutation(system, name, rng):
                mutation = name
                break
    return FuzzCase(seed, system, env, "block", mutation, strict)
