"""Fuzz campaign orchestration: generate → oracle → shrink → triage.

:func:`run_fuzz` drives one campaign: it derives per-case seeds from the
campaign seed (:func:`~repro.fuzz.generate.case_seed`, so campaigns
shard cleanly across batch jobs), generates each case, runs the selected
differential oracles, delta-debugs every new divergence down to a
minimal repro, and buckets results by fingerprint.

The resulting :class:`FuzzReport` separates the **deterministic
payload** (cases run, divergence records with shrunk repros, bucket and
explained/skip counters — a pure function of the config) from
**wall-clock metrics** (elapsed seconds, cases per second).  The ``fuzz``
job kind caches only the payload, which is what makes fuzz campaigns
content-addressable: same seed, same verdicts, same fingerprints,
locally or over the batch engine and the HTTP service.

``time_budget`` truncates a campaign early; a truncated report says so
(``truncated: true``) and is *not* a pure function of the config, which
is why the job-kind constructor deliberately does not expose it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ReproError
from .generate import FuzzCase, GeneratorConfig, case_seed, generate_case
from .oracles import ORACLES, Divergence, run_oracles
from .shrink import shrink_case


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one campaign (JSON-safe, content-addressable)."""

    seed: int = 0
    cases: int = 200
    offset: int = 0
    min_places: int = 4
    max_places: int = 24
    mutation_rate: float = 0.25
    quirk_rate: float = 0.06
    oracles: tuple[str, ...] = ORACLES
    shrink: bool = True
    max_steps: int = 256
    max_markings: int = 4096
    analysis_place_limit: int = 40
    time_budget: float | None = None

    def generator_config(self) -> GeneratorConfig:
        return GeneratorConfig(min_places=self.min_places,
                               max_places=self.max_places,
                               mutation_rate=self.mutation_rate,
                               quirk_rate=self.quirk_rate)

    def to_params(self) -> dict[str, Any]:
        """JSON-safe parameter dict (job key material; no time budget)."""
        return {
            "seed": self.seed, "cases": self.cases, "offset": self.offset,
            "min_places": self.min_places, "max_places": self.max_places,
            "mutation_rate": self.mutation_rate,
            "quirk_rate": self.quirk_rate,
            "oracles": list(self.oracles), "shrink": self.shrink,
            "max_steps": self.max_steps,
            "max_markings": self.max_markings,
            "analysis_place_limit": self.analysis_place_limit,
        }

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "FuzzConfig":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in params.items() if k in known}
        if "oracles" in kwargs:
            kwargs["oracles"] = tuple(kwargs["oracles"])
        return cls(**kwargs)


@dataclass
class FuzzReport:
    """Everything one campaign observed."""

    config: FuzzConfig
    cases_run: int = 0
    truncated: bool = False
    divergences: list[dict[str, Any]] = field(default_factory=list)
    buckets: dict[str, int] = field(default_factory=dict)
    explained: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)
    shrink_steps: int = 0
    elapsed_seconds: float = 0.0

    @property
    def cases_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.cases_run / self.elapsed_seconds

    @property
    def ok(self) -> bool:
        return not self.divergences

    def payload(self) -> dict[str, Any]:
        """The deterministic part (what the ``fuzz`` job kind caches)."""
        return {
            "config": self.config.to_params(),
            "cases": self.cases_run,
            "truncated": self.truncated,
            "divergences": sorted(
                self.divergences,
                key=lambda d: (d["fingerprint"], d["seed"])),
            "buckets": dict(sorted(self.buckets.items())),
            "explained": dict(sorted(self.explained.items())),
            "skipped": dict(sorted(self.skipped.items())),
            "shrink_steps": self.shrink_steps,
        }

    def metrics(self) -> dict[str, Any]:
        """Wall-clock observability (never content-addressed)."""
        from ..semantics.profile import SimMetrics

        record = SimMetrics()
        record.wall_seconds = self.elapsed_seconds
        return record.as_dict()

    def to_dict(self) -> dict[str, Any]:
        """Payload plus wall-clock figures, for human-facing output."""
        return dict(self.payload(),
                    elapsed_seconds=round(self.elapsed_seconds, 3),
                    cases_per_second=round(self.cases_per_second, 1))


# ---------------------------------------------------------------------------
# shrinking plumbing
# ---------------------------------------------------------------------------
def _case_dict(divergence: Divergence, strict: bool) -> dict[str, Any]:
    return {
        "seed": divergence.seed,
        "shape": divergence.shape,
        "mutation": divergence.mutation,
        "strict": strict,
        "system": divergence.system,
        "environment": divergence.environment,
    }


def _rebuild_case(data: dict[str, Any]) -> FuzzCase:
    from ..io.json_io import system_from_dict
    from ..runtime.jobs import _environment_from_dict

    return FuzzCase(
        seed=data.get("seed", 0),
        system=system_from_dict(data["system"]),
        environment=_environment_from_dict(data.get("environment")),
        shape=data.get("shape", "block"),
        mutation=data.get("mutation"),
        strict=bool(data.get("strict", True)))


def _shrink_predicate(config: FuzzConfig, oracle: str,
                      fingerprint: str) -> Callable[[dict[str, Any]], bool]:
    def predicate(data: dict[str, Any]) -> bool:
        try:
            case = _rebuild_case(data)
            report = run_oracles(
                case, oracles=(oracle,), max_steps=config.max_steps,
                analysis_place_limit=config.analysis_place_limit,
                max_markings=config.max_markings)
        except (ReproError, KeyError, ValueError, TypeError,
                AttributeError, IndexError):
            return False  # candidate is malformed, not a smaller repro
        return fingerprint in {d.fingerprint for d in report.divergences}
    return predicate


def shrink_divergence(divergence: Divergence, config: FuzzConfig,
                      strict: bool) -> tuple[dict[str, Any], int]:
    """Delta-debug one divergence; return (shrunk case dict, steps)."""
    predicate = _shrink_predicate(config, divergence.oracle,
                                  divergence.fingerprint)
    return shrink_case(_case_dict(divergence, strict), predicate)


# ---------------------------------------------------------------------------
# the campaign loop
# ---------------------------------------------------------------------------
def run_fuzz(config: FuzzConfig | None = None, *,
             progress: Callable[[int, FuzzReport], None] | None = None
             ) -> FuzzReport:
    """Run one fuzz campaign; deterministic for a fixed config.

    ``progress`` (if given) is called after every case with the running
    index and the report so far — the CLI uses it for live output.
    """
    config = config or FuzzConfig()
    report = FuzzReport(config=config)
    generator_config = config.generator_config()
    start = time.perf_counter()

    for index in range(config.cases):
        if (config.time_budget is not None
                and time.perf_counter() - start > config.time_budget):
            report.truncated = True
            break
        seed = case_seed(config.seed, config.offset + index)
        case = generate_case(seed, generator_config)
        oracle_report = run_oracles(
            case, oracles=config.oracles, max_steps=config.max_steps,
            analysis_place_limit=config.analysis_place_limit,
            max_markings=config.max_markings)
        report.cases_run += 1
        for name in oracle_report.explained:
            report.explained[name] = report.explained.get(name, 0) + 1
        for name in oracle_report.skipped:
            report.skipped[name] = report.skipped.get(name, 0) + 1
        for divergence in oracle_report.divergences:
            fingerprint = divergence.fingerprint
            first_in_bucket = fingerprint not in report.buckets
            report.buckets[fingerprint] = \
                report.buckets.get(fingerprint, 0) + 1
            record = divergence.as_dict()
            record["shrunk"] = None
            record["shrink_steps"] = 0
            if config.shrink and first_in_bucket:
                shrunk, steps = shrink_divergence(divergence, config,
                                                  case.strict)
                record["shrunk"] = {"system": shrunk["system"],
                                    "environment": shrunk["environment"]}
                record["shrink_steps"] = steps
                report.shrink_steps += steps
            if first_in_bucket:
                report.divergences.append(record)
        if progress is not None:
            progress(index, report)

    report.elapsed_seconds = time.perf_counter() - start
    return report
