"""The pinned regression corpus: JSON repro files under ``tests/corpus/``.

Every divergence the fuzzer finds (after shrinking) is emitted as one
self-contained JSON file: the serialised system, its environment, the
oracle that flagged it, and an ``expect`` verdict:

``"pass"``
    the underlying bug is fixed — replaying the case must produce *zero*
    divergences (the usual state of the corpus; these are regression
    pins);
``"xfail"``
    a known, still-open divergence — replaying must reproduce a
    divergence with the same fingerprint, and the ``note`` field carries
    the tracking rationale.

``tests/fuzz/test_corpus_replay.py`` replays every entry on every test
run, so a fixed bug that regresses — or an open bug that silently
changes shape — fails CI deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..errors import DefinitionError
from .generate import FuzzCase
from .oracles import ORACLES, Divergence, OracleReport, run_oracles

CORPUS_FORMAT = 1

#: Repo-relative default location of the pinned corpus.
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


@dataclass
class CorpusEntry:
    """One pinned repro file."""

    id: str
    oracle: str
    kind: str
    detail_key: str
    fingerprint: str
    seed: int
    shape: str
    mutation: str | None
    strict: bool
    expect: str                       # "pass" | "xfail"
    note: str
    system: dict[str, Any]
    environment: dict[str, Any] | None
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": CORPUS_FORMAT,
            "id": self.id,
            "oracle": self.oracle,
            "kind": self.kind,
            "detail_key": self.detail_key,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "shape": self.shape,
            "mutation": self.mutation,
            "strict": self.strict,
            "expect": self.expect,
            "note": self.note,
            "system": self.system,
            "environment": self.environment,
            "params": self.params,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CorpusEntry":
        if data.get("format") != CORPUS_FORMAT:
            raise DefinitionError(
                f"unsupported corpus format {data.get('format')!r}")
        if data.get("expect") not in ("pass", "xfail"):
            raise DefinitionError(
                f"corpus entry {data.get('id')!r}: expect must be "
                f"'pass' or 'xfail', not {data.get('expect')!r}")
        return cls(
            id=data["id"], oracle=data["oracle"], kind=data["kind"],
            detail_key=data.get("detail_key", ""),
            fingerprint=data["fingerprint"], seed=data.get("seed", 0),
            shape=data.get("shape", "block"),
            mutation=data.get("mutation"),
            strict=data.get("strict", True), expect=data["expect"],
            note=data.get("note", ""), system=data["system"],
            environment=data.get("environment"),
            params=dict(data.get("params", {})))


def entry_from_divergence(divergence: Divergence, *, strict: bool,
                          expect: str, note: str = "") -> CorpusEntry:
    """Pin one (ideally shrunk) divergence as a corpus entry."""
    return CorpusEntry(
        id=f"{divergence.oracle}-{divergence.kind}-"
           f"{divergence.fingerprint}",
        oracle=divergence.oracle, kind=divergence.kind,
        detail_key=divergence.detail_key,
        fingerprint=divergence.fingerprint, seed=divergence.seed,
        shape=divergence.shape, mutation=divergence.mutation,
        strict=strict, expect=expect, note=note,
        system=divergence.system, environment=divergence.environment,
        params=dict(divergence.params))


def entry_from_record(record: dict[str, Any], *, expect: str,
                      note: str = "") -> CorpusEntry:
    """Pin one campaign divergence record (a ``FuzzReport`` dict entry).

    Prefers the shrunk form when the campaign produced one, falling back
    to the original system.
    """
    shrunk = record.get("shrunk") or {}
    return CorpusEntry(
        id=f"{record['oracle']}-{record['kind']}-{record['fingerprint']}",
        oracle=record["oracle"], kind=record["kind"],
        detail_key=record.get("detail_key", ""),
        fingerprint=record["fingerprint"], seed=record.get("seed", 0),
        shape=record.get("shape", "block"),
        mutation=record.get("mutation"),
        strict=bool(record.get("params", {}).get("strict", True)),
        expect=expect, note=note or record.get("detail", ""),
        system=shrunk.get("system") or record["system"],
        environment=(shrunk.get("environment")
                     if shrunk else record.get("environment")),
        params={"oracles": [record["oracle"]]})


def evaluate_replay(entry: CorpusEntry, report: OracleReport
                    ) -> tuple[bool, str]:
    """Judge one replay against the entry's ``expect`` verdict."""
    fingerprints = {d.fingerprint for d in report.divergences}
    if entry.expect == "pass":
        if not fingerprints:
            return True, "no divergence (fixed, stays fixed)"
        return False, ("regressed: divergence(s) "
                       f"{sorted(fingerprints)} reappeared")
    if entry.fingerprint in fingerprints:
        return True, "known divergence still reproduces (xfail)"
    if fingerprints:
        return False, (f"xfail changed shape: expected "
                       f"{entry.fingerprint}, got {sorted(fingerprints)}")
    return False, ("xfail no longer reproduces — fix confirmed? "
                   "flip expect to 'pass'")


def case_from_entry(entry: CorpusEntry) -> FuzzCase:
    """Rebuild the executable case pinned by ``entry``."""
    from ..io.json_io import system_from_dict
    from ..runtime.jobs import _environment_from_dict

    return FuzzCase(
        seed=entry.seed, system=system_from_dict(entry.system),
        environment=_environment_from_dict(entry.environment),
        shape=entry.shape, mutation=entry.mutation, strict=entry.strict)


def replay_entry(entry: CorpusEntry, *, max_steps: int = 256
                 ) -> OracleReport:
    """Re-run the oracles over a pinned entry.

    Runs the oracles named in ``entry.params["oracles"]`` when present,
    else all of them.  The caller interprets the report against
    ``entry.expect``.
    """
    case = case_from_entry(entry)
    oracles = tuple(entry.params.get("oracles", ORACLES))
    return run_oracles(case, oracles=oracles, max_steps=max_steps)


# ---------------------------------------------------------------------------
# on-disk layout
# ---------------------------------------------------------------------------
def entry_path(directory: str, entry: CorpusEntry) -> str:
    return os.path.join(directory, f"{entry.id}.json")


def save_entry(directory: str, entry: CorpusEntry) -> str:
    """Write one corpus file (sorted keys, trailing newline); return path."""
    os.makedirs(directory, exist_ok=True)
    path = entry_path(directory, entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise DefinitionError(
                f"corpus file {path!r} is not valid JSON: {error}"
            ) from None
    return CorpusEntry.from_dict(data)


def load_corpus(directory: str) -> list[CorpusEntry]:
    """All corpus entries under ``directory``, sorted by id."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, name)))
    return entries
