"""Firing policies: which fireable transitions advance in one step.

The Petri-net firing rule is non-deterministic; a *policy* resolves the
choice.  For **properly designed** systems (Definition 3.2) the choice is
immaterial — the net is conflict-free, so every policy produces the same
external event structure — and the test suite uses the policies below to
verify exactly that.  The default, :class:`MaximalStepPolicy`, models the
synchronous hardware interpretation: every independent control stream
advances on each clock tick.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..petri.execution import GuardEval, TokenGameCache, maximal_step
from ..petri.marking import Marking
from ..petri.net import PetriNet


class FiringPolicy(Protocol):
    """Strategy interface: pick the step to fire at the current marking."""

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        """Return the (possibly empty) list of transitions to fire now."""
        ...


class _EngineBound:
    """Mixin: accept a :class:`~repro.petri.execution.TokenGameCache`.

    The simulator offers its per-run cache via :meth:`bind`; policies
    that can exploit memoized enabled sets keep a reference and fall
    back to the uncached module functions whenever ``choose`` is called
    with a different net (policies are sometimes reused across systems
    in tests).  Binding never changes which step is chosen — only how
    fast it is found.
    """

    _engine: TokenGameCache | None = None

    def bind(self, engine: TokenGameCache) -> None:
        self._engine = engine

    def _bound(self, net: PetriNet) -> TokenGameCache | None:
        engine = self._engine
        return engine if engine is not None and engine.net is net else None


class MaximalStepPolicy(_EngineBound):
    """Fire a maximal conflict-free set of fireable transitions (default).

    Models one synchronous clock tick: all independent control signals
    advance together.
    """

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        engine = self._bound(net)
        if engine is not None:
            return engine.maximal_step(marking, guard_eval)
        return maximal_step(net, marking, guard_eval)


class SequentialPolicy(_EngineBound):
    """Fire exactly one transition per step, lowest name first.

    The fully interleaved, deterministic schedule — useful as the second
    point of the policy-invariance tests.
    """

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        engine = self._bound(net)
        if engine is not None:
            step = engine.maximal_step(marking, guard_eval,
                                       priority=engine.sorted_transitions)
        else:
            step = maximal_step(net, marking, guard_eval,
                                priority=sorted(net.transitions))
        return step[:1]


class SeededMaximalPolicy(_EngineBound):
    """Maximal step over a seeded-random candidate order.

    Unlike :class:`MaximalStepPolicy` (deterministic insertion order)
    the greedy scan considers transitions in an order shuffled by one
    seeded :class:`random.Random` — the reproducible way to explore how
    conflict resolution lands when a fault *makes* the net conflicted.
    Identical seeds give byte-identical traces; on a conflict-free
    system the chosen step *set* matches :class:`MaximalStepPolicy`
    (only the in-step order varies).  ``repro simulate --seed`` and the
    fault-campaign runner use this policy.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        engine = self._bound(net)
        if engine is not None:
            return engine.maximal_step(marking, guard_eval, rng=self._rng)
        return maximal_step(net, marking, guard_eval, rng=self._rng)


class RandomPolicy:
    """Fire a random non-empty subset of a randomly ordered maximal step.

    Seeded, so runs are reproducible; distinct seeds explore distinct
    interleavings.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        order = list(net.transitions)
        self._rng.shuffle(order)
        step = maximal_step(net, marking, guard_eval, priority=order)
        if len(step) <= 1:
            return step
        keep = self._rng.randint(1, len(step))
        return step[:keep]


class ScriptedPolicy:
    """Replay an explicit firing sequence, one transition per step.

    Drives the simulator through a *specific* interleaving — the bridge
    between the exhaustive enumerator
    (:func:`repro.petri.reachability.firing_sequences`) and the full
    semantics: enumerate every interleaving of a bounded system, replay
    each, and check the external event structures coincide.  Raises
    :class:`~repro.errors.ExecutionError` if the scripted transition is
    not fireable (the script does not match the system); returns an empty
    step when the script is exhausted.
    """

    def __init__(self, sequence: Sequence[str]) -> None:
        self._sequence = list(sequence)
        self._position = 0

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        from ..errors import ExecutionError
        from ..petri.execution import may_fire

        if self._position >= len(self._sequence):
            return []
        transition = self._sequence[self._position]
        if not may_fire(net, marking, transition, guard_eval):
            raise ExecutionError(
                f"scripted transition {transition!r} is not fireable at "
                f"step {self._position}"
            )
        self._position += 1
        return [transition]


class FixedOrderPolicy:
    """Single-firing policy following an explicit priority list.

    Transitions missing from the priority list are appended in name order.
    Used to force specific interleavings in regression tests.
    """

    def __init__(self, priority: Sequence[str]) -> None:
        self._priority = list(priority)

    def choose(self, net: PetriNet, marking: Marking,
               guard_eval: GuardEval) -> list[str]:
        order = self._priority + sorted(set(net.transitions) - set(self._priority))
        step = maximal_step(net, marking, guard_eval, priority=order)
        return step[:1]
