"""Step-level observability for the simulation engine.

The simulator's hot loop is the two-phase step of Definition 3.1:
combinational fixpoint, then token game.  :class:`SimMetrics` counts
what each phase actually did — steps, port evaluations, cache hits and
misses of the fast-path memoization, peak marked places, wall time per
phase — and every :class:`~repro.semantics.trace.Trace` carries one
(``trace.metrics``).  The record is machine-readable (:meth:`SimMetrics.
as_dict` / :meth:`SimMetrics.to_json`) so benchmarks and the CLI
``simulate --profile`` flag can consume it without screen-scraping.

Two comparison helpers close the loop on the fast path's correctness
claim:

* :func:`profile_simulation` — run once, return the trace (metrics
  attached);
* :func:`compare_paths` — run the naive full-recompute evaluator and
  the incremental fast path on forked environments and report whether
  the traces are observationally identical, plus the measured speedup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

#: Cache names reported by the simulator, in display order.
CACHE_NAMES = ("active_arcs", "com_order", "conflicts", "token_game")


@dataclass
class SimMetrics:
    """What one simulation run cost, phase by phase.

    ``port_evaluations`` counts combinational output-port evaluations
    (the unit of work of phase 1); ``dirty_evaluations`` is the subset
    performed on incremental passes — on a loop-heavy workload it stays
    far below ``steps × |COM ports|``, which is exactly the fast path's
    value proposition.
    """

    fast_path: bool = True
    steps: int = 0
    firings: int = 0
    port_evaluations: int = 0
    dirty_evaluations: int = 0
    full_passes: int = 0
    incremental_passes: int = 0
    peak_marked_places: int = 0
    combinational_seconds: float = 0.0
    control_seconds: float = 0.0
    wall_seconds: float = 0.0
    cache_hits: dict[str, int] = field(default_factory=dict)
    cache_misses: dict[str, int] = field(default_factory=dict)

    @property
    def total_cache_hits(self) -> int:
        return sum(self.cache_hits.values())

    @property
    def total_cache_misses(self) -> int:
        return sum(self.cache_misses.values())

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total lookups, 0.0 when no cache was consulted."""
        lookups = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / lookups if lookups else 0.0

    @property
    def steps_per_second(self) -> float:
        return self.steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready representation (plain ints/floats/dicts)."""
        return {
            "fast_path": self.fast_path,
            "steps": self.steps,
            "firings": self.firings,
            "port_evaluations": self.port_evaluations,
            "dirty_evaluations": self.dirty_evaluations,
            "full_passes": self.full_passes,
            "incremental_passes": self.incremental_passes,
            "peak_marked_places": self.peak_marked_places,
            "combinational_seconds": self.combinational_seconds,
            "control_seconds": self.control_seconds,
            "wall_seconds": self.wall_seconds,
            "steps_per_second": self.steps_per_second,
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "SimMetrics":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        fields = {
            k: payload[k] for k in (
                "fast_path", "steps", "firings", "port_evaluations",
                "dirty_evaluations", "full_passes", "incremental_passes",
                "peak_marked_places", "combinational_seconds",
                "control_seconds", "wall_seconds",
            ) if k in payload
        }
        return cls(cache_hits=dict(payload.get("cache_hits", {})),
                   cache_misses=dict(payload.get("cache_misses", {})),
                   **fields)

    def summary(self) -> str:
        """Multi-line human-readable report (CLI ``--profile``)."""
        path = "incremental fast path" if self.fast_path else "naive full pass"
        lines = [
            f"profile ({path}):",
            f"  steps                {self.steps}",
            f"  firings              {self.firings}",
            f"  port evaluations     {self.port_evaluations}"
            + (f" ({self.dirty_evaluations} incremental)"
               if self.fast_path else ""),
            f"  passes               {self.full_passes} full"
            f" / {self.incremental_passes} incremental",
            f"  peak marked places   {self.peak_marked_places}",
            f"  combinational phase  {self.combinational_seconds * 1e3:.2f} ms",
            f"  control phase        {self.control_seconds * 1e3:.2f} ms",
            f"  wall time            {self.wall_seconds * 1e3:.2f} ms"
            f" ({self.steps_per_second:,.0f} steps/s)",
        ]
        lookups = self.total_cache_hits + self.total_cache_misses
        if lookups:
            lines.append(f"  cache hit rate       {self.cache_hit_rate:.1%}"
                         f" ({self.total_cache_hits}/{lookups})")
            for name in sorted(set(self.cache_hits) | set(self.cache_misses)):
                lines.append(
                    f"    {name:<18} {self.cache_hits.get(name, 0)} hits"
                    f" / {self.cache_misses.get(name, 0)} misses")
        return "\n".join(lines)


def profile_simulation(system, environment=None, *, policy=None,
                       max_steps: int = 10_000, strict: bool = True,
                       fast: bool = True, on_limit: str = "raise") -> "Trace":
    """Run one simulation and return its trace with metrics attached.

    Identical to :func:`repro.semantics.simulator.simulate` except that
    the ``fast`` switch is explicit; the returned ``trace.metrics`` is
    never ``None``.
    """
    from .simulator import simulate

    return simulate(system, environment, policy=policy, max_steps=max_steps,
                    strict=strict, fast=fast, on_limit=on_limit)


def traces_equivalent(a: "Trace", b: "Trace") -> bool:
    """Observational equality of two traces (metrics excluded).

    Compares everything a run can externally exhibit: events, fired
    steps, latches, conflicts, final marking/state, and the termination
    verdict.  This is the drop-in criterion for the fast path.
    """
    return (a.events == b.events
            and a.steps == b.steps
            and a.latches == b.latches
            and a.conflicts == b.conflicts
            and a.final_marking == b.final_marking
            and a.final_state == b.final_state
            and a.terminated == b.terminated
            and a.deadlocked == b.deadlocked
            and a.step_count == b.step_count)


def compare_paths(system, environment=None, *,
                  policy_factory: Callable[[], object] | None = None,
                  max_steps: int = 10_000, strict: bool = True,
                  on_limit: str = "raise") -> dict:
    """Race the naive evaluator against the incremental fast path.

    Both runs see forked copies of ``environment`` and fresh policy
    instances (``policy_factory`` defaults to
    :class:`~repro.semantics.policies.MaximalStepPolicy`).  Returns a
    JSON-ready report::

        {"identical": bool,          # traces observationally equal
         "speedup": float,           # naive wall time / fast wall time
         "naive": {...metrics...},
         "fast": {...metrics...}}
    """
    from .environment import Environment
    from .policies import MaximalStepPolicy
    from .simulator import Simulator

    factory = policy_factory or MaximalStepPolicy
    base = environment if environment is not None else Environment()
    naive = Simulator(system, base.fork(), factory(), strict, False).run(
        max_steps=max_steps, on_limit=on_limit)
    fast = Simulator(system, base.fork(), factory(), strict, True).run(
        max_steps=max_steps, on_limit=on_limit)
    assert naive.metrics is not None and fast.metrics is not None
    speedup = (naive.metrics.wall_seconds / fast.metrics.wall_seconds
               if fast.metrics.wall_seconds > 0 else 0.0)
    return {
        "identical": traces_equivalent(naive, fast),
        "speedup": speedup,
        "naive": naive.metrics.as_dict(),
        "fast": fast.metrics.as_dict(),
    }
