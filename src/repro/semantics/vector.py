"""Vectorised batch simulation: compile once, step many runs at once.

The interpreter in :mod:`repro.semantics.simulator` walks the
``DataControlSystem`` object graph on every step — dict lookups for
arcs, ports, operations, activations.  ROADMAP item 2 asks for the
dataflow-accelerator move instead: **compile the graph, batch the
execution**.  :class:`CompiledSystem` lowers a system once into flat
numeric form —

* a frozen *place order* and *transition order* with dense pre/post
  incidence rows (the token game becomes integer comparisons),
* a flat *register file*: one slot per value-carrying port (sequential
  state, input pads, output records, combinational outputs), with
  slot 0 permanently :data:`~repro.semantics.values.UNDEF`,
* per reachable marking, a :class:`_Plan`: the open-arc set resolved to
  a straight-line *tape* of register-to-register instructions in the
  precomputed COM topological order, the drive-conflict verdict, guard
  registers per enabled transition, choice-conflict candidates, and the
  latch/event recipe for every departing place,
* per ``(plan, guard bits)``, memoized *effects*: the chosen step, the
  next marking (hence next plan), activation openings and environment
  draws — so a loop's steady state replays from a dict hit.

:class:`VectorSimulator` then advances a whole **batch** of lanes
(N seeds × M environments per :class:`Lane`) against one compiled
system.  Two engines share the compiled plans:

* the **scalar engine** (``mode="scalar"``) runs each lane through the
  compiled tape with plain Python values — exact bignum arithmetic,
  checkpoint/resume support, and byte-identical traces versus the
  interpreter (this is what ``backend="vector"`` on a single
  :class:`~repro.semantics.simulator.Simulator` uses);
* the **numpy engine** (``mode="numpy"``, automatic for batches of
  ≥ 8 fresh lanes) keeps the register file as a ``(registers, lanes)``
  ``int64``/``bool`` pair and executes every tape instruction across
  all lanes of a plan-group in one array op, grouping lanes by
  ``(plan, guard bits)`` so divergent control flow stays correct.
  Trace records are buffered as compact per-group chunks and expanded
  to :class:`~repro.semantics.trace.Trace` objects lazily.

Exactness contract: traces from either engine are **byte-identical** to
the interpreter's (:func:`~repro.semantics.profile.traces_equivalent`),
including conflict records, latch order, activation identifiers and
seeded-policy decisions.  The numpy engine pre-checks operand
magnitudes and falls back to exact per-lane Python evaluation whenever
a result might not fit in 64 bits; a value that cannot be *stored* in
64 bits raises :class:`~repro.errors.ExecutionError` (use the scalar
engine or the interpreter for bignum workloads).

Unsupported in this backend (``DefinitionError``): simulator hooks
(fault injectors perturb per-step state the compiler froze) and
policies other than :class:`~repro.semantics.policies.MaximalStepPolicy`,
:class:`~repro.semantics.policies.SequentialPolicy` and
:class:`~repro.semantics.policies.SeededMaximalPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

import numpy as np

from ..core.events import ExternalEvent
from ..core.system import DataControlSystem
from ..datapath.operations import OpKind, Operation
from ..datapath.ports import PortId
from ..datapath.validate import topological_com_order
from ..errors import DefinitionError, ExecutionError, ReproError, RuntimeFaultError, ValidationError
from ..petri.marking import Marking
from .environment import Environment
from .policies import (FiringPolicy, MaximalStepPolicy, SeededMaximalPolicy,
                       SequentialPolicy)
from .profile import SimMetrics
from .simulator import Checkpoint
from .trace import ConflictRecord, LatchRecord, Trace
from .values import UNDEF, Value, as_word

#: Latch recipe modes (see ``_Plan.completions``).
_LATCH_OUT = 0     # OUTPUT record: take the incoming value, UNDEF included
_LATCH_PLAIN = 1   # plain register: keep old value when incoming is UNDEF
_LATCH_FUNC = 2    # stateful function (e.g. accumulator): op.evaluate

#: Magnitude bounds below which int64 arithmetic cannot overflow.
_ADD_BOUND = 1 << 62
_MUL_BOUND = 1 << 31
#: div/mod additionally must match the interpreter's ``int(a / b)``,
#: which is float-rounded: above 2**53 the correctly-rounded double
#: quotient can truncate to a different integer than the exact one.
_DIV_BOUND = 1 << 53
_SHIFT_BOUND = 30

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class _Fallback(Exception):
    """Raised by a vector handler when int64 arithmetic might overflow."""


def _policy_kind(policy: FiringPolicy) -> str:
    """Classify a policy for compiled emulation (exact type check only:
    a subclass may override ``choose`` arbitrarily)."""
    cls = type(policy)
    if cls is MaximalStepPolicy:
        return "max"
    if cls is SequentialPolicy:
        return "seq"
    if cls is SeededMaximalPolicy:
        return "rng"
    raise DefinitionError(
        f"policy {policy!r} is not supported by the vector backend; use "
        "MaximalStepPolicy, SequentialPolicy or SeededMaximalPolicy")


# ---------------------------------------------------------------------------
# compiled instructions
# ---------------------------------------------------------------------------
def _scalar_instruction(op: Operation, out: int, args: tuple[int, ...]):
    """One tape entry for the scalar engine: ``regs[out] = op(regs[args])``.

    Mirrors ``Operation.evaluate`` exactly — strict UNDEF propagation is
    inside ``op.func`` already, and booleans are normalised to words —
    with the arity check hoisted to compile time (the error message is
    preserved and raised on first execution, like the interpreter's
    first full pass would).
    """
    func = op.func
    if func is None:
        message = f"operation {op.name!r} has no value function"

        def broken(regs, _m=message):
            raise DefinitionError(_m)
        return broken
    if op.arity >= 0 and len(args) != op.arity:
        message = (f"operation {op.name!r} expects {op.arity} argument(s), "
                   f"got {len(args)}")

        def mismatched(regs, _m=message):
            raise DefinitionError(_m)
        return mismatched

    if len(args) == 0:
        def instr0(regs, _f=func, _o=out):
            v = _f()
            regs[_o] = v if type(v) is int or v is UNDEF else as_word(v)
        return instr0
    if len(args) == 1:
        def instr1(regs, _f=func, _o=out, _a=args[0]):
            v = _f(regs[_a])
            regs[_o] = v if type(v) is int or v is UNDEF else as_word(v)
        return instr1
    if len(args) == 2:
        def instr2(regs, _f=func, _o=out, _a=args[0], _b=args[1]):
            v = _f(regs[_a], regs[_b])
            regs[_o] = v if type(v) is int or v is UNDEF else as_word(v)
        return instr2
    if len(args) == 3:
        def instr3(regs, _f=func, _o=out, _a=args[0], _b=args[1], _c=args[2]):
            v = _f(regs[_a], regs[_b], regs[_c])
            regs[_o] = v if type(v) is int or v is UNDEF else as_word(v)
        return instr3

    def instrN(regs, _f=func, _o=out, _args=args):
        v = _f(*[regs[a] for a in _args])
        regs[_o] = v if type(v) is int or v is UNDEF else as_word(v)
    return instrN


def _magnitude_reaches(a, bound):
    """True when any ``|a| >= bound`` — ``np.abs`` wraps at INT64_MIN
    (``abs(-2**63) == -2**63``), so compare both signs directly."""
    return bool(((a >= bound) | (a <= -bound)).any())


def _check_add(a, b, da, db):
    if _magnitude_reaches(a, _ADD_BOUND) or _magnitude_reaches(b, _ADD_BOUND):
        raise _Fallback
    return da & db


def _vh_add(vals):
    (a, b), (da, db) = vals
    return a + b, _check_add(a, b, da, db)


def _vh_sub(vals):
    (a, b), (da, db) = vals
    return a - b, _check_add(a, b, da, db)


def _vh_mul(vals):
    (a, b), (da, db) = vals
    if _magnitude_reaches(a, _MUL_BOUND) or _magnitude_reaches(b, _MUL_BOUND):
        raise _Fallback
    return a * b, da & db


def _div_mod(a, b):
    """Truncating (toward-zero) int64 quotient and remainder, b != 0 safe."""
    bsafe = np.where(b == 0, 1, b)
    q = a // bsafe
    r = a - q * bsafe
    adjust = (r != 0) & ((a < 0) != (bsafe < 0))
    return q + adjust, r - np.where(adjust, bsafe, 0)


def _vh_div(vals):
    (a, b), (da, db) = vals
    if _magnitude_reaches(a, _DIV_BOUND) or _magnitude_reaches(b, _DIV_BOUND):
        raise _Fallback
    q, _ = _div_mod(a, b)
    return q, da & db & (b != 0)


def _vh_mod(vals):
    (a, b), (da, db) = vals
    if _magnitude_reaches(a, _DIV_BOUND) or _magnitude_reaches(b, _DIV_BOUND):
        raise _Fallback
    _, r = _div_mod(a, b)
    return r, da & db & (b != 0)


def _vh_neg(vals):
    (a,), (da,) = vals
    if _magnitude_reaches(a, _ADD_BOUND):
        raise _Fallback
    return -a, da


def _vh_abs(vals):
    (a,), (da,) = vals
    if _magnitude_reaches(a, _ADD_BOUND):
        raise _Fallback
    return np.abs(a), da


def _vh_min(vals):
    (a, b), (da, db) = vals
    return np.minimum(a, b), da & db


def _vh_max(vals):
    (a, b), (da, db) = vals
    return np.maximum(a, b), da & db


def _vh_shl(vals):
    (a, b), (da, db) = vals
    if (b > _SHIFT_BOUND).any() or _magnitude_reaches(a, _MUL_BOUND):
        raise _Fallback
    return a << np.where(b >= 0, b, 0), da & db & (b >= 0)


def _vh_shr(vals):
    (a, b), (da, db) = vals
    return a >> np.clip(b, 0, 63), da & db & (b >= 0)


def _vh_eq(vals):
    (a, b), (da, db) = vals
    return (a == b).astype(np.int64), da & db


def _vh_ne(vals):
    (a, b), (da, db) = vals
    return (a != b).astype(np.int64), da & db


def _vh_lt(vals):
    (a, b), (da, db) = vals
    return (a < b).astype(np.int64), da & db


def _vh_le(vals):
    (a, b), (da, db) = vals
    return (a <= b).astype(np.int64), da & db


def _vh_gt(vals):
    (a, b), (da, db) = vals
    return (a > b).astype(np.int64), da & db


def _vh_ge(vals):
    (a, b), (da, db) = vals
    return (a >= b).astype(np.int64), da & db


def _vh_and(vals):
    (a, b), (da, db) = vals
    return ((a != 0) & (b != 0)).astype(np.int64), da & db


def _vh_or(vals):
    (a, b), (da, db) = vals
    return ((a != 0) | (b != 0)).astype(np.int64), da & db


def _vh_not(vals):
    (a,), (da,) = vals
    return (a == 0).astype(np.int64), da


def _vh_xor(vals):
    (a, b), (da, db) = vals
    return ((a != 0) != (b != 0)).astype(np.int64), da & db


def _vh_band(vals):
    (a, b), (da, db) = vals
    return a & b, da & db


def _vh_bor(vals):
    (a, b), (da, db) = vals
    return a | b, da & db


def _vh_bxor(vals):
    (a, b), (da, db) = vals
    return a ^ b, da & db


def _vh_id(vals):
    (a,), (da,) = vals
    return a, da


def _vh_mux(vals):
    (s, a, b), (ds, da, db) = vals
    return np.where(s != 0, a, b), ds & da & db


_VECTOR_HANDLERS = {
    "add": _vh_add, "sub": _vh_sub, "mul": _vh_mul, "div": _vh_div,
    "mod": _vh_mod, "neg": _vh_neg, "abs": _vh_abs, "min": _vh_min,
    "max": _vh_max, "shl": _vh_shl, "shr": _vh_shr,
    "eq": _vh_eq, "ne": _vh_ne, "lt": _vh_lt, "le": _vh_le,
    "gt": _vh_gt, "ge": _vh_ge,
    "and": _vh_and, "or": _vh_or, "not": _vh_not, "xor": _vh_xor,
    "band": _vh_band, "bor": _vh_bor, "bxor": _vh_bxor,
    "id": _vh_id, "mux": _vh_mux,
}


def _owned(array: np.ndarray) -> np.ndarray:
    """A copy that outlives the register file's next mutation (views from
    slice-indexing share memory; fancy-indexed results are already owned)."""
    return array.copy() if array.base is not None else array


def _store_word(value: Value) -> int:
    """Range-check a Python int for the int64 register file."""
    if _INT64_MIN <= value <= _INT64_MAX:
        return value
    raise ExecutionError(
        f"value {value} exceeds the vector backend's 64-bit range; use "
        "the scalar mode or the interpreter")


def _python_eval(op: Operation, arg_vals, arg_defs, n: int):
    """Exact per-lane fallback for one numpy tape instruction."""
    values = np.zeros(n, dtype=np.int64)
    defined = np.zeros(n, dtype=bool)
    for j in range(n):
        args = [int(col[j]) if dcol[j] else UNDEF
                for col, dcol in zip(arg_vals, arg_defs)]
        result = op.evaluate(*args)
        if result is not UNDEF:
            values[j] = _store_word(result)
            defined[j] = True
    return values, defined


def _vector_instruction(op: Operation, out: int, args: tuple[int, ...]):
    """One tape entry for the numpy engine.

    Operates on the group's lane columns: reads the argument registers,
    dispatches the vector handler for the operation (falling back to
    exact per-lane Python on overflow risk or unknown operations), zeroes
    undefined slots and writes the output register.
    """
    handler = _VECTOR_HANDLERS.get(op.name)
    if op.name.startswith("const[") and op.func is not None:
        word = op.func()
        if not _INT64_MIN <= word <= _INT64_MAX:
            message = (f"value {word} exceeds the vector backend's 64-bit "
                       "range; use the scalar mode or the interpreter")

            def too_wide(values, defined, sel, _m=message):
                raise ExecutionError(_m)
            return too_wide

        def const(values, defined, sel, _o=out, _w=word):
            values[_o, sel] = _w
            defined[_o, sel] = True
        return const

    def instr(values, defined, sel, _op=op, _o=out, _args=args,
              _handler=handler):
        arg_vals = [values[a, sel] for a in _args]
        arg_defs = [defined[a, sel] for a in _args]
        if _handler is not None:
            try:
                v, d = _handler((arg_vals, arg_defs))
            except _Fallback:
                v, d = _python_eval(_op, arg_vals, arg_defs,
                                    arg_vals[0].shape[0])
        else:
            n = (arg_vals[0].shape[0] if arg_vals
                 else values[_o, sel].shape[0])
            v, d = _python_eval(_op, arg_vals, arg_defs, n)
        values[_o, sel] = np.where(d, v, 0)
        defined[_o, sel] = d
    return instr


# ---------------------------------------------------------------------------
# per-marking plans
# ---------------------------------------------------------------------------
class _Completion:
    """Event + latch recipe for one place's departing activation."""

    __slots__ = ("events", "latches")

    def __init__(self, events, latches):
        self.events = events    # tuple[(arc_name, source_reg)]
        self.latches = latches  # tuple[(PortId, state_reg, in_reg, mode, op)]


class _Plan:
    """Everything one marking determines, compiled to register indices."""

    __slots__ = ("marking", "marked_sorted", "empty", "active",
                 "conflict_details", "comb_error", "tape", "vec",
                 "enabled", "enabled_index", "sorted_enabled", "guard_regs",
                 "guard_weights", "candidates", "completions", "effects",
                 "pid")

    def __init__(self) -> None:
        self.vec = None          # lazy numpy tape
        self.effects = {}        # (kind, bits) / ("rng", chosen) -> _Effects


class _Effects:
    """What firing a chosen step at a plan does to the run state."""

    __slots__ = ("chosen", "consumed", "produced", "draws", "next_marking",
                 "next_plan")

    def __init__(self, chosen, consumed, produced, draws, next_marking,
                 next_plan):
        self.chosen = chosen            # tuple of transitions, firing order
        self.consumed = consumed        # tuple of places, sorted unique
        self.produced = produced        # tuple of places, sorted
        self.draws = draws              # tuple[(input vertex, register)]
        self.next_marking = next_marking
        self.next_plan = next_plan


class CompiledSystem:
    """A ``DataControlSystem`` lowered to flat numeric form (one-time).

    Frozen orders: ``places`` / ``transitions`` follow the net's
    insertion order; the register file starts with the UNDEF pseudo
    register, then every state-carrying port in the interpreter's
    ``_state`` insertion order, then the combinational output ports.
    ``pre`` / ``post`` are dense ``(T, P)`` int64 incidence matrices.
    Plans are compiled per reachable marking on first visit and shared
    by every lane and every run of this compiled system.
    """

    def __init__(self, system: DataControlSystem) -> None:
        self.system = system
        dp = system.datapath
        net = system.net
        self.places: tuple[str, ...] = tuple(net.places)
        self.place_index = {p: i for i, p in enumerate(self.places)}
        self.transitions: tuple[str, ...] = tuple(net.transitions)
        self.presets = {t: tuple(net.preset(t)) for t in self.transitions}
        self.postsets = {t: tuple(net.postset(t)) for t in self.transitions}
        n_p, n_t = len(self.places), len(self.transitions)
        self.pre = np.zeros((n_t, n_p), dtype=np.int64)
        self.post = np.zeros((n_t, n_p), dtype=np.int64)
        for ti, t in enumerate(self.transitions):
            for p in self.presets[t]:
                self.pre[ti, self.place_index[p]] += 1
            for p in self.postsets[t]:
                self.post[ti, self.place_index[p]] += 1
        # register file: slot 0 is the permanent UNDEF pseudo register
        self.reg_of: dict[PortId, int] = {}
        initial: list[Value] = [UNDEF]
        self.state_ports: list[tuple[PortId, int]] = []
        for vertex in dp.vertices.values():
            for port in vertex.out_ports:
                op = vertex.operation(port)
                if op.kind in (OpKind.SEQ, OpKind.INPUT, OpKind.OUTPUT):
                    pid = PortId(vertex.name, port)
                    self.reg_of[pid] = len(initial)
                    self.state_ports.append((pid, len(initial)))
                    initial.append(vertex.initial_value(port))
        # constant (zero-arg) COM ports are hoisted: their value never
        # changes, so it lives in the initial register image instead of
        # being recomputed by every plan's tape on every step
        self.const_regs: set[int] = set()
        for vertex in dp.vertices.values():
            if not vertex.is_combinational:
                continue
            inputs = vertex.input_ids()
            for port in vertex.out_ports:
                pid = PortId(vertex.name, port)
                reg = len(initial)
                self.reg_of[pid] = reg
                op = vertex.operation(port)
                value: Value = UNDEF
                if not inputs and op.arity == 0 and op.func is not None:
                    try:
                        v = op.func()
                        value = (v if type(v) is int or v is UNDEF
                                 else as_word(v))
                        self.const_regs.add(reg)
                    except Exception:
                        value = UNDEF  # keep the raising instruction on tape
                initial.append(value)
        self.initial_values: tuple[Value, ...] = tuple(initial)
        self.num_regs = len(initial)
        self._external = system.external_arc_names()
        self._guard_ports = {t: system.guard_ports(t)
                             for t in self.transitions}
        self.input_regs = {
            v.name: self.reg_of[PortId(v.name, v.out_ports[0])]
            for v in dp.vertices.values() if v.is_input_vertex
        }
        # which input vertices each place's activation reads (draw sources)
        self.place_draw: dict[str, frozenset[str]] = {}
        for place in self.places:
            sources = set()
            for arc_name in system.control_arcs(place):
                source = dp.arc(arc_name).source
                if dp.vertex(source.vertex).is_input_vertex:
                    sources.add(source.vertex)
            self.place_draw[place] = frozenset(sources)
        self.initial_marking: Marking = net.initial_marking()
        self._plans: dict[Marking, _Plan] = {}
        self.plan_registry: list[_Plan] = []

    # -- marking-determined plans ---------------------------------------
    def plan_for(self, marking: Marking) -> _Plan:
        plan = self._plans.get(marking)
        if plan is None:
            plan = self._compile_plan(marking)
            plan.pid = len(self.plan_registry)
            self.plan_registry.append(plan)
            self._plans[marking] = plan
        return plan

    def _resolve_reg(self, port: PortId, active: frozenset[str],
                     conflicted: frozenset[PortId]) -> int:
        """Register carrying an input port's value under the open arcs
        (mirrors the interpreter's ``resolve``: conflicted ports and
        ports with no active arc read UNDEF; otherwise the first active
        arc in name order wins — conflicts were pre-detected, so at most
        one distinct source is active)."""
        if port in conflicted:
            return 0
        for arc in self.system.datapath.arcs_into(port):
            if arc.name in active:
                return self.reg_of.get(arc.source, 0)
        return 0

    def _compile_plan(self, marking: Marking) -> _Plan:
        dp = self.system.datapath
        plan = _Plan()
        plan.marking = marking
        marked = marking.marked_places()
        plan.marked_sorted = tuple(sorted(marked))
        plan.empty = marking.is_empty()
        active_set: set[str] = set()
        for place in marked:
            active_set.update(self.system.control_arcs(place))
        active = frozenset(active_set)
        plan.active = active
        # drive-conflict analysis (identical entry order to the interpreter)
        drivers: dict[PortId, set[PortId]] = {}
        for name in active:
            arc = dp.arc(name)
            drivers.setdefault(arc.target, set()).add(arc.source)
        entries = tuple(
            (port, f"input port {port} driven by {sorted(map(str, sources))}")
            for port, sources in sorted(drivers.items(),
                                        key=lambda item: str(item[0]))
            if len(sources) > 1
        )
        plan.conflict_details = tuple(detail for _port, detail in entries)
        conflicted = frozenset(port for port, _ in entries)
        # COM topological order -> instruction tape
        plan.comb_error = None
        tape = []
        try:
            order = topological_com_order(dp, active)
        except ValidationError as error:
            plan.comb_error = str(error)
            order = []
        for name in order:
            vertex = dp.vertex(name)
            args = tuple(self._resolve_reg(p, active, conflicted)
                         for p in vertex.input_ids())
            for port in vertex.out_ports:
                out = self.reg_of[PortId(name, port)]
                if out in self.const_regs:
                    continue  # hoisted into the initial register image
                tape.append(_scalar_instruction(
                    vertex.operation(port), out, args))
        plan.tape = tape
        plan.vec = None
        # token game: enabled transitions in insertion order
        plan.enabled = tuple(t for t in self.transitions
                             if marking.covers(self.presets[t]))
        plan.enabled_index = {t: i for i, t in enumerate(plan.enabled)}
        plan.sorted_enabled = tuple(sorted(plan.enabled))
        plan.guard_regs = tuple(
            tuple(self.reg_of.get(p, 0) for p in self._guard_ports[t])
            for t in plan.enabled)
        n_enabled = len(plan.enabled)
        plan.guard_weights = (
            np.left_shift(np.ones(n_enabled, dtype=np.int64),
                          np.arange(n_enabled, dtype=np.int64))
            if 0 < n_enabled <= 62 else None)
        # choice-conflict candidates (dynamic Definition 3.2(3) check)
        enabled_set = set(plan.enabled)
        candidates = []
        for place in plan.marked_sorted:
            if marking[place] >= 2:
                continue
            base = sorted(t for t in self.system.net.postset(place)
                          if t in enabled_set)
            if len(base) >= 2:
                candidates.append(
                    (place, tuple((t, plan.enabled_index[t]) for t in base)))
        plan.candidates = tuple(candidates)
        # departure recipes per marked place
        completions: dict[str, _Completion] = {}
        for place in plan.marked_sorted:
            arcs = self.system.control_arcs(place)
            events = tuple(
                (arc_name, self.reg_of.get(dp.arc(arc_name).source, 0))
                for arc_name in sorted(arcs & self._external))
            latches = []
            for arc_name in sorted(arcs):
                arc = dp.arc(arc_name)
                vertex = dp.vertex(arc.target.vertex)
                if not vertex.is_sequential:
                    continue
                in_reg = self._resolve_reg(arc.target, active, conflicted)
                for port_name in vertex.out_ports:
                    op = vertex.operation(port_name)
                    if op.kind not in (OpKind.SEQ, OpKind.OUTPUT):
                        continue
                    pid = PortId(vertex.name, port_name)
                    if op.kind is OpKind.OUTPUT:
                        mode = _LATCH_OUT
                    elif op.func is None:
                        mode = _LATCH_PLAIN
                    else:
                        mode = _LATCH_FUNC
                    latches.append((pid, self.reg_of[pid], in_reg, mode, op))
            completions[place] = _Completion(events, tuple(latches))
        plan.completions = completions
        return plan

    def vec_tape(self, plan: _Plan):
        """The numpy tape for a plan (compiled lazily on first group)."""
        if plan.vec is None:
            dp = self.system.datapath
            conflicted = frozenset()  # baked into the scalar tape already
            vec = []
            try:
                order = topological_com_order(dp, plan.active)
            except ValidationError:
                order = []
            # recompute conflicted ports: the scalar compile already did,
            # but the resolve step needs them again for argument registers
            drivers: dict[PortId, set[PortId]] = {}
            for name in plan.active:
                arc = dp.arc(name)
                drivers.setdefault(arc.target, set()).add(arc.source)
            conflicted = frozenset(p for p, s in drivers.items()
                                   if len(s) > 1)
            for name in order:
                vertex = dp.vertex(name)
                args = tuple(self._resolve_reg(p, plan.active, conflicted)
                             for p in vertex.input_ids())
                for port in vertex.out_ports:
                    out = self.reg_of[PortId(name, port)]
                    if out in self.const_regs:
                        continue  # hoisted into the initial register image
                    vec.append(_vector_instruction(
                        vertex.operation(port), out, args))
            plan.vec = vec
        return plan.vec

    # -- chosen-step emulation ------------------------------------------
    def maximal_chosen(self, plan: _Plan, bits: int) -> tuple[str, ...]:
        """Greedy maximal step in transition insertion order (the default
        policy), given the guard-truth bitmask over ``plan.enabled``."""
        available = dict(plan.marking)
        step = []
        for i, t in enumerate(plan.enabled):
            if not bits >> i & 1:
                continue
            preset = self.presets[t]
            if all(available.get(p, 0) >= 1 for p in preset):
                for p in preset:
                    available[p] = available.get(p, 0) - 1
                step.append(t)
        return tuple(step)

    def sequential_chosen(self, plan: _Plan, bits: int) -> tuple[str, ...]:
        """First guard-true enabled transition in name order, or nothing."""
        index = plan.enabled_index
        for t in plan.sorted_enabled:
            if bits >> index[t] & 1:
                return (t,)
        return ()

    def seeded_chosen(self, plan: _Plan, bits: int, rng) -> tuple[str, ...]:
        """Greedy maximal step over a seeded shuffle of all transitions —
        consumes the RNG exactly as ``maximal_step(rng=...)`` does (one
        shuffle of the full transition list per step)."""
        base = list(self.transitions)
        rng.shuffle(base)
        index = plan.enabled_index
        available = dict(plan.marking)
        step = []
        for t in base:
            i = index.get(t)
            if i is None or not bits >> i & 1:
                continue
            preset = self.presets[t]
            if all(available.get(p, 0) >= 1 for p in preset):
                for p in preset:
                    available[p] = available.get(p, 0) - 1
                step.append(t)
        return tuple(step)

    def effects_for(self, plan: _Plan, key, chosen: tuple[str, ...]
                    ) -> _Effects:
        """Memoized state delta for firing ``chosen`` at ``plan``."""
        effects = plan.effects.get(key)
        if effects is not None:
            return effects
        consume = [p for t in chosen for p in self.presets[t]]
        produce = [p for t in chosen for p in self.postsets[t]]
        next_marking = plan.marking.after_firing(consume, produce)
        consumed = tuple(sorted(set(consume)))
        remaining = plan.marking.marked_places() - set(consumed)
        produced = tuple(sorted(p for p in next_marking.marked_places()
                                if p not in remaining))
        draw: set[str] = set()
        for place in produced:
            draw.update(self.place_draw[place])
        draws = tuple((v, self.input_regs[v]) for v in sorted(draw))
        effects = _Effects(chosen, consumed, produced, draws, next_marking,
                           self.plan_for(next_marking))
        plan.effects[key] = effects
        return effects


def compile_system(system: DataControlSystem) -> CompiledSystem:
    """Lower a system to flat numeric form (one-time, reusable)."""
    return CompiledSystem(system)


# ---------------------------------------------------------------------------
# lanes, checkpoints, results
# ---------------------------------------------------------------------------
@dataclass
class Lane:
    """One batch lane: an environment and a firing policy.

    Each lane must carry its **own** policy instance — a shared seeded
    policy would interleave its RNG stream across lanes and diverge from
    per-run interpreter behaviour.
    """

    environment: Environment = field(default_factory=Environment)
    policy: FiringPolicy = field(default_factory=MaximalStepPolicy)


@dataclass(frozen=True)
class VectorCheckpoint:
    """Batch snapshot: one interpreter checkpoint per lane.

    Per-lane entries are ordinary
    :class:`~repro.semantics.simulator.Checkpoint` objects, so batch
    state round-trips through the interpreter — a lane checkpointed
    here can resume under ``Simulator.run(from_checkpoint=...)`` and
    vice versa.
    """

    step: int
    lanes: tuple[Checkpoint, ...]

    def lane(self, index: int) -> Checkpoint:
        return self.lanes[index]


class BatchResult:
    """Per-lane traces of one batch run (extracted lazily)."""

    def __init__(self, n: int, wall_seconds: float) -> None:
        self._n = n
        self._wall = wall_seconds
        self._traces: list[Trace | None] = [None] * n
        self._errors: list[ReproError | None] = [None] * n
        self._extract = None  # numpy engine: deferred chunk expansion

    def __len__(self) -> int:
        return self._n

    @property
    def wall_seconds(self) -> float:
        """Wall-clock spent advancing the batch (excludes lazy extraction)."""
        return self._wall

    def error(self, index: int) -> ReproError | None:
        """The error that stopped a lane, or None (see ``capture_errors``)."""
        self._materialise()
        return self._errors[index]

    def trace(self, index: int) -> Trace:
        """The lane's trace; raises the lane's captured error if it failed."""
        self._materialise()
        error = self._errors[index]
        if error is not None:
            raise error
        trace = self._traces[index]
        assert trace is not None
        return trace

    def traces(self) -> list[Trace]:
        """All traces (every lane must have succeeded)."""
        return [self.trace(i) for i in range(self._n)]

    def _materialise(self) -> None:
        if self._extract is not None:
            extract, self._extract = self._extract, None
            extract(self)


# ---------------------------------------------------------------------------
# the batch simulator
# ---------------------------------------------------------------------------
class _ScalarLane:
    """Mutable per-lane state for the scalar engine."""

    __slots__ = ("index", "regs", "plan", "activations", "counter",
                 "event_index", "trace", "env", "kind", "rng", "step",
                 "finished")

    def __init__(self, index: int) -> None:
        self.index = index
        self.finished = False


class VectorSimulator:
    """Advance many simulation lanes against one compiled system.

    Parameters
    ----------
    system:
        A :class:`~repro.core.system.DataControlSystem` or an existing
        :class:`CompiledSystem` (compile once, run many batches).
    strict:
        Same meaning as on the interpreter: runtime conflicts raise
        (per lane) instead of being recorded.
    mode:
        ``"auto"`` (default: numpy for fresh batches of ≥ 8 lanes,
        scalar otherwise), ``"scalar"``, or ``"numpy"``.  Resumed runs
        always use the scalar engine — lanes resume from heterogeneous
        steps, which breaks array lockstep.
    """

    #: auto mode switches to the numpy engine at this many lanes
    _NUMPY_THRESHOLD = 8

    def __init__(self, system: DataControlSystem | CompiledSystem, *,
                 strict: bool = True, mode: str = "auto") -> None:
        if mode not in ("auto", "scalar", "numpy"):
            raise ValueError(
                f"unknown mode {mode!r}; choose 'auto', 'scalar' or 'numpy'")
        self.compiled = (system if isinstance(system, CompiledSystem)
                         else CompiledSystem(system))
        self.strict = strict
        self.mode = mode
        self._last_lanes: list | None = None
        self._last_step = 0

    # -- public API ------------------------------------------------------
    def run(self, lanes: Sequence[Lane], *, max_steps: int = 10_000,
            on_limit: str = "raise",
            from_checkpoint: VectorCheckpoint | Checkpoint | None = None,
            capture_errors: bool = False) -> BatchResult:
        """Advance every lane to termination, deadlock, or the budget.

        Mirrors :meth:`Simulator.run` per lane (same eager validation,
        same ``on_limit`` semantics, ``max_steps`` is an absolute step
        budget).  ``capture_errors=True`` records a failing lane's error
        on the result (``BatchResult.error``) instead of raising, so one
        bad lane cannot abort the batch.
        """
        if on_limit not in ("raise", "return"):
            raise ValueError(
                f"unknown on_limit {on_limit!r}; choose 'raise' or 'return'")
        if max_steps <= 0:
            raise ValueError(
                f"max_steps must be a positive step budget, got {max_steps}")
        lanes = list(lanes)
        kinds = [_policy_kind(lane.policy) for lane in lanes]
        if isinstance(from_checkpoint, Checkpoint):
            from_checkpoint = VectorCheckpoint(
                step=from_checkpoint.step, lanes=(from_checkpoint,))
        if from_checkpoint is not None and len(from_checkpoint.lanes) != len(lanes):
            raise DefinitionError(
                f"checkpoint carries {len(from_checkpoint.lanes)} lane(s) "
                f"but the batch has {len(lanes)}")
        use_numpy = (self.mode == "numpy"
                     or (self.mode == "auto"
                         and len(lanes) >= self._NUMPY_THRESHOLD))
        if from_checkpoint is not None:
            use_numpy = False  # heterogeneous resume steps: lockstep breaks
        if not lanes:
            return BatchResult(0, 0.0)
        if use_numpy:
            return self._run_numpy(lanes, kinds, max_steps, on_limit,
                                   capture_errors)
        return self._run_scalar(lanes, kinds, max_steps, on_limit,
                                from_checkpoint, capture_errors)

    def checkpoint(self) -> VectorCheckpoint:
        """Snapshot every lane of the last run (see :class:`VectorCheckpoint`).

        Valid after :meth:`run` returned with ``on_limit="return"`` —
        the same contract as the interpreter's checkpoint.
        """
        if self._last_lanes is None:
            raise DefinitionError("no batch has run yet; nothing to snapshot")
        return VectorCheckpoint(
            step=self._last_step,
            lanes=tuple(self._lane_checkpoint(entry)
                        for entry in self._last_lanes))

    # -- scalar engine ---------------------------------------------------
    def _fresh_scalar_lane(self, index: int, lane: Lane, kind: str
                           ) -> _ScalarLane:
        comp = self.compiled
        st = _ScalarLane(index)
        st.regs = list(comp.initial_values)
        st.plan = comp.plan_for(comp.initial_marking)
        st.activations = {}
        st.counter = 0
        st.event_index = {}
        st.trace = Trace()
        st.env = lane.environment
        st.kind = kind
        st.rng = getattr(lane.policy, "_rng", None)
        st.step = 0
        # initial activations + environment draws (interpreter order:
        # places sorted, then the union of draw sources sorted)
        draw: set[str] = set()
        for place in sorted(comp.initial_marking.marked_places()):
            st.counter += 1
            st.activations[place] = (st.counter, 0)
            draw.update(comp.place_draw[place])
        for vertex in sorted(draw):
            st.regs[comp.input_regs[vertex]] = st.env.draw(vertex)
        return st

    def _resumed_scalar_lane(self, index: int, lane: Lane, kind: str,
                             cp: Checkpoint) -> _ScalarLane:
        comp = self.compiled
        st = _ScalarLane(index)
        st.regs = list(comp.initial_values)
        for pid, reg in comp.state_ports:
            st.regs[reg] = cp.state.get(pid, UNDEF)
        st.plan = comp.plan_for(cp.marking)
        st.activations = {place: (ident, start)
                         for place, ident, start in cp.activations}
        st.counter = cp.activation_counter
        st.event_index = dict(cp.event_index)
        st.trace = Trace()
        st.env = lane.environment
        st.env.restore_cursors(cp.env_cursors)
        st.kind = kind
        st.rng = getattr(lane.policy, "_rng", None)
        if cp.rng_state is not None and st.rng is not None:
            st.rng.setstate(cp.rng_state)
        st.step = cp.step
        return st

    def _run_scalar(self, lanes, kinds, max_steps, on_limit,
                    from_checkpoint, capture_errors) -> BatchResult:
        wall_start = perf_counter()
        states: list[_ScalarLane] = []
        result = BatchResult(len(lanes), 0.0)
        end_step = 0
        for i, (lane, kind) in enumerate(zip(lanes, kinds)):
            # lane setup draws the initial environment values, which can
            # itself raise (e.g. an exhausted stream under policy
            # "raise") — it must sit inside the capture scope or one bad
            # lane poisons the whole batch
            st = None
            try:
                if from_checkpoint is not None:
                    st = self._resumed_scalar_lane(i, lane, kind,
                                                   from_checkpoint.lanes[i])
                else:
                    st = self._fresh_scalar_lane(i, lane, kind)
                self._drive_scalar_lane(st, max_steps, on_limit)
            except ReproError as error:
                if not capture_errors:
                    raise
                result._errors[i] = error
                if st is not None:
                    st.finished = True
            else:
                result._traces[i] = st.trace
            if st is not None:
                states.append(st)
                end_step = max(end_step, st.step)
        wall = perf_counter() - wall_start
        result._wall = wall
        for st in states:
            if st.trace.metrics is not None:
                st.trace.metrics.wall_seconds = wall
        self._last_lanes = states
        self._last_step = end_step
        return result

    def _drive_scalar_lane(self, st: _ScalarLane, max_steps: int,
                           on_limit: str) -> None:
        while not st.finished:
            if st.step >= max_steps:
                if on_limit == "raise":
                    raise ExecutionError(
                        f"simulation did not finish within {max_steps} steps")
                self._finalise_scalar(st)
                return
            if self._scalar_step(st):
                return
            st.step += 1

    def _finalise_scalar(self, st: _ScalarLane) -> None:
        st.finished = True
        trace = st.trace
        trace.step_count = st.step
        trace.final_marking = st.plan.marking
        trace.final_state = {pid: st.regs[reg]
                             for pid, reg in self.compiled.state_ports}
        trace.metrics = SimMetrics(fast_path=True, steps=st.step,
                                   firings=trace.num_firings)

    def _scalar_step(self, st: _ScalarLane) -> bool:
        """Advance one lane one step; True when the lane finished."""
        comp = self.compiled
        plan = st.plan
        step = st.step
        trace = st.trace
        regs = st.regs
        strict = self.strict
        if plan.empty:
            trace.terminated = True
            self._finalise_scalar(st)
            return True
        for detail in plan.conflict_details:
            trace.conflicts.append(ConflictRecord(step, "drive", detail))
            if strict:
                raise ExecutionError(detail)
        if plan.comb_error is not None:
            raise RuntimeFaultError(
                f"combinational loop closed at step {step}: "
                f"{plan.comb_error}", step=step, kind="comb_loop")
        for instr in plan.tape:
            instr(regs)
        # guard truth per enabled transition, as a bitmask
        bits = 0
        for i, gregs in enumerate(plan.guard_regs):
            if not gregs:
                bits |= 1 << i
            else:
                for r in gregs:
                    v = regs[r]
                    if v is not UNDEF and v:
                        bits |= 1 << i
                        break
        if plan.candidates:
            first = None
            for place, cand in plan.candidates:
                fireable = [t for t, i in cand if bits >> i & 1]
                if len(fireable) > 1:
                    record = ConflictRecord(
                        step, "choice",
                        f"transitions {fireable} compete for the token in "
                        f"place {place!r}")
                    trace.conflicts.append(record)
                    if first is None:
                        first = record
            if strict and first is not None:
                raise ExecutionError(first.detail)
        if st.kind == "rng":
            chosen = comp.seeded_chosen(plan, bits, st.rng)
            key = ("rng", chosen)
            effects = comp.effects_for(plan, key, chosen)
        else:
            key = (st.kind, bits)
            effects = plan.effects.get(key)
            if effects is None:
                chosen = (comp.maximal_chosen(plan, bits)
                          if st.kind == "max"
                          else comp.sequential_chosen(plan, bits))
                effects = comp.effects_for(plan, key, chosen)
        if not effects.chosen:
            # quiescent with tokens: deadlock; flush open activations
            for place in plan.marked_sorted:
                entry = st.activations.pop(place, None)
                if entry is None:  # pragma: no cover - defensive
                    continue
                ident, start = entry
                for arc_name, sreg in plan.completions[place].events:
                    index = st.event_index.get(arc_name, 0)
                    st.event_index[arc_name] = index + 1
                    trace.events.append(ExternalEvent(
                        arc=arc_name, value=regs[sreg], index=index,
                        state=place, activation=ident, start=start,
                        end=step))
            trace.deadlocked = True
            self._finalise_scalar(st)
            return True
        latch_plan: dict[PortId, tuple[Value, str, int]] = {}
        for place in effects.consumed:
            ident, start = st.activations.pop(place)
            completion = plan.completions[place]
            for arc_name, sreg in completion.events:
                index = st.event_index.get(arc_name, 0)
                st.event_index[arc_name] = index + 1
                trace.events.append(ExternalEvent(
                    arc=arc_name, value=regs[sreg], index=index, state=place,
                    activation=ident, start=start, end=step))
            for pid, sreg, ireg, mode, op in completion.latches:
                old = regs[sreg]
                incoming = regs[ireg]
                if mode == _LATCH_OUT:
                    new = incoming
                elif mode == _LATCH_PLAIN:
                    new = incoming if incoming is not UNDEF else old
                else:
                    computed = op.evaluate(old, incoming)
                    new = computed if computed is not UNDEF else old
                prev = latch_plan.get(pid)
                if prev is not None and prev[0] != new:
                    record = ConflictRecord(
                        step, "latch",
                        f"port {pid} latched by {prev[1]!r} and {place!r} "
                        f"in the same step")
                    trace.conflicts.append(record)
                    if strict:
                        raise ExecutionError(record.detail)
                latch_plan[pid] = (new, place, sreg)
                trace.latches.append(LatchRecord(step, pid, old, new, place))
        for _pid, (value, _place, sreg) in latch_plan.items():
            regs[sreg] = value
        trace.steps.append(list(effects.chosen))
        for place in effects.produced:
            st.counter += 1
            st.activations[place] = (st.counter, step + 1)
        for vertex, reg in effects.draws:
            regs[reg] = st.env.draw(vertex)
        st.plan = effects.next_plan
        return False

    def _lane_checkpoint(self, st) -> Checkpoint:
        comp = self.compiled
        if isinstance(st, _ScalarLane):
            return Checkpoint(
                step=st.step,
                marking=st.plan.marking,
                state={pid: st.regs[reg] for pid, reg in comp.state_ports},
                activations=tuple(sorted(
                    (place, ident, start)
                    for place, (ident, start) in st.activations.items())),
                activation_counter=st.counter,
                event_index=dict(st.event_index),
                env_cursors=st.env.cursors(),
                rng_state=st.rng.getstate() if st.rng is not None else None,
            )
        return st  # numpy engine stores ready-made Checkpoint objects

    # -- numpy engine ----------------------------------------------------
    def _run_numpy(self, lanes, kinds, max_steps, on_limit,
                   capture_errors) -> BatchResult:
        comp = self.compiled
        n = len(lanes)
        wall_start = perf_counter()
        values = np.zeros((comp.num_regs, n), dtype=np.int64)
        defined = np.zeros((comp.num_regs, n), dtype=bool)
        for reg, init in enumerate(comp.initial_values):
            if init is not UNDEF:
                values[reg, :] = _store_word(init)
                defined[reg, :] = True
        n_places = len(comp.places)
        act_ident = np.zeros((n_places, n), dtype=np.int64)
        act_start = np.zeros((n_places, n), dtype=np.int64)
        counters = np.zeros(n, dtype=np.int64)
        plan_ids = np.zeros(n, dtype=np.int64)
        kind_codes = np.array([("max", "seq", "rng").index(k)
                               for k in kinds], dtype=np.int64)
        rngs = [getattr(lane.policy, "_rng", None) for lane in lanes]
        envs = [lane.environment for lane in lanes]
        active = np.ones(n, dtype=bool)
        errors: list[ReproError | None] = [None] * n
        finals: list[dict | None] = [None] * n
        event_index: dict[str, np.ndarray] = {}
        chunks: list[tuple] = []

        initial_plan = comp.plan_for(comp.initial_marking)
        plan_ids[:] = initial_plan.pid
        # open the initial activations and draw initial inputs
        marked0 = sorted(comp.initial_marking.marked_places())
        draw0: set[str] = set()
        for place in marked0:
            pi = comp.place_index[place]
            counters += 1
            act_ident[pi, :] = counters
            act_start[pi, :] = 0
            draw0.update(comp.place_draw[place])
        sel_all = np.arange(n)

        def fail(lane_indices, error: ReproError) -> None:
            for j in lane_indices:
                j = int(j)
                if errors[j] is None:
                    errors[j] = error
                active[j] = False
            if not capture_errors:
                raise error

        def do_draws(lane_indices, draws) -> None:
            for j in lane_indices:
                j = int(j)
                env = envs[j]
                try:
                    for vertex, reg in draws:
                        value = env.draw(vertex)
                        if value is UNDEF:
                            values[reg, j] = 0
                            defined[reg, j] = False
                        else:
                            values[reg, j] = _store_word(value)
                            defined[reg, j] = True
                except ReproError as error:
                    fail([j], error)

        do_draws(sel_all, tuple((v, comp.input_regs[v])
                                for v in sorted(draw0)))

        full = slice(None)  # whole-row view: skips fancy-index copies
        step = 0
        while step < max_steps and active.any():
            live = np.flatnonzero(active)
            cl = plan_ids[live] * 4 + kind_codes[live]
            # common case: every live lane shares one (plan, policy) group
            first = int(cl[0])
            if (cl == first).all():
                groups = ((first, live),)
            else:
                groups = tuple((int(key), live[cl == key])
                               for key in np.unique(cl))
            for key, sel in groups:
                plan = comp.plan_registry[key // 4]
                kind = ("max", "seq", "rng")[key % 4]
                ix = full if len(sel) == n else sel
                if plan.empty:
                    for j in sel:
                        j = int(j)
                        finals[j] = {"status": "terminated", "step": step,
                                     "plan": plan}
                        active[j] = False
                    continue
                if plan.conflict_details:
                    if self.strict:
                        detail = plan.conflict_details[0]
                        chunks.append(("conflict", step, sel, "drive",
                                       (detail,)))
                        fail(sel, ExecutionError(detail))
                        continue
                    chunks.append(("conflict", step, sel, "drive",
                                   plan.conflict_details))
                if plan.comb_error is not None:
                    fail(sel, RuntimeFaultError(
                        f"combinational loop closed at step {step}: "
                        f"{plan.comb_error}", step=step, kind="comb_loop"))
                    continue
                try:
                    for instr in comp.vec_tape(plan):
                        instr(values, defined, ix)
                except ReproError as error:
                    fail(sel, error)
                    continue
                # guard truth matrix over enabled transitions
                n_enabled = len(plan.enabled)
                if n_enabled:
                    guard = np.zeros((n_enabled, len(sel)), dtype=bool)
                    for i, gregs in enumerate(plan.guard_regs):
                        if not gregs:
                            guard[i, :] = True
                        else:
                            row = guard[i]
                            for r in gregs:
                                row |= defined[r, ix] & (values[r, ix] != 0)
                    if plan.guard_weights is not None:
                        bits_arr = guard.T @ plan.guard_weights
                        b0 = int(bits_arr[0])
                        if (bits_arr == b0).all():
                            subgroups = ((b0, sel, ix),)
                        else:
                            subgroups = tuple(
                                (int(b), sel[bits_arr == b], None)
                                for b in np.unique(bits_arr))
                    else:  # pragma: no cover - >62 concurrent transitions
                        cols, inverse = np.unique(guard, axis=1,
                                                  return_inverse=True)
                        subgroups = []
                        for k in range(cols.shape[1]):
                            b = 0
                            for i in range(n_enabled):
                                if cols[i, k]:
                                    b |= 1 << i
                            subgroups.append((b, sel[inverse == k], None))
                else:
                    subgroups = ((0, sel, ix),)
                for bits, sel2, ix2 in subgroups:
                    self._numpy_subgroup(
                        plan, kind, bits, sel2,
                        sel2 if ix2 is None else ix2, step, values, defined,
                        act_ident, act_start, counters, plan_ids, rngs,
                        event_index, chunks, finals, active, fail, do_draws)
            step += 1

        leftovers = np.flatnonzero(active)
        if len(leftovers):
            if on_limit == "raise":
                fail(leftovers, ExecutionError(
                    f"simulation did not finish within {max_steps} steps"))
            else:
                for j in leftovers:
                    j = int(j)
                    finals[j] = {"status": "partial", "step": max_steps,
                                 "plan": comp.plan_registry[int(plan_ids[j])]}
                    active[j] = False
        wall = perf_counter() - wall_start

        result = BatchResult(n, wall)
        result._extract = self._make_extractor(
            n, chunks, finals, errors, values, defined, wall)
        # checkpoint support: freeze per-lane interpreter checkpoints
        self._last_step = step
        self._last_lanes = [
            self._numpy_checkpoint(j, plan_ids, finals, values, defined,
                                   act_ident, act_start, counters,
                                   event_index, envs, rngs, kinds, step)
            for j in range(n)]
        return result

    def _numpy_subgroup(self, plan, kind, bits, sel2, ix2, step, values,
                        defined, act_ident, act_start, counters, plan_ids,
                        rngs, event_index, chunks, finals, active, fail,
                        do_draws) -> None:
        comp = self.compiled
        # choice conflicts (identical records for every lane in a subgroup)
        if plan.candidates:
            records = []
            for place, cand in plan.candidates:
                fireable = [t for t, i in cand if bits >> i & 1]
                if len(fireable) > 1:
                    records.append(
                        f"transitions {fireable} compete for the token in "
                        f"place {place!r}")
            if records:
                if self.strict:
                    chunks.append(("conflict", step, sel2, "choice",
                                   (records[0],)))
                    fail(sel2, ExecutionError(records[0]))
                    return
                chunks.append(("conflict", step, sel2, "choice",
                               tuple(records)))
        if kind == "rng":
            # per-lane RNG streams: group lanes by the chosen step
            groups: dict[tuple[str, ...], list[int]] = {}
            for j in sel2:
                j = int(j)
                chosen = comp.seeded_chosen(plan, bits, rngs[j])
                groups.setdefault(chosen, []).append(j)
            parts = [(comp.effects_for(plan, ("rng", chosen), chosen),
                      np.array(lanes_, dtype=np.int64), None)
                     for chosen, lanes_ in groups.items()]
        else:
            key = (kind, bits)
            effects = plan.effects.get(key)
            if effects is None:
                chosen = (comp.maximal_chosen(plan, bits) if kind == "max"
                          else comp.sequential_chosen(plan, bits))
                effects = comp.effects_for(plan, key, chosen)
            parts = [(effects, sel2, ix2)]
        for effects, sel3, ix3 in parts:
            if ix3 is None:
                ix3 = sel3
            if not effects.chosen:
                # deadlock: flush events of every open activation
                for place in plan.marked_sorted:
                    pi = comp.place_index[place]
                    events = plan.completions[place].events
                    if events:
                        self._emit_events(events, place, pi, sel3, ix3,
                                          step, values, act_ident,
                                          act_start, defined, event_index,
                                          chunks)
                for j in sel3:
                    j = int(j)
                    finals[j] = {"status": "deadlocked", "step": step,
                                 "plan": plan}
                    active[j] = False
                continue
            latch_plan: dict[PortId, tuple] = {}
            conflict_chunks = []
            for place in effects.consumed:
                pi = comp.place_index[place]
                completion = plan.completions[place]
                if completion.events:
                    self._emit_events(completion.events, place, pi, sel3,
                                      ix3, step, values, act_ident,
                                      act_start, defined, event_index,
                                      chunks)
                for pid, sreg, ireg, mode, op in completion.latches:
                    old_v = values[sreg, ix3]
                    old_d = defined[sreg, ix3]
                    in_v = values[ireg, ix3]
                    in_d = defined[ireg, ix3]
                    if mode == _LATCH_OUT:
                        nv, nd = in_v, in_d
                    elif mode == _LATCH_PLAIN:
                        nv = np.where(in_d, in_v, old_v)
                        nd = in_d | old_d
                    elif op.name == "acc":
                        if ((np.abs(old_v) > _ADD_BOUND).any()
                                or (np.abs(in_v) > _ADD_BOUND).any()):
                            cv, cd = _python_eval(op, (old_v, in_v),
                                                  (old_d, in_d),
                                                  old_v.shape[0])
                        else:
                            cv = old_v + in_v
                            cd = old_d & in_d
                        nv = np.where(cd, cv, old_v)
                        nd = cd | old_d
                    else:
                        cv, cd = _python_eval(op, (old_v, in_v),
                                              (old_d, in_d),
                                              old_v.shape[0])
                        nv = np.where(cd, cv, old_v)
                        nd = cd | old_d
                    nv = np.where(nd, nv, 0)
                    nd = _owned(nd)
                    prev = latch_plan.get(pid)
                    if prev is not None:
                        pv, pd, prev_place, _ = prev
                        diff = (pd != nd) | (pd & nd & (pv != nv))
                        if diff.any():
                            detail = (f"port {pid} latched by "
                                      f"{prev_place!r} and {place!r} in "
                                      f"the same step")
                            conflict_chunks.append(
                                ("conflict", step, sel3[diff], "latch",
                                 (detail,)))
                    latch_plan[pid] = (nv, nd, place, sreg)
                    chunks.append(("latch", step, pid, place, sel3,
                                   _owned(old_v), _owned(old_d), nv, nd))
                    for chunk in conflict_chunks:
                        chunks.append(chunk)
                        if self.strict:
                            fail(chunk[2], ExecutionError(chunk[4][0]))
                    conflict_chunks = []
            # strict latch conflicts killed some lanes mid-step: their
            # remaining records are unobservable (trace() raises), so the
            # commit below harmlessly includes them
            for _pid, (nv, nd, _place, sreg) in latch_plan.items():
                values[sreg, ix3] = nv
                defined[sreg, ix3] = nd
            chunks.append(("steps", step, sel3, effects.chosen))
            for place in effects.produced:
                pi = comp.place_index[place]
                counters[ix3] += 1
                act_ident[pi, ix3] = counters[ix3]
                act_start[pi, ix3] = step + 1
            if effects.draws:
                do_draws(sel3, effects.draws)
            plan_ids[ix3] = effects.next_plan.pid

    def _emit_events(self, events, place, pi, sel, ix, step, values,
                     act_ident, act_start, defined, event_index,
                     chunks) -> None:
        idents = _owned(act_ident[pi, ix])
        starts = _owned(act_start[pi, ix])
        for arc_name, sreg in events:
            col = event_index.get(arc_name)
            if col is None:
                col = event_index[arc_name] = np.zeros(
                    act_ident.shape[1], dtype=np.int64)
            indices = col[ix].copy()
            col[ix] += 1
            chunks.append(("event", step, arc_name, place, sel,
                           _owned(values[sreg, ix]),
                           _owned(defined[sreg, ix]),
                           indices, idents, starts))

    def _make_extractor(self, n, chunks, finals, errors, values, defined,
                        wall):
        comp = self.compiled

        def extract(result: BatchResult) -> None:
            traces = [Trace() for _ in range(n)]
            steps_lists = [t.steps for t in traces]
            events_lists = [t.events for t in traces]
            latches_lists = [t.latches for t in traces]
            firings = [0] * n
            # millions of records: bypass the frozen-dataclass __init__
            # (five object.__setattr__ calls each) by populating __dict__
            # directly — equality/hash/repr are unaffected
            new_event = ExternalEvent.__new__
            new_latch = LatchRecord.__new__
            for chunk in chunks:
                tag = chunk[0]
                if tag == "steps":
                    _, _step, sel, chosen = chunk
                    # one shared list per chunk: Trace.steps entries are
                    # value-compared and never mutated by the library
                    chosen_list = list(chosen)
                    width = len(chosen_list)
                    for j in sel.tolist():
                        steps_lists[j].append(chosen_list)
                        firings[j] += width
                elif tag == "event":
                    (_, step_, arc_name, place, sel, vals, defs, indices,
                     idents, starts) = chunk
                    base = {"arc": arc_name, "value": None, "index": 0,
                            "state": place, "activation": 0, "start": 0,
                            "end": step_}
                    for j, value, is_def, index, ident, start in zip(
                            sel.tolist(), vals.tolist(), defs.tolist(),
                            indices.tolist(), idents.tolist(),
                            starts.tolist()):
                        record = new_event(ExternalEvent)
                        rd = record.__dict__
                        rd.update(base)
                        rd["value"] = value if is_def else UNDEF
                        rd["index"] = index
                        rd["activation"] = ident
                        rd["start"] = start
                        events_lists[j].append(record)
                elif tag == "latch":
                    _, step_, pid, place, sel, old_v, old_d, nv, nd = chunk
                    base = {"step": step_, "port": pid, "old": None,
                            "new": None, "state": place}
                    for j, ov, od, v, d in zip(
                            sel.tolist(), old_v.tolist(), old_d.tolist(),
                            nv.tolist(), nd.tolist()):
                        record = new_latch(LatchRecord)
                        rd = record.__dict__
                        rd.update(base)
                        rd["old"] = ov if od else UNDEF
                        rd["new"] = v if d else UNDEF
                        latches_lists[j].append(record)
                else:  # conflict
                    _, step_, sel, kind_, details = chunk
                    records = [ConflictRecord(step_, kind_, detail)
                               for detail in details]
                    for j in sel.tolist():
                        traces[j].conflicts.extend(records)
            for j in range(n):
                if errors[j] is not None:
                    result._errors[j] = errors[j]
                    continue
                final = finals[j]
                assert final is not None
                trace = traces[j]
                trace.terminated = final["status"] == "terminated"
                trace.deadlocked = final["status"] == "deadlocked"
                trace.step_count = final["step"]
                trace.final_marking = final["plan"].marking
                trace.final_state = {
                    pid: (int(values[reg, j]) if defined[reg, j] else UNDEF)
                    for pid, reg in comp.state_ports}
                trace.metrics = SimMetrics(fast_path=True,
                                           steps=trace.step_count,
                                           firings=firings[j],
                                           wall_seconds=wall)
                result._traces[j] = trace

        return extract

    def _numpy_checkpoint(self, j, plan_ids, finals, values, defined,
                          act_ident, act_start, counters, event_index,
                          envs, rngs, kinds, end_step) -> Checkpoint:
        comp = self.compiled
        final = finals[j]
        plan = (final["plan"] if final is not None
                else comp.plan_registry[int(plan_ids[j])])
        cp_step = final["step"] if final is not None else end_step
        marking = plan.marking
        rng = rngs[j]
        return Checkpoint(
            step=cp_step,
            marking=marking,
            state={pid: (int(values[reg, j]) if defined[reg, j] else UNDEF)
                   for pid, reg in comp.state_ports},
            activations=tuple(sorted(
                (place, int(act_ident[comp.place_index[place], j]),
                 int(act_start[comp.place_index[place], j]))
                for place in marking.marked_places())),
            activation_counter=int(counters[j]),
            event_index={arc: int(col[j])
                         for arc, col in event_index.items() if col[j] > 0},
            env_cursors=envs[j].cursors(),
            rng_state=rng.getstate() if rng is not None else None,
        )
