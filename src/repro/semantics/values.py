"""Re-export of the value domain (kept here for discoverability).

The implementation lives in :mod:`repro.values` — a leaf module with no
intra-package dependencies, so that the data path (which needs UNDEF and
strictness) never has to import the semantics package it is itself a
dependency of.
"""

from ..values import UNDEF, Value, as_word, is_defined, strict, truthy

__all__ = ["UNDEF", "Value", "is_defined", "truthy", "strict", "as_word"]
