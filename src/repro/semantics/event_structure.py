"""Extracting external event structures ``S(Γ)`` from executions.

Ties together the simulator (which observes the events) and the
structural ``⇒`` relation (which supplies the precedence condition of
Definition 3.5).  Also provides the *policy sweep* — running the same
system under several firing policies and checking that the observed event
structure is invariant, which is the operational content of
"properly designed systems are deterministic up to firing order".
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.events import EventStructure, build_event_structure
from ..core.system import DataControlSystem
from ..errors import ExecutionError
from .environment import Environment
from .policies import FiringPolicy, MaximalStepPolicy, RandomPolicy, SequentialPolicy
from .simulator import Simulator
from .trace import ConflictRecord, Trace


def event_structure_from_trace(system: DataControlSystem,
                               trace: Trace) -> EventStructure:
    """Assemble ``S(Γ)`` from a finished trace (Definition 3.5)."""
    relations = system.relations
    return build_event_structure(trace.events,
                                 state_precedes=relations.precedes)


def extract_event_structure(system: DataControlSystem,
                            environment: Environment | None = None, *,
                            policy: FiringPolicy | None = None,
                            max_steps: int = 10_000) -> EventStructure:
    """Simulate once and return the observed external event structure."""
    env = environment if environment is not None else Environment()
    simulator = Simulator(
        system, env, policy if policy is not None else MaximalStepPolicy()
    )
    trace = simulator.run(max_steps=max_steps)
    return event_structure_from_trace(system, trace)


def default_policy_sweep(seeds: Iterable[int] = (1, 2, 3)) -> list[FiringPolicy]:
    """The standard battery: maximal step, fully sequential, random seeds."""
    policies: list[FiringPolicy] = [MaximalStepPolicy(), SequentialPolicy()]
    policies.extend(RandomPolicy(seed) for seed in seeds)
    return policies


def policy_invariant_structure(system: DataControlSystem,
                               environment: Environment | None = None, *,
                               policies: Sequence[FiringPolicy] | None = None,
                               max_steps: int = 10_000) -> EventStructure:
    """Extract ``S(Γ)`` under several policies and insist they agree.

    For a properly designed system every firing policy must observe the
    same external event structure; a disagreement means the system is
    *not* conflict-free (or shares resources between parallel states) and
    is reported as an :class:`~repro.errors.ExecutionError` carrying the
    first difference.
    """
    env = environment if environment is not None else Environment()
    battery = list(policies) if policies is not None else default_policy_sweep()
    if not battery:
        raise ValueError("at least one policy is required")
    reference: EventStructure | None = None
    for policy in battery:
        structure = extract_event_structure(system, env.fork(), policy=policy,
                                            max_steps=max_steps)
        if reference is None:
            reference = structure
        elif not reference.semantically_equal(structure):
            raise ExecutionError(
                "event structure differs across firing policies — the system "
                "is not properly designed: "
                + (reference.explain_difference(structure) or "unknown")
            )
    assert reference is not None
    return reference


def observed_conflicts(system: DataControlSystem,
                       environment: Environment | None = None, *,
                       max_steps: int = 10_000) -> list[ConflictRecord]:
    """Dynamic rule-3 sweep: simulate leniently and report conflicts."""
    env = environment if environment is not None else Environment()
    simulator = Simulator(system, env, MaximalStepPolicy(), strict=False)
    trace = simulator.run(max_steps=max_steps, on_limit="return")
    return trace.conflicts
