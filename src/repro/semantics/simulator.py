"""The execution engine — Definition 3.1 made operational.

One simulation **step** is a two-phase affair:

1. **Combinational phase.**  The marking determines the set of *open*
   arcs (``C(S)`` for every marked ``S``).  Values propagate from
   state-holding ports (registers, environment pads) through the open
   arcs and combinational vertices to a fixpoint.  Because properly
   designed systems have no combinational loop inside a control state
   (Definition 3.2(4)), the fixpoint is a single topological pass.

2. **Control phase.**  Guards are evaluated on the fixpoint
   (Definition 3.1(4), OR over multiple guard ports); the firing policy
   picks a conflict-free step of fireable transitions; the step fires
   (Definition 3.1(5)).  Every place losing its token *completes an
   activation*: the sequential vertices it drives **latch** the value
   present at their input port ("the last defined value of the
   expression", Definition 3.1(9)), and the external arcs it controls
   emit **external events** stamped with the activation interval
   (Definition 3.4: the event happens while the state holds its token).

Undefined values (Definition 3.1(10)) arise when an input port has no
active arc, or combinationally from an undefined input.  A register whose
input is undefined at latch time *keeps its previous value* — the "last
defined value" reading.

Execution terminates when no tokens remain (Definition 3.1(6)); a
quiescent marking with tokens remaining is reported as a deadlock.
Activations still open at quiescence are flushed so their events are
observed (a terminal output state's event must not be lost).

The incremental fast path
-------------------------

With ``fast=True`` (the default) the engine memoizes everything the
marking determines — the open-arc set, the restricted topological COM
order with its consumer adjacency, and the drive-conflict analysis, all
keyed by the frozen set of marked places — and replaces the full
combinational pass with **dirty-set propagation**: only vertices
downstream of arcs whose open/closed status changed, or of state ports
whose value changed (latches, environment draws), are re-evaluated, in
the cached topological order.  The first visit to an open-arc set (a
topology-cache miss) falls back to a full pass, which re-bases the
persistent value map; a control state revisited inside a loop therefore
costs a few dict lookups plus the genuinely changed cone of logic.  The
fast path is observationally a drop-in: it produces the same
:class:`~repro.semantics.trace.Trace` as ``fast=False`` (the naive
full-recompute evaluator, kept as the reference).  Either way the trace
carries a :class:`~repro.semantics.profile.SimMetrics` record of what
the run cost.

Hooks
-----

Fault injectors and runtime monitors (:mod:`repro.faults`) attach to the
simulator through :class:`SimHook` — four optional methods called at
fixed points of the step loop (``pre_step``, ``post_evaluate``,
``resolve_value``, ``post_token_game``).  The contract that keeps the
fast path honest: hook dispatch is bound in ``__post_init__`` per
*overridden* method, so a simulator constructed without hooks executes
the exact same per-step code as before the hook interface existed (one
falsy check per call site), and traces are byte-identical.  A hook that
rewrites combinational values (``perturbs_values = True``) disables
dirty-set propagation for the whole run — every step takes the full
reference pass, so the persistent value map can never go stale under
injected values.

Checkpoints
-----------

:meth:`Simulator.checkpoint` captures the complete mutable run state —
``(step, marking, sequential state, open activations, event indices,
environment cursors)`` — and :meth:`Simulator.run` accepts
``from_checkpoint=`` to resume from such a snapshot: the continuation
trace extends the original run exactly (same events, same latches, same
final state) as if it had never been interrupted.  Snapshots also
capture a seeded firing policy's RNG stream position, so resumed
nondeterminism replays deterministically.  :mod:`repro.runtime.durable`
serialises checkpoints to disk (versioned, integrity-hashed) and offers
:class:`~repro.runtime.durable.CheckpointHook`, a :class:`SimHook` that
persists a snapshot every N steps — the crash-safety story for
long-running simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Mapping, Sequence

from ..core.events import ExternalEvent
from ..core.system import DataControlSystem
from ..datapath.operations import OpKind
from ..datapath.ports import PortId
from ..datapath.validate import topological_com_order
from ..errors import DefinitionError, ExecutionError, RuntimeFaultError, ValidationError
from ..petri.execution import TokenGameCache, fire_step, is_enabled
from ..petri.marking import Marking
from .environment import Environment
from .policies import FiringPolicy, MaximalStepPolicy
from .profile import SimMetrics
from .trace import ConflictRecord, LatchRecord, Trace
from .values import UNDEF, Value, truthy

#: One conflict-analysis entry: (conflicted input port, record detail).
_ConflictEntry = tuple[PortId, str]


@dataclass(frozen=True)
class StepPerturbation:
    """What a ``pre_step`` hook asks the simulator to change this step.

    ``marking`` (when not None) replaces the current marking — token
    loss, duplication and misrouting faults are expressed this way; the
    simulator reconciles open activations afterwards (an activation
    whose token vanished is dropped, events unemitted — that *is* the
    fault's observable damage — and a place gaining a token out of thin
    air opens a fresh activation).  ``open_arcs`` / ``close_arcs`` are
    applied to the open-arc set *after* the marking determines it — arc
    glitches that never touch the marking-keyed caches.
    """

    marking: Marking | None = None
    open_arcs: frozenset = frozenset()
    close_arcs: frozenset = frozenset()


class SimHook:
    """Base class for simulator instrumentation (faults and monitors).

    Subclasses override any of the four methods; the simulator binds
    only overridden methods, so an unused method costs nothing.  Hooks
    run in the order given to the :class:`Simulator`; each ``pre_step``
    hook sees the marking as perturbed by the hooks before it.

    Set :attr:`perturbs_values` to True when ``resolve_value`` rewrites
    combinational **port** values (e.g. stuck-at faults): it forces the
    full reference pass every step so no stale incremental value
    survives an injection window.  Guard-only rewrites (``kind ==
    "guard"``) do not need it.
    """

    #: True when this hook rewrites combinational port values.
    perturbs_values: bool = False

    def pre_step(self, sim: "Simulator", step: int,
                 marking: Marking) -> StepPerturbation | None:
        """Called before each step's combinational phase (may perturb)."""
        return None

    def post_evaluate(self, sim: "Simulator", step: int,
                      active: frozenset, out_values: dict) -> None:
        """Called after the combinational fixpoint of each step."""

    def resolve_value(self, sim: "Simulator", step: int, kind: str,
                      target, value: Value) -> Value:
        """Value tap: ``kind`` is ``"port"`` (target: :class:`PortId`,
        needs :attr:`perturbs_values`) or ``"guard"`` (target: the
        transition name, value: the evaluated guard boolean)."""
        return value

    def post_token_game(self, sim: "Simulator", step: int, marking: Marking,
                        chosen: list) -> None:
        """Called after the policy chose the step to fire (before firing).

        An empty ``chosen`` with a non-empty marking is the deadlock
        about to be reported — the last call of the run."""


@dataclass(frozen=True)
class Checkpoint:
    """Complete mutable state of a simulation run at one step boundary.

    Captured by :meth:`Simulator.checkpoint`, consumed by
    :meth:`Simulator.run(from_checkpoint=...) <Simulator.run>`.  The
    snapshot is self-contained: sequential state, open activations (with
    their identities and start steps, so resumed events carry the same
    activation labels), per-arc event indices, the environment's
    consumption cursors, and — when the firing policy draws from a
    seeded RNG (:class:`~repro.semantics.policies.SeededMaximalPolicy`)
    — the RNG's exact stream position, so a resumed run makes the same
    conflict-resolution choices the uninterrupted run would have made.
    """

    step: int
    marking: Marking
    state: Mapping[PortId, Value]
    activations: tuple[tuple[str, int, int], ...]  # (place, ident, start)
    activation_counter: int
    event_index: Mapping[str, int]
    env_cursors: Mapping[str, int]
    rng_state: tuple | None = None  # policy RNG state (random.Random)


@dataclass
class _Activation:
    """A token-holding interval of one control state."""

    ident: int
    place: str
    start: int


@dataclass
class Simulator:
    """Single-run executor for a :class:`DataControlSystem`.

    Parameters
    ----------
    system:
        The data/control flow system Γ.  Not mutated.
    environment:
        Value sequences for the input vertices; forked by the caller when
        the same environment is reused across runs.
    policy:
        The firing policy (default: maximal step — synchronous hardware).
    strict:
        When True (default), runtime faults — bus-drive conflicts and
        double latches — raise :class:`~repro.errors.ExecutionError`.
        When False they are recorded in the trace and the affected value
        becomes UNDEF, which lets the analysis tooling *observe* improper
        designs instead of dying on them.
    fast:
        When True (default), use the incremental fast path: per-marking
        caches plus dirty-set combinational propagation (see the module
        docstring).  When False, recompute everything from scratch each
        step — the naive reference evaluator.  Both produce identical
        traces.
    hooks:
        Instrumentation attached to this run (see :class:`SimHook`).
        Empty by default; with no hooks the step loop is unchanged.
    backend:
        ``"interpreter"`` (default) runs the step loop here;
        ``"vector"`` compiles the system once and delegates to
        :class:`repro.semantics.vector.VectorSimulator` (single-lane
        batch, scalar engine) — byte-identical traces, typically an
        order of magnitude faster on loop-heavy designs.  The vector
        backend supports no hooks and only the maximal-step,
        sequential, and seeded-maximal policies.
    """

    system: DataControlSystem
    environment: Environment = field(default_factory=Environment)
    policy: FiringPolicy = field(default_factory=MaximalStepPolicy)
    strict: bool = True
    fast: bool = True
    hooks: Sequence[SimHook] = ()
    backend: str = "interpreter"

    #: Soft bound on each memo table (markings are typically few; this
    #: only guards against pathological unbounded-marking nets).
    _CACHE_LIMIT = 1 << 16

    def __post_init__(self) -> None:
        if self.backend not in ("interpreter", "vector"):
            raise ValueError(
                f"unknown backend {self.backend!r}; choose 'interpreter' "
                "or 'vector'")
        self._vector_sim = None  # lazy per-Simulator compiled backend
        self._dp = self.system.datapath
        self._net = self.system.net
        # initial sequential state: SEQ ports from vertex init; INPUT 'out'
        # ports and OUTPUT 'snk' record ports start undefined
        self._state: dict[PortId, Value] = {}
        for vertex in self._dp.vertices.values():
            for port in vertex.out_ports:
                op = vertex.operation(port)
                if op.kind in (OpKind.SEQ, OpKind.INPUT, OpKind.OUTPUT):
                    self._state[PortId(vertex.name, port)] = vertex.initial_value(port)
        self._event_index: dict[str, int] = {}
        self._activation_counter = 0
        self._external = self.system.external_arc_names()
        # guard-port dependencies are marking-independent: freeze them once
        self._guard_ports = {t: self.system.guard_ports(t)
                             for t in self._net.transitions}
        self._engine = TokenGameCache(self._net)
        if self.fast:
            bind = getattr(self.policy, "bind", None)
            if callable(bind):
                bind(self._engine)
        # fast-path memo tables, keyed by frozen marked-place / open-arc sets
        self._arcs_cache: dict[frozenset[str], frozenset[str]] = {}
        self._topo_cache: dict[
            frozenset[str],
            tuple[tuple[str, ...], dict[PortId, tuple[str, ...]]]] = {}
        self._conflict_cache: dict[
            frozenset[str],
            tuple[tuple[_ConflictEntry, ...], frozenset[PortId]]] = {}
        # incremental-evaluation state (valid between consecutive steps)
        self._out_values: dict[PortId, Value] = {}
        self._prev_active: frozenset[str] | None = None
        self._prev_conflicted: frozenset[PortId] = frozenset()
        self._dirty_state: set[PortId] = set()
        # hook dispatch: bind only *overridden* methods so an absent hook
        # costs one falsy check per call site and nothing else
        self._pre_hooks = []
        self._eval_hooks = []
        self._value_hooks = []
        self._game_hooks = []
        self._force_full = False
        for hook in self.hooks:
            if not isinstance(hook, SimHook):
                raise DefinitionError(
                    f"hook {hook!r} does not subclass SimHook")
            cls = type(hook)
            if cls.pre_step is not SimHook.pre_step:
                self._pre_hooks.append(hook.pre_step)
            if cls.post_evaluate is not SimHook.post_evaluate:
                self._eval_hooks.append(hook.post_evaluate)
            if cls.resolve_value is not SimHook.resolve_value:
                self._value_hooks.append(hook.resolve_value)
            if cls.post_token_game is not SimHook.post_token_game:
                self._game_hooks.append(hook.post_token_game)
            if getattr(hook, "perturbs_values", False):
                self._force_full = True
        self._port_taps = self._force_full and bool(self._value_hooks)
        # run-local state mirrored onto the instance so hooks and
        # checkpoint() can observe it mid-run
        self._current_step = 0
        self._current_marking = self._net.initial_marking()
        self._current_activations: dict[str, _Activation] = {}
        self._arc_overrides: tuple[frozenset[str], frozenset[str]] | None = None
        self.current_trace: Trace | None = None
        self._reset_run_stats()

    def _reset_run_stats(self) -> None:
        self._hits = {"active_arcs": 0, "com_order": 0, "conflicts": 0}
        self._misses = {"active_arcs": 0, "com_order": 0, "conflicts": 0}
        self._port_evals = 0
        self._dirty_evals = 0
        self._full_passes = 0
        self._incremental_passes = 0

    # ------------------------------------------------------------------
    # combinational phase
    # ------------------------------------------------------------------
    def _active_arcs(self, marked: frozenset[str]) -> frozenset[str]:
        """Open arcs (``C(S)`` for every marked ``S``), memoized."""
        if self.fast:
            cached = self._arcs_cache.get(marked)
            if cached is not None:
                self._hits["active_arcs"] += 1
                return cached
            self._misses["active_arcs"] += 1
        active: set[str] = set()
        for place in marked:
            active.update(self.system.control_arcs(place))
        result = frozenset(active)
        if self.fast and len(self._arcs_cache) < self._CACHE_LIMIT:
            self._arcs_cache[marked] = result
        return result

    def _conflict_analysis(self, active: frozenset[str]
                           ) -> tuple[tuple[_ConflictEntry, ...],
                                      frozenset[PortId]]:
        """Input ports driven by more than one distinct active source."""
        drivers: dict[PortId, set[PortId]] = {}
        for name in active:
            arc = self._dp.arc(name)
            drivers.setdefault(arc.target, set()).add(arc.source)
        entries = tuple(
            (port, f"input port {port} driven by {sorted(map(str, sources))}")
            for port, sources in sorted(drivers.items(),
                                        key=lambda item: str(item[0]))
            if len(sources) > 1
        )
        return entries, frozenset(port for port, _ in entries)

    def _drive_conflicts(self, active: frozenset[str], step: int,
                         trace: Trace) -> frozenset[PortId]:
        """Record this step's drive conflicts; return the conflicted ports."""
        if self.fast:
            cached = self._conflict_cache.get(active)
            if cached is None:
                self._misses["conflicts"] += 1
                cached = self._conflict_analysis(active)
                if len(self._conflict_cache) < self._CACHE_LIMIT:
                    self._conflict_cache[active] = cached
            else:
                self._hits["conflicts"] += 1
        else:
            cached = self._conflict_analysis(active)
        entries, conflicted = cached
        for _port, detail in entries:
            record = ConflictRecord(step, "drive", detail)
            trace.conflicts.append(record)
            if self.strict:
                raise ExecutionError(record.detail)
        return conflicted

    def _topo_order(self, active: frozenset[str]) -> list[str]:
        """Topological COM order, with combinational loops reported as a
        runtime fault (they can only close at runtime through an injected
        arc glitch — statically looping systems fail validation long
        before simulation)."""
        try:
            return topological_com_order(self._dp, active)
        except ValidationError as error:
            raise RuntimeFaultError(
                f"combinational loop closed at step {self._current_step}: "
                f"{error}",
                step=self._current_step, kind="comb_loop") from error

    def _com_topology(self, active: frozenset[str]
                      ) -> tuple[tuple[tuple[str, ...],
                                       dict[PortId, tuple[str, ...]]], bool]:
        """Restricted topological COM order + consumer adjacency, memoized.

        Returns ``((order, consumers), cache_hit)``.  ``consumers`` maps a
        source port to the COM vertices it feeds through *active* arcs —
        the edge relation dirty-set propagation walks.
        """
        cached = self._topo_cache.get(active)
        if cached is not None:
            self._hits["com_order"] += 1
            return cached, True
        self._misses["com_order"] += 1
        order = tuple(self._topo_order(active))
        com = set(order)
        fanout: dict[PortId, list[str]] = {}
        for name in active:
            arc = self._dp.arc(name)
            if arc.target.vertex in com:
                fanout.setdefault(arc.source, []).append(arc.target.vertex)
        result = (order, {src: tuple(dsts) for src, dsts in fanout.items()})
        if len(self._topo_cache) < self._CACHE_LIMIT:
            self._topo_cache[active] = result
        return result, False

    def _full_pass(self, active: frozenset[str], conflicted: frozenset[PortId],
                   order: tuple[str, ...] | list[str]
                   ) -> tuple[dict[PortId, Value], dict[PortId, Value]]:
        """Evaluate every COM vertex from scratch (the reference pass)."""
        out_values: dict[PortId, Value] = dict(self._state)
        in_values: dict[PortId, Value] = {}
        taps = self._port_taps
        if taps:
            # value-perturbing hooks tap every port value, state included
            for port in list(out_values):
                out_values[port] = self._tap_port(port, out_values[port])

        def resolve(port: PortId) -> Value:
            if port in in_values:
                return in_values[port]
            if port in conflicted:
                in_values[port] = UNDEF
                return UNDEF
            value: Value = UNDEF
            for arc in self._dp.arcs_into(port):
                if arc.name in active:
                    value = out_values.get(arc.source, UNDEF)
                    break  # conflicts were pre-detected; one active source
            in_values[port] = value
            return value

        for name in order:
            vertex = self._dp.vertex(name)
            args = [resolve(p) for p in vertex.input_ids()]
            for port in vertex.out_ports:
                self._port_evals += 1
                pid = PortId(name, port)
                value = vertex.operation(port).evaluate(*args)
                if taps:
                    value = self._tap_port(pid, value)
                out_values[pid] = value
        return out_values, in_values

    def _tap_port(self, port: PortId, value: Value) -> Value:
        """Apply every value hook's port tap, in hook order."""
        for resolve in self._value_hooks:
            value = resolve(self, self._current_step, "port", port, value)
        return value

    def _incremental_pass(self, active: frozenset[str],
                          conflicted: frozenset[PortId],
                          order: tuple[str, ...],
                          consumers: dict[PortId, tuple[str, ...]]
                          ) -> tuple[dict[PortId, Value], dict[PortId, Value]]:
        """Re-evaluate only the dirty cone of the persistent value map.

        A vertex is dirty when (a) a state port it consumes changed value
        since the last step, (b) an arc into it flipped open/closed, or
        (c) its drive-conflict status flipped; dirtiness then propagates
        along active arcs, which the cached topological order visits in
        dependency order.  Every untouched port keeps its value from the
        previous fixpoint — by construction that value is exactly what a
        full pass would recompute.
        """
        out_values = self._out_values
        assert self._prev_active is not None
        dirty: set[str] = set()
        for port in self._dirty_state:
            out_values[port] = self._state[port]
            dirty.update(consumers.get(port, ()))
        for name in active.symmetric_difference(self._prev_active):
            target = self._dp.arc(name).target.vertex
            if self._dp.vertex(target).is_combinational:
                dirty.add(target)
        for port in conflicted.symmetric_difference(self._prev_conflicted):
            if self._dp.vertex(port.vertex).is_combinational:
                dirty.add(port.vertex)
        in_values: dict[PortId, Value] = {}

        def resolve(port: PortId) -> Value:
            if port in in_values:
                return in_values[port]
            if port in conflicted:
                in_values[port] = UNDEF
                return UNDEF
            value: Value = UNDEF
            for arc in self._dp.arcs_into(port):
                if arc.name in active:
                    value = out_values.get(arc.source, UNDEF)
                    break
            in_values[port] = value
            return value

        for name in order:
            if name not in dirty:
                continue
            vertex = self._dp.vertex(name)
            args = [resolve(p) for p in vertex.input_ids()]
            for port in vertex.out_ports:
                self._port_evals += 1
                self._dirty_evals += 1
                pid = PortId(name, port)
                new = vertex.operation(port).evaluate(*args)
                if out_values.get(pid, _UNSET) != new:
                    out_values[pid] = new
                    dirty.update(consumers.get(pid, ()))
        return out_values, in_values

    def _evaluate(self, active: frozenset[str], conflicted: frozenset[PortId]
                  ) -> tuple[dict[PortId, Value], dict[PortId, Value]]:
        """Compute the combinational fixpoint.

        Returns ``(out_values, in_values)``: the value present at every
        output port and at every input port under the current marking.
        """
        if not self.fast:
            self._full_passes += 1
            return self._full_pass(active, conflicted,
                                   self._topo_order(active))
        (order, consumers), topo_hit = self._com_topology(active)
        if topo_hit and self._prev_active is not None and not self._force_full:
            self._incremental_passes += 1
            out_values, in_values = self._incremental_pass(
                active, conflicted, order, consumers)
        else:
            # cache miss (or first step): fall back to the full pass,
            # re-basing the persistent value map from the state dict
            self._full_passes += 1
            out_values, in_values = self._full_pass(active, conflicted, order)
            self._out_values = out_values
        self._prev_active = active
        self._prev_conflicted = conflicted
        self._dirty_state.clear()
        return out_values, in_values

    # ------------------------------------------------------------------
    # control phase helpers
    # ------------------------------------------------------------------
    def _guard_eval(self, out_values: dict[PortId, Value]):
        guard_ports = self._guard_ports
        value_hooks = self._value_hooks

        if not value_hooks:
            def evaluate(transition: str) -> bool:
                ports = guard_ports[transition]
                if not ports:
                    return True
                return any(truthy(out_values.get(p, UNDEF)) for p in ports)
            return evaluate

        def evaluate(transition: str) -> bool:
            ports = guard_ports[transition]
            value = (True if not ports
                     else any(truthy(out_values.get(p, UNDEF)) for p in ports))
            for resolve in value_hooks:
                value = bool(resolve(self, self._current_step, "guard",
                                     transition, value))
            return value
        return evaluate

    def _record_choice_conflicts(self, marking: Marking, guard_eval,
                                 step: int, trace: Trace) -> None:
        """Dynamic Definition 3.2(3) check: competing fireable transitions."""
        if self.fast:
            enabled_set = set(self._engine.enabled(marking))

            def enabled(t: str) -> bool:
                return t in enabled_set
        else:
            def enabled(t: str) -> bool:
                return is_enabled(self._net, marking, t)
        # sorted: frozenset iteration order is hash-dependent, and with
        # several conflicted places in one step the record order (and the
        # conflict strict mode raises first) must not vary across runs
        for place in sorted(marking.marked_places()):
            if marking[place] >= 2:
                continue
            fireable = [
                t for t in self._net.postset(place)
                if enabled(t) and guard_eval(t)
            ]
            if len(fireable) > 1:
                trace.conflicts.append(ConflictRecord(
                    step, "choice",
                    f"transitions {sorted(fireable)} compete for the token "
                    f"in place {place!r}",
                ))

    def _start_activations(self, places: list[str], step: int,
                           activations: dict[str, _Activation]) -> None:
        """Open activations and draw environment values for input reads."""
        draw: set[str] = set()
        for place in places:
            self._activation_counter += 1
            activations[place] = _Activation(self._activation_counter, place, step)
            for arc_name in self.system.control_arcs(place):
                source = self._dp.arc(arc_name).source
                if self._dp.vertex(source.vertex).is_input_vertex:
                    draw.add(source.vertex)
        for vertex in sorted(draw):
            port = PortId(vertex, self._dp.vertex(vertex).out_ports[0])
            value = self.environment.draw(vertex)
            if self.fast and self._state.get(port, UNDEF) != value:
                self._dirty_state.add(port)
            self._state[port] = value

    def _complete_activation(self, place: str, step: int,
                             activation: _Activation,
                             out_values: dict[PortId, Value],
                             in_values_resolve,
                             latch_plan: dict[PortId, tuple[Value, str]] | None,
                             trace: Trace) -> None:
        """Emit events and plan latches for a departing control state.

        ``latch_plan=None`` emits events only — used when flushing the
        activations still open at quiescence, whose tokens never depart
        and whose registers therefore never commit.
        """
        arcs = self.system.control_arcs(place)
        # external events (Definition 3.4)
        for arc_name in sorted(arcs & self._external):
            arc = self._dp.arc(arc_name)
            value = out_values.get(arc.source, UNDEF)
            index = self._event_index.get(arc_name, 0)
            self._event_index[arc_name] = index + 1
            trace.events.append(ExternalEvent(
                arc=arc_name, value=value, index=index, state=place,
                activation=activation.ident, start=activation.start, end=step,
            ))
        # latch plan (Definition 3.1(9))
        if latch_plan is None:
            return
        for arc_name in sorted(arcs):
            arc = self._dp.arc(arc_name)
            vertex = self._dp.vertex(arc.target.vertex)
            if not vertex.is_sequential:
                continue
            incoming = in_values_resolve(arc.target)
            for port_name in vertex.out_ports:
                op = vertex.operation(port_name)
                if op.kind not in (OpKind.SEQ, OpKind.OUTPUT):
                    continue
                port = PortId(vertex.name, port_name)
                old = self._state.get(port, UNDEF)
                if op.kind is OpKind.OUTPUT:
                    new = incoming
                elif op.func is None:  # plain register
                    new = incoming if incoming is not UNDEF else old
                else:  # stateful function, e.g. accumulator
                    computed = op.evaluate(old, incoming)
                    new = computed if computed is not UNDEF else old
                if port in latch_plan and latch_plan[port][0] != new:
                    record = ConflictRecord(
                        step, "latch",
                        f"port {port} latched by {latch_plan[port][1]!r} and "
                        f"{place!r} in the same step",
                    )
                    trace.conflicts.append(record)
                    if self.strict:
                        raise ExecutionError(record.detail)
                latch_plan[port] = (new, place)
                trace.latches.append(LatchRecord(step, port, old, new, place))

    # ------------------------------------------------------------------
    # hook and checkpoint plumbing
    # ------------------------------------------------------------------
    def state_value(self, port: PortId) -> Value:
        """Current sequential-state value of a port (UNDEF if stateless)."""
        return self._state.get(port, UNDEF)

    def poke_state(self, port: PortId, value: Value) -> None:
        """Overwrite one sequential state value (SEU-style perturbation).

        Only ports that carry state (SEQ registers, input pads, output
        records) may be poked; the change is flagged dirty so the
        incremental fast path re-evaluates its combinational cone.
        """
        if port not in self._state:
            raise DefinitionError(
                f"port {port} holds no sequential state; only SEQ/INPUT/"
                f"OUTPUT ports can be poked")
        if self.fast and self._state[port] != value:
            self._dirty_state.add(port)
        self._state[port] = value

    def _apply_pre_hooks(self, step: int, marking: Marking,
                         activations: dict[str, _Activation]) -> Marking:
        """Run every pre-step hook; apply marking/arc perturbations."""
        opens: set[str] = set()
        closes: set[str] = set()
        for hook in self._pre_hooks:
            perturbation = hook(self, step, marking)
            if perturbation is None:
                continue
            if (perturbation.marking is not None
                    and perturbation.marking != marking):
                marking = perturbation.marking
                self._reconcile_activations(marking, step, activations)
                self._current_marking = marking
            opens |= perturbation.open_arcs
            closes |= perturbation.close_arcs
        self._arc_overrides = ((frozenset(opens), frozenset(closes))
                               if opens or closes else None)
        return marking

    def _reconcile_activations(self, marking: Marking, step: int,
                               activations: dict[str, _Activation]) -> None:
        """Re-align open activations after a marking perturbation.

        A place that lost its token has its activation dropped *without*
        completing it — the events and latches it would have produced are
        lost, which is exactly the injected fault's damage.  A place that
        gained a token out of thin air opens a fresh activation (drawing
        environment values for any input reads it controls).
        """
        for place in list(activations):
            if marking[place] <= 0:
                del activations[place]
        added = sorted(place for place in marking.marked_places()
                       if place not in activations)
        if added:
            self._start_activations(added, step, activations)

    def _run_vector(self, max_steps: int, on_limit: str,
                    from_checkpoint: Checkpoint | None) -> Trace:
        """Delegate this run to the compiled vector backend (one lane)."""
        if self.hooks:
            raise DefinitionError(
                "the vector backend does not support simulator hooks; "
                "use backend='interpreter' for hook-instrumented runs")
        from .vector import Lane, VectorSimulator
        if self._vector_sim is None:
            self._vector_sim = VectorSimulator(self.system,
                                               strict=self.strict,
                                               mode="scalar")
        result = self._vector_sim.run(
            [Lane(self.environment, self.policy)], max_steps=max_steps,
            on_limit=on_limit, from_checkpoint=from_checkpoint)
        return result.trace(0)

    def checkpoint(self) -> Checkpoint:
        """Snapshot the complete mutable run state (see :class:`Checkpoint`).

        Valid at any step boundary: from inside a ``pre_step`` hook
        (capturing the state the step will start from) or after
        :meth:`run` returned with ``on_limit="return"`` (capturing the
        state the next run would continue from).
        """
        if self.backend == "vector":
            if self._vector_sim is None:
                raise DefinitionError(
                    "no vector-backend run has happened yet; nothing to "
                    "snapshot")
            return self._vector_sim.checkpoint().lane(0)
        rng = getattr(self.policy, "_rng", None)
        return Checkpoint(
            step=self._current_step,
            marking=self._current_marking,
            state=dict(self._state),
            activations=tuple(sorted(
                (a.place, a.ident, a.start)
                for a in self._current_activations.values())),
            activation_counter=self._activation_counter,
            event_index=dict(self._event_index),
            env_cursors=self.environment.cursors(),
            rng_state=rng.getstate() if rng is not None else None,
        )

    def _restore(self, checkpoint: Checkpoint
                 ) -> tuple[Marking, dict[str, _Activation], int]:
        """Load a checkpoint into this simulator's mutable state."""
        self._state = dict(checkpoint.state)
        self._event_index = dict(checkpoint.event_index)
        self._activation_counter = checkpoint.activation_counter
        self.environment.restore_cursors(checkpoint.env_cursors)
        if checkpoint.rng_state is not None:
            rng = getattr(self.policy, "_rng", None)
            if rng is not None:
                rng.setstate(checkpoint.rng_state)
        activations = {
            place: _Activation(ident, place, start)
            for place, ident, start in checkpoint.activations
        }
        return checkpoint.marking, activations, checkpoint.step

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, max_steps: int = 10_000, on_limit: str = "raise",
            from_checkpoint: Checkpoint | None = None) -> Trace:
        """Execute until termination, deadlock, or the step budget.

        ``on_limit`` — ``"raise"`` (default) raises
        :class:`~repro.errors.ExecutionError` when ``max_steps`` is
        reached; ``"return"`` returns the partial trace instead (with
        neither ``terminated`` nor ``deadlocked`` set).  Both arguments
        are validated eagerly — an unknown ``on_limit`` or a
        non-positive ``max_steps`` raises :class:`ValueError` before any
        stepping happens.  The returned trace carries a fresh
        :class:`~repro.semantics.profile.SimMetrics` for this run.

        ``from_checkpoint`` resumes a run from a
        :meth:`checkpoint` snapshot instead of the initial marking; the
        step counter continues from the snapshot (``max_steps`` stays an
        *absolute* budget), and the continuation trace extends the
        original run exactly.
        """
        if on_limit not in ("raise", "return"):
            raise ValueError(
                f"unknown on_limit {on_limit!r}; choose 'raise' or 'return'")
        if max_steps <= 0:
            raise ValueError(
                f"max_steps must be a positive step budget, got {max_steps}")
        if self.backend == "vector":
            return self._run_vector(max_steps, on_limit, from_checkpoint)
        self._reset_run_stats()
        # force a full-pass re-base on the first step of every run
        self._prev_active = None
        self._dirty_state.clear()
        engine_hits0, engine_misses0 = self._engine.hits, self._engine.misses
        wall_start = perf_counter()
        comb_seconds = 0.0
        ctrl_seconds = 0.0
        peak_marked = 0

        trace = Trace()
        if from_checkpoint is not None:
            marking, activations, step = self._restore(from_checkpoint)
        else:
            marking = self._net.initial_marking()
            activations = {}
            self._start_activations(sorted(marking.marked_places()), 0,
                                    activations)
            step = 0
        self.current_trace = trace
        self._current_activations = activations

        while step < max_steps:
            self._current_step = step
            self._current_marking = marking
            if self._pre_hooks:
                marking = self._apply_pre_hooks(step, marking, activations)
            if marking.is_empty():
                trace.terminated = True
                break
            marked = marking.marked_places()
            if len(marked) > peak_marked:
                peak_marked = len(marked)
            phase_start = perf_counter()
            active = self._active_arcs(marked)
            if self._arc_overrides is not None:
                opens, closes = self._arc_overrides
                active = frozenset((active | opens) - closes)
            conflicted = self._drive_conflicts(active, step, trace)
            out_values, in_values = self._evaluate(active, conflicted)
            if self._eval_hooks:
                for observe in self._eval_hooks:
                    observe(self, step, active, out_values)
            comb_seconds += perf_counter() - phase_start
            phase_start = perf_counter()

            def resolve(port: PortId, _iv=in_values, _act=active,
                        _ov=out_values, _cf=conflicted) -> Value:
                if port in _iv:
                    return _iv[port]
                if port in _cf:
                    return UNDEF
                for arc in self._dp.arcs_into(port):
                    if arc.name in _act:
                        return _ov.get(arc.source, UNDEF)
                return UNDEF

            guard_eval = self._guard_eval(out_values)
            self._record_choice_conflicts(marking, guard_eval, step, trace)
            if self.strict and any(c.kind == "choice" and c.step == step
                                   for c in trace.conflicts):
                bad = next(c for c in trace.conflicts
                           if c.kind == "choice" and c.step == step)
                raise ExecutionError(bad.detail)

            chosen = self.policy.choose(self._net, marking, guard_eval)
            if self._game_hooks:
                for observe in self._game_hooks:
                    observe(self, step, marking, chosen)
            if not chosen:
                # quiescent with tokens: deadlock; flush open activations
                for place in sorted(marking.marked_places()):
                    activation = activations.pop(place, None)
                    if activation is not None:
                        self._complete_activation(
                            place, step, activation, out_values, resolve,
                            None, trace,
                        )
                trace.deadlocked = True
                ctrl_seconds += perf_counter() - phase_start
                break

            consumed: list[str] = []
            for transition in chosen:
                consumed.extend(self._net.preset(transition))
            latch_plan: dict[PortId, tuple[Value, str]] = {}
            for place in sorted(set(consumed)):
                activation = activations.pop(place, None)
                if activation is None:  # pragma: no cover - defensive
                    raise ExecutionError(
                        f"token leaves place {place!r} with no activation open"
                    )
                self._complete_activation(place, step, activation, out_values,
                                          resolve, latch_plan, trace)
            for port, (value, _state) in latch_plan.items():
                if self.fast and self._state.get(port, UNDEF) != value:
                    self._dirty_state.add(port)
                self._state[port] = value

            marking = fire_step(self._net, marking, chosen, guard_eval)
            trace.steps.append(list(chosen))
            produced = sorted(
                p for p in marking.marked_places() if p not in activations
            )
            self._start_activations(produced, step + 1, activations)
            ctrl_seconds += perf_counter() - phase_start
            step += 1
        else:
            if on_limit == "raise":
                raise ExecutionError(
                    f"simulation did not finish within {max_steps} steps"
                )

        self._current_step = step
        self._current_marking = marking
        trace.step_count = step
        trace.final_marking = marking
        trace.final_state = dict(self._state)
        trace.metrics = SimMetrics(
            fast_path=self.fast,
            steps=step,
            firings=trace.num_firings,
            port_evaluations=self._port_evals,
            dirty_evaluations=self._dirty_evals,
            full_passes=self._full_passes,
            incremental_passes=self._incremental_passes,
            peak_marked_places=peak_marked,
            combinational_seconds=comb_seconds,
            control_seconds=ctrl_seconds,
            wall_seconds=perf_counter() - wall_start,
            cache_hits=dict(self._hits,
                            token_game=self._engine.hits - engine_hits0),
            cache_misses=dict(self._misses,
                              token_game=self._engine.misses - engine_misses0),
        )
        return trace


class _Unset:
    """Sentinel distinct from every value, including UNDEF."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()


def simulate(system: DataControlSystem,
             environment: Environment | None = None, *,
             policy: FiringPolicy | None = None,
             max_steps: int = 10_000,
             strict: bool = True,
             fast: bool = True,
             on_limit: str = "raise",
             hooks: Sequence[SimHook] = (),
             backend: str = "interpreter") -> Trace:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        system,
        environment if environment is not None else Environment(),
        policy if policy is not None else MaximalStepPolicy(),
        strict,
        fast,
        hooks,
        backend=backend,
    ).run(max_steps=max_steps, on_limit=on_limit)
