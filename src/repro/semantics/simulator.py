"""The execution engine — Definition 3.1 made operational.

One simulation **step** is a two-phase affair:

1. **Combinational phase.**  The marking determines the set of *open*
   arcs (``C(S)`` for every marked ``S``).  Values propagate from
   state-holding ports (registers, environment pads) through the open
   arcs and combinational vertices to a fixpoint.  Because properly
   designed systems have no combinational loop inside a control state
   (Definition 3.2(4)), the fixpoint is a single topological pass.

2. **Control phase.**  Guards are evaluated on the fixpoint
   (Definition 3.1(4), OR over multiple guard ports); the firing policy
   picks a conflict-free step of fireable transitions; the step fires
   (Definition 3.1(5)).  Every place losing its token *completes an
   activation*: the sequential vertices it drives **latch** the value
   present at their input port ("the last defined value of the
   expression", Definition 3.1(9)), and the external arcs it controls
   emit **external events** stamped with the activation interval
   (Definition 3.4: the event happens while the state holds its token).

Undefined values (Definition 3.1(10)) arise when an input port has no
active arc, or combinationally from an undefined input.  A register whose
input is undefined at latch time *keeps its previous value* — the "last
defined value" reading.

Execution terminates when no tokens remain (Definition 3.1(6)); a
quiescent marking with tokens remaining is reported as a deadlock.
Activations still open at quiescence are flushed so their events are
observed (a terminal output state's event must not be lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import ExternalEvent
from ..core.system import DataControlSystem
from ..datapath.operations import OpKind
from ..datapath.ports import PortId
from ..datapath.validate import topological_com_order
from ..errors import ExecutionError
from ..petri.execution import fire_step, is_enabled
from ..petri.marking import Marking
from .environment import Environment
from .policies import FiringPolicy, MaximalStepPolicy
from .trace import ConflictRecord, LatchRecord, Trace
from .values import UNDEF, Value, truthy


@dataclass
class _Activation:
    """A token-holding interval of one control state."""

    ident: int
    place: str
    start: int


@dataclass
class Simulator:
    """Single-run executor for a :class:`DataControlSystem`.

    Parameters
    ----------
    system:
        The data/control flow system Γ.  Not mutated.
    environment:
        Value sequences for the input vertices; forked by the caller when
        the same environment is reused across runs.
    policy:
        The firing policy (default: maximal step — synchronous hardware).
    strict:
        When True (default), runtime faults — bus-drive conflicts and
        double latches — raise :class:`~repro.errors.ExecutionError`.
        When False they are recorded in the trace and the affected value
        becomes UNDEF, which lets the analysis tooling *observe* improper
        designs instead of dying on them.
    """

    system: DataControlSystem
    environment: Environment = field(default_factory=Environment)
    policy: FiringPolicy = field(default_factory=MaximalStepPolicy)
    strict: bool = True

    def __post_init__(self) -> None:
        self._dp = self.system.datapath
        self._net = self.system.net
        # initial sequential state: SEQ ports from vertex init; INPUT 'out'
        # ports and OUTPUT 'snk' record ports start undefined
        self._state: dict[PortId, Value] = {}
        for vertex in self._dp.vertices.values():
            for port in vertex.out_ports:
                op = vertex.operation(port)
                if op.kind in (OpKind.SEQ, OpKind.INPUT, OpKind.OUTPUT):
                    self._state[PortId(vertex.name, port)] = vertex.initial_value(port)
        self._event_index: dict[str, int] = {}
        self._activation_counter = 0
        self._external = self.system.external_arc_names()

    # ------------------------------------------------------------------
    # combinational phase
    # ------------------------------------------------------------------
    def _active_arcs(self, marking: Marking) -> set[str]:
        active: set[str] = set()
        for place in marking.marked_places():
            active.update(self.system.control_arcs(place))
        return active

    def _drive_conflicts(self, active: set[str], step: int,
                         trace: Trace) -> set[PortId]:
        """Input ports driven by more than one distinct active source."""
        drivers: dict[PortId, set[PortId]] = {}
        for name in active:
            arc = self._dp.arc(name)
            drivers.setdefault(arc.target, set()).add(arc.source)
        conflicted: set[PortId] = set()
        for port, sources in drivers.items():
            if len(sources) > 1:
                conflicted.add(port)
                record = ConflictRecord(
                    step, "drive",
                    f"input port {port} driven by {sorted(map(str, sources))}",
                )
                trace.conflicts.append(record)
                if self.strict:
                    raise ExecutionError(record.detail)
        return conflicted

    def _evaluate(self, active: set[str], conflicted: set[PortId]
                  ) -> tuple[dict[PortId, Value], dict[PortId, Value]]:
        """Compute the combinational fixpoint.

        Returns ``(out_values, in_values)``: the value present at every
        output port and at every input port under the current marking.
        """
        out_values: dict[PortId, Value] = dict(self._state)
        in_values: dict[PortId, Value] = {}

        def resolve(port: PortId) -> Value:
            if port in in_values:
                return in_values[port]
            if port in conflicted:
                in_values[port] = UNDEF
                return UNDEF
            value: Value = UNDEF
            for arc in self._dp.arcs_into(port):
                if arc.name in active:
                    value = out_values.get(arc.source, UNDEF)
                    break  # conflicts were pre-detected; one active source
            in_values[port] = value
            return value

        for name in topological_com_order(self._dp, active):
            vertex = self._dp.vertex(name)
            args = [resolve(p) for p in vertex.input_ids()]
            for port in vertex.out_ports:
                out_values[PortId(name, port)] = vertex.operation(port).evaluate(*args)
        return out_values, in_values

    # ------------------------------------------------------------------
    # control phase helpers
    # ------------------------------------------------------------------
    def _guard_eval(self, out_values: dict[PortId, Value]):
        def evaluate(transition: str) -> bool:
            ports = self.system.guard_ports(transition)
            if not ports:
                return True
            return any(truthy(out_values.get(p, UNDEF)) for p in ports)
        return evaluate

    def _record_choice_conflicts(self, marking: Marking, guard_eval,
                                 step: int, trace: Trace) -> None:
        """Dynamic Definition 3.2(3) check: competing fireable transitions."""
        for place in marking.marked_places():
            if marking[place] >= 2:
                continue
            fireable = [
                t for t in self._net.postset(place)
                if is_enabled(self._net, marking, t) and guard_eval(t)
            ]
            if len(fireable) > 1:
                trace.conflicts.append(ConflictRecord(
                    step, "choice",
                    f"transitions {sorted(fireable)} compete for the token "
                    f"in place {place!r}",
                ))

    def _start_activations(self, places: list[str], step: int,
                           activations: dict[str, _Activation]) -> None:
        """Open activations and draw environment values for input reads."""
        draw: set[str] = set()
        for place in places:
            self._activation_counter += 1
            activations[place] = _Activation(self._activation_counter, place, step)
            for arc_name in self.system.control_arcs(place):
                source = self._dp.arc(arc_name).source
                if self._dp.vertex(source.vertex).is_input_vertex:
                    draw.add(source.vertex)
        for vertex in sorted(draw):
            port = PortId(vertex, self._dp.vertex(vertex).out_ports[0])
            self._state[port] = self.environment.draw(vertex)

    def _complete_activation(self, place: str, step: int,
                             activation: _Activation,
                             out_values: dict[PortId, Value],
                             in_values_resolve,
                             latch_plan: dict[PortId, tuple[Value, str]] | None,
                             trace: Trace) -> None:
        """Emit events and plan latches for a departing control state.

        ``latch_plan=None`` emits events only — used when flushing the
        activations still open at quiescence, whose tokens never depart
        and whose registers therefore never commit.
        """
        arcs = self.system.control_arcs(place)
        # external events (Definition 3.4)
        for arc_name in sorted(arcs & self._external):
            arc = self._dp.arc(arc_name)
            value = out_values.get(arc.source, UNDEF)
            index = self._event_index.get(arc_name, 0)
            self._event_index[arc_name] = index + 1
            trace.events.append(ExternalEvent(
                arc=arc_name, value=value, index=index, state=place,
                activation=activation.ident, start=activation.start, end=step,
            ))
        # latch plan (Definition 3.1(9))
        if latch_plan is None:
            return
        for arc_name in sorted(arcs):
            arc = self._dp.arc(arc_name)
            vertex = self._dp.vertex(arc.target.vertex)
            if not vertex.is_sequential:
                continue
            incoming = in_values_resolve(arc.target)
            for port_name in vertex.out_ports:
                op = vertex.operation(port_name)
                if op.kind not in (OpKind.SEQ, OpKind.OUTPUT):
                    continue
                port = PortId(vertex.name, port_name)
                old = self._state.get(port, UNDEF)
                if op.kind is OpKind.OUTPUT:
                    new = incoming
                elif op.func is None:  # plain register
                    new = incoming if incoming is not UNDEF else old
                else:  # stateful function, e.g. accumulator
                    computed = op.evaluate(old, incoming)
                    new = computed if computed is not UNDEF else old
                if port in latch_plan and latch_plan[port][0] != new:
                    record = ConflictRecord(
                        step, "latch",
                        f"port {port} latched by {latch_plan[port][1]!r} and "
                        f"{place!r} in the same step",
                    )
                    trace.conflicts.append(record)
                    if self.strict:
                        raise ExecutionError(record.detail)
                latch_plan[port] = (new, place)
                trace.latches.append(LatchRecord(step, port, old, new, place))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, max_steps: int = 10_000, on_limit: str = "raise") -> Trace:
        """Execute until termination, deadlock, or the step budget.

        ``on_limit`` — ``"raise"`` (default) raises
        :class:`~repro.errors.ExecutionError` when ``max_steps`` is
        reached; ``"return"`` returns the partial trace instead (with
        neither ``terminated`` nor ``deadlocked`` set).
        """
        trace = Trace()
        marking = self._net.initial_marking()
        activations: dict[str, _Activation] = {}
        self._start_activations(sorted(marking.marked_places()), 0, activations)

        step = 0
        while step < max_steps:
            if marking.is_empty():
                trace.terminated = True
                break
            active = self._active_arcs(marking)
            conflicted = self._drive_conflicts(active, step, trace)
            out_values, in_values = self._evaluate(active, conflicted)

            def resolve(port: PortId, _iv=in_values, _act=active,
                        _ov=out_values, _cf=conflicted) -> Value:
                if port in _iv:
                    return _iv[port]
                if port in _cf:
                    return UNDEF
                for arc in self._dp.arcs_into(port):
                    if arc.name in _act:
                        return _ov.get(arc.source, UNDEF)
                return UNDEF

            guard_eval = self._guard_eval(out_values)
            self._record_choice_conflicts(marking, guard_eval, step, trace)
            if self.strict and any(c.kind == "choice" and c.step == step
                                   for c in trace.conflicts):
                bad = next(c for c in trace.conflicts
                           if c.kind == "choice" and c.step == step)
                raise ExecutionError(bad.detail)

            chosen = self.policy.choose(self._net, marking, guard_eval)
            if not chosen:
                # quiescent with tokens: deadlock; flush open activations
                for place in sorted(marking.marked_places()):
                    activation = activations.pop(place, None)
                    if activation is not None:
                        self._complete_activation(
                            place, step, activation, out_values, resolve,
                            None, trace,
                        )
                trace.deadlocked = True
                break

            consumed: list[str] = []
            for transition in chosen:
                consumed.extend(self._net.preset(transition))
            latch_plan: dict[PortId, tuple[Value, str]] = {}
            for place in sorted(set(consumed)):
                activation = activations.pop(place, None)
                if activation is None:  # pragma: no cover - defensive
                    raise ExecutionError(
                        f"token leaves place {place!r} with no activation open"
                    )
                self._complete_activation(place, step, activation, out_values,
                                          resolve, latch_plan, trace)
            for port, (value, _state) in latch_plan.items():
                self._state[port] = value

            marking = fire_step(self._net, marking, chosen, guard_eval)
            trace.steps.append(list(chosen))
            produced = sorted(
                p for p in marking.marked_places() if p not in activations
            )
            self._start_activations(produced, step + 1, activations)
            step += 1
        else:
            if on_limit == "raise":
                raise ExecutionError(
                    f"simulation did not finish within {max_steps} steps"
                )

        trace.step_count = step
        trace.final_marking = marking
        trace.final_state = dict(self._state)
        return trace


def simulate(system: DataControlSystem,
             environment: Environment | None = None, *,
             policy: FiringPolicy | None = None,
             max_steps: int = 10_000,
             strict: bool = True,
             on_limit: str = "raise") -> Trace:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        system,
        environment if environment is not None else Environment(),
        policy if policy is not None else MaximalStepPolicy(),
        strict,
    ).run(max_steps=max_steps, on_limit=on_limit)
