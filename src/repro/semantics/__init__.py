"""Execution semantics of the data/control flow model (Section 3).

* :mod:`~repro.semantics.values` — the value domain with ⊥ (UNDEF);
* :class:`~repro.semantics.environment.Environment` — predefined input
  sequences per input vertex;
* :class:`~repro.semantics.simulator.Simulator` — the two-phase
  interpreter of Definition 3.1;
* :mod:`~repro.semantics.policies` — firing-choice strategies;
* :mod:`~repro.semantics.profile` — :class:`~repro.semantics.profile.
  SimMetrics` step-level observability and the naive-vs-fast-path
  comparison harness;
* :mod:`~repro.semantics.event_structure` — extraction of ``S(Γ)``;
* :mod:`~repro.semantics.vector` — the compiled batch backend:
  :func:`~repro.semantics.vector.compile_system` lowers a system to
  flat numeric form once and
  :class:`~repro.semantics.vector.VectorSimulator` advances many lanes
  per step with byte-identical traces.
"""

from .environment import Environment
from .event_structure import (
    default_policy_sweep,
    event_structure_from_trace,
    extract_event_structure,
    observed_conflicts,
    policy_invariant_structure,
)
from .policies import (
    FiringPolicy,
    FixedOrderPolicy,
    MaximalStepPolicy,
    RandomPolicy,
    ScriptedPolicy,
    SeededMaximalPolicy,
    SequentialPolicy,
)
from .profile import (
    SimMetrics,
    compare_paths,
    profile_simulation,
    traces_equivalent,
)
from .simulator import Checkpoint, SimHook, Simulator, StepPerturbation, simulate
from .trace import ConflictRecord, LatchRecord, Trace
from .values import UNDEF, Value, as_word, is_defined, strict, truthy
from .vector import (
    BatchResult,
    CompiledSystem,
    Lane,
    VectorCheckpoint,
    VectorSimulator,
    compile_system,
)

__all__ = [
    "UNDEF",
    "Value",
    "is_defined",
    "truthy",
    "strict",
    "as_word",
    "Environment",
    "Simulator",
    "SimHook",
    "StepPerturbation",
    "Checkpoint",
    "simulate",
    "SimMetrics",
    "profile_simulation",
    "compare_paths",
    "traces_equivalent",
    "Trace",
    "LatchRecord",
    "ConflictRecord",
    "FiringPolicy",
    "MaximalStepPolicy",
    "SeededMaximalPolicy",
    "SequentialPolicy",
    "RandomPolicy",
    "FixedOrderPolicy",
    "ScriptedPolicy",
    "extract_event_structure",
    "event_structure_from_trace",
    "policy_invariant_structure",
    "default_policy_sweep",
    "observed_conflicts",
    "CompiledSystem",
    "VectorSimulator",
    "VectorCheckpoint",
    "BatchResult",
    "Lane",
    "compile_system",
]
