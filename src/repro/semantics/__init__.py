"""Execution semantics of the data/control flow model (Section 3).

* :mod:`~repro.semantics.values` — the value domain with ⊥ (UNDEF);
* :class:`~repro.semantics.environment.Environment` — predefined input
  sequences per input vertex;
* :class:`~repro.semantics.simulator.Simulator` — the two-phase
  interpreter of Definition 3.1;
* :mod:`~repro.semantics.policies` — firing-choice strategies;
* :mod:`~repro.semantics.event_structure` — extraction of ``S(Γ)``.
"""

from .environment import Environment
from .event_structure import (
    default_policy_sweep,
    event_structure_from_trace,
    extract_event_structure,
    observed_conflicts,
    policy_invariant_structure,
)
from .policies import (
    FiringPolicy,
    FixedOrderPolicy,
    MaximalStepPolicy,
    RandomPolicy,
    ScriptedPolicy,
    SequentialPolicy,
)
from .simulator import Simulator, simulate
from .trace import ConflictRecord, LatchRecord, Trace
from .values import UNDEF, Value, as_word, is_defined, strict, truthy

__all__ = [
    "UNDEF",
    "Value",
    "is_defined",
    "truthy",
    "strict",
    "as_word",
    "Environment",
    "Simulator",
    "simulate",
    "Trace",
    "LatchRecord",
    "ConflictRecord",
    "FiringPolicy",
    "MaximalStepPolicy",
    "SequentialPolicy",
    "RandomPolicy",
    "FixedOrderPolicy",
    "ScriptedPolicy",
    "extract_event_structure",
    "event_structure_from_trace",
    "policy_invariant_structure",
    "default_policy_sweep",
    "observed_conflicts",
]
