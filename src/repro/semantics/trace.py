"""Execution traces: everything a simulation run observed.

A :class:`Trace` records the fired steps, the latch operations, any
runtime conflicts, and — most importantly — the external events, from
which the event structure (Definition 3.5) is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import ExternalEvent
from ..datapath.ports import PortId
from ..petri.marking import Marking
from .profile import SimMetrics
from .values import Value


@dataclass(frozen=True)
class LatchRecord:
    """One sequential update: ``vertex.port ← value`` at a given step."""

    step: int
    port: PortId
    old: Value
    new: Value
    state: str  # the controlling place whose departure caused the latch


@dataclass(frozen=True)
class ConflictRecord:
    """A runtime fault observed in non-strict mode.

    ``kind`` is one of ``"drive"`` (two active arcs driving one input
    port), ``"latch"`` (two states latching one register in the same
    step), or ``"choice"`` (two fireable transitions competing for a
    token — a dynamic conflict in the sense of Definition 3.2(3)).
    """

    step: int
    kind: str
    detail: str


@dataclass
class Trace:
    """Complete record of one simulation run."""

    events: list[ExternalEvent] = field(default_factory=list)
    steps: list[list[str]] = field(default_factory=list)
    latches: list[LatchRecord] = field(default_factory=list)
    conflicts: list[ConflictRecord] = field(default_factory=list)
    final_marking: Marking = field(default_factory=Marking)
    final_state: dict[PortId, Value] = field(default_factory=dict)
    terminated: bool = False   # True iff no tokens remained (Def. 3.1(6))
    deadlocked: bool = False   # True iff tokens remained but nothing fired
    step_count: int = 0
    # what the run cost (never part of trace equality: two runs are the
    # same run even when one hit caches the other had to populate)
    metrics: SimMetrics | None = field(default=None, compare=False)

    @property
    def num_firings(self) -> int:
        return sum(len(step) for step in self.steps)

    def events_on(self, arc: str) -> list[ExternalEvent]:
        """Events observed on one external arc, in occurrence order."""
        return sorted((e for e in self.events if e.arc == arc),
                      key=lambda e: e.index)

    def output_values(self, arc: str) -> list[Value]:
        """Value sequence observed on one external arc."""
        return [e.value for e in self.events_on(arc)]

    def outputs_by_vertex(self) -> dict[str, list[Value]]:
        """Values delivered to each output pad, keyed by pad vertex name.

        Convenience for examples/tests: groups events on arcs whose target
        vertex is an output pad.
        """
        grouped: dict[str, list[tuple[int, Value]]] = {}
        for event in self.events:
            grouped.setdefault(event.arc, []).append((event.index, event.value))
        return {arc: [v for _, v in sorted(pairs)] for arc, pairs in grouped.items()}

    def summary(self) -> str:
        status = ("terminated" if self.terminated
                  else "deadlocked" if self.deadlocked else "running")
        return (
            f"Trace({status} after {self.step_count} steps, "
            f"{self.num_firings} firings, {len(self.events)} external events, "
            f"{len(self.conflicts)} conflicts)"
        )
