"""The environment: predefined input value sequences (Section 3).

The paper fixes the environment when comparing systems: "we assume that a
sequence of such values is implicitly predefined for each input vertex,
when an external event structure is specified."  An :class:`Environment`
holds exactly those sequences — one per input vertex — plus a policy for
what happens when a sequence runs dry (loops whose iteration count depends
on data would otherwise need unboundedly long sequences):

* ``"raise"`` — raise :class:`~repro.errors.EnvironmentExhausted`;
* ``"hold"``  — keep returning the last value (a steady input line);
* ``"cycle"`` — restart the sequence from the beginning;
* ``"undef"`` — return :data:`~repro.semantics.values.UNDEF`.

Environments are *forked* before each simulation so two systems under
comparison consume identical, independent streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import DefinitionError, EnvironmentExhausted
from .values import UNDEF, Value, as_word

_POLICIES = ("raise", "hold", "cycle", "undef")


@dataclass
class Environment:
    """Per-input-vertex value sequences with consumption cursors."""

    sequences: dict[str, list[Value]] = field(default_factory=dict)
    exhausted_policy: str = "raise"
    _cursor: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.exhausted_policy not in _POLICIES:
            raise DefinitionError(
                f"unknown exhausted policy {self.exhausted_policy!r}; "
                f"choose one of {_POLICIES}"
            )
        self.sequences = {
            vertex: [as_word(v) for v in values]
            for vertex, values in self.sequences.items()
        }

    @classmethod
    def of(cls, *, exhausted_policy: str = "raise",
           **sequences: Sequence[Value]) -> "Environment":
        """Keyword-argument constructor: ``Environment.of(a=[1,2], b=[3])``."""
        return cls({k: list(v) for k, v in sequences.items()},
                   exhausted_policy=exhausted_policy)

    # ------------------------------------------------------------------
    def provide(self, vertex: str, values: Iterable[Value]) -> None:
        """Define (replace) the sequence for one input vertex."""
        self.sequences[vertex] = [as_word(v) for v in values]
        self._cursor.pop(vertex, None)

    def draw(self, vertex: str) -> Value:
        """Consume and return the next value for an input vertex."""
        sequence = self.sequences.get(vertex, [])
        position = self._cursor.get(vertex, 0)
        if position < len(sequence):
            self._cursor[vertex] = position + 1
            return sequence[position]
        # exhausted
        if self.exhausted_policy == "hold" and sequence:
            return sequence[-1]
        if self.exhausted_policy == "cycle" and sequence:
            self._cursor[vertex] = 1
            return sequence[0]
        if self.exhausted_policy == "undef":
            return UNDEF
        raise EnvironmentExhausted(vertex, position)

    def consumed(self, vertex: str) -> int:
        """How many values have been drawn for a vertex."""
        return self._cursor.get(vertex, 0)

    def cursors(self) -> dict[str, int]:
        """Snapshot of all consumption cursors (for checkpointing)."""
        return dict(self._cursor)

    def restore_cursors(self, cursors: Mapping[str, int]) -> None:
        """Restore a cursor snapshot taken by :meth:`cursors`.

        Together with the sequences (which never change mid-run) the
        cursors are the environment's entire mutable state, so restoring
        them rewinds the environment to the snapshot point exactly.
        """
        self._cursor = {vertex: int(position)
                        for vertex, position in cursors.items()}

    def fork(self) -> "Environment":
        """An identical environment with fresh cursors."""
        return Environment(
            {k: list(v) for k, v in self.sequences.items()},
            exhausted_policy=self.exhausted_policy,
        )

    def __contains__(self, vertex: str) -> bool:
        return vertex in self.sequences
