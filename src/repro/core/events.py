"""External events and event structures — Definitions 3.3–3.6.

The semantics of a data/control flow system is its **external event
structure** ``S(Γ) = (E, ≺, ≍)``:

* an *external event* is a pair ``(A_i, w)`` — an external arc and the
  value passed over it — labelled with the controlling state and occurring
  while that state holds a token (Definition 3.4);
* ``≺`` (precedence): ``E_i ≺ E_j`` iff ``E_i`` occurs before ``E_j`` and
  their controlling states satisfy ``S_i ⇒ S_j`` (Definition 3.5);
* ``≍`` (concurrency): events that occur at the same time under the same
  controlling state;
* events related by neither are *casual* — they may occur in any order,
  and forcing an order on them would over-constrain the implementation
  (the paper's argument against total-order models).

Event structures are **compared without internal labels**: equality uses
per-arc value sequences plus the two relations over ``(arc, occurrence)``
keys, because the semantics of a system is defined purely by its
interaction with the environment (Definition 3.6) — the names of internal
control states must not influence equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..values import Value

#: Canonical event key: which external arc, which occurrence on that arc.
EventKey = tuple[str, int]


@dataclass(frozen=True)
class ExternalEvent:
    """One occurrence of a value passing over an external arc.

    Attributes
    ----------
    arc:
        Name of the external arc.
    value:
        The value exchanged (an int, or UNDEF when the design exposes an
        undefined value — itself usually a bug worth observing).
    index:
        Occurrence number of this arc (0-based), i.e. its position in the
        arc's value sequence.
    state:
        The controlling Petri-net place (the label of Definition 3.4).
    activation:
        Identifier of the controlling state's token-holding interval; two
        events share an activation iff they were opened by the same token.
    start / end:
        Simulation steps at which the controlling token arrived and left.
    """

    arc: str
    value: Value
    index: int
    state: str
    activation: int
    start: int
    end: int

    @property
    def key(self) -> EventKey:
        return (self.arc, self.index)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.arc}[{self.index}]={self.value!r} @ {self.state})"


@dataclass(frozen=True)
class EventStructure:
    """``S(Γ) = (E, ≺, ≍)`` in canonical, comparable form.

    ``precedence`` holds ordered pairs of event keys; ``concurrency``
    holds unordered pairs (as ``frozenset`` of two keys).
    """

    events: tuple[ExternalEvent, ...]
    precedence: frozenset[tuple[EventKey, EventKey]]
    concurrency: frozenset[frozenset[EventKey]]

    # ------------------------------------------------------------------
    def value_sequences(self) -> dict[str, tuple[Value, ...]]:
        """Per-arc value sequences in occurrence order."""
        sequences: dict[str, list[Value]] = {}
        for event in sorted(self.events, key=lambda e: (e.arc, e.index)):
            sequences.setdefault(event.arc, []).append(event.value)
        return {arc: tuple(values) for arc, values in sequences.items()}

    def keys(self) -> frozenset[EventKey]:
        return frozenset(event.key for event in self.events)

    def casual_pairs(self) -> frozenset[frozenset[EventKey]]:
        """Unordered event pairs in neither ``≺`` nor ``≍`` — the freedom
        a partial-order model preserves and a total-order model destroys."""
        keys = sorted(self.keys())
        related: set[frozenset[EventKey]] = set(self.concurrency)
        for a, b in self.precedence:
            related.add(frozenset((a, b)))
        out: set[frozenset[EventKey]] = set()
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                pair = frozenset((a, b))
                if pair not in related:
                    out.add(pair)
        return frozenset(out)

    # ------------------------------------------------------------------
    def semantically_equal(self, other: "EventStructure") -> bool:
        """Definition 4.1 equality: same events, same ``≺``, same ``≍``.

        Internal labels (state names, activation ids, timestamps) are
        excluded — only externally observable structure is compared.
        """
        return (
            self.value_sequences() == other.value_sequences()
            and self.precedence == other.precedence
            and self.concurrency == other.concurrency
        )

    def explain_difference(self, other: "EventStructure") -> str | None:
        """Human-readable description of the first difference, or None."""
        mine, theirs = self.value_sequences(), other.value_sequences()
        if set(mine) != set(theirs):
            only_mine = sorted(set(mine) - set(theirs))
            only_theirs = sorted(set(theirs) - set(mine))
            return (f"different external arcs: only-left={only_mine}, "
                    f"only-right={only_theirs}")
        for arc in sorted(mine):
            if mine[arc] != theirs[arc]:
                return (f"value sequence differs on arc {arc!r}: "
                        f"{mine[arc]!r} vs {theirs[arc]!r}")
        if self.precedence != other.precedence:
            extra = sorted(self.precedence - other.precedence)
            missing = sorted(other.precedence - self.precedence)
            return (f"precedence differs: only-left={extra[:5]}, "
                    f"only-right={missing[:5]}")
        if self.concurrency != other.concurrency:
            extra2 = [tuple(sorted(p)) for p in self.concurrency - other.concurrency]
            missing2 = [tuple(sorted(p)) for p in other.concurrency - self.concurrency]
            return (f"concurrency differs: only-left={sorted(extra2)[:5]}, "
                    f"only-right={sorted(missing2)[:5]}")
        return None

    def __len__(self) -> int:
        return len(self.events)


def build_event_structure(
    events: Iterable[ExternalEvent],
    precedes_states: Mapping[str, frozenset[str]] | None = None,
    *,
    state_precedes=None,
) -> EventStructure:
    """Assemble an :class:`EventStructure` from observed events.

    Parameters
    ----------
    events:
        The observed external events (any order; canonical order is
        reconstructed from ``(end, start, arc, index)``).
    state_precedes:
        Callable ``(state_i, state_j) -> bool`` implementing the
        structural ``⇒`` relation of the generating system.  Required for
        the precedence relation; the ``precedes_states`` mapping form
        (state → set of successor states) is accepted as an alternative.

    The relations are built exactly per Definition 3.5:

    * ``E_i ≺ E_j`` iff ``E_i`` occurs before ``E_j`` (its activation ends
      no later than ``E_j``'s begins) and ``S_i ⇒ S_j``;
    * ``E_i ≍ E_j`` iff both events belong to the same activation of the
      same controlling state.
    """
    event_list = sorted(events, key=lambda e: (e.end, e.start, e.arc, e.index))
    if state_precedes is None:
        if precedes_states is None:
            def state_precedes(_a: str, _b: str) -> bool:
                return False
        else:
            mapping = precedes_states

            def state_precedes(a: str, b: str) -> bool:
                return b in mapping.get(a, frozenset())

    precedence: set[tuple[EventKey, EventKey]] = set()
    concurrency: set[frozenset[EventKey]] = set()
    for i, e_i in enumerate(event_list):
        for e_j in event_list[i + 1:]:
            same_activation = (e_i.state == e_j.state
                               and e_i.activation == e_j.activation)
            if same_activation:
                concurrency.add(frozenset((e_i.key, e_j.key)))
                continue
            # "occurs before" is strict: an activation must have *ended*
            # before the other began.  Simultaneous activations of two
            # loop-related states (both ⇒ each other around the cycle)
            # are casually related, not ordered — a non-strict comparison
            # would order them by an arbitrary tie-break and make the
            # structure depend on the firing policy.
            if e_i.end < e_j.start and state_precedes(e_i.state, e_j.state):
                precedence.add((e_i.key, e_j.key))
            elif e_j.end < e_i.start and state_precedes(e_j.state, e_i.state):
                precedence.add((e_j.key, e_i.key))
    return EventStructure(tuple(event_list), frozenset(precedence),
                          frozenset(concurrency))
