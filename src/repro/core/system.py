"""The data/control flow system ``Γ = (D, S, T, F, C, G, M0)`` — Definition 2.2.

This class combines a :class:`~repro.datapath.graph.DataPath` with a
:class:`~repro.petri.net.PetriNet` through the two extension mappings:

* ``C : S → 2^A`` — the *control mapping*: when a control state holds a
  token, the arcs in ``C(S)`` are open for data to flow (Definition 3.1(8));
* ``G : O → 2^T`` — the *guard mapping*: a transition guarded by output
  port(s) may fire only when some guard value is TRUE (Definition 3.1(4));
  stored here inverted, per transition, which is the direction every
  algorithm needs.

The derived notions of Definitions 2.4, 2.5 and 4.2 — the association
relation, the active subgraph ``ASS(S)``, and ``dom``/``cod``/result set
``R(S)`` — are methods on this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..datapath.graph import DataPath
from ..datapath.ports import PortId
from ..errors import DefinitionError
from ..petri.net import PetriNet
from ..petri.relations import StructuralRelations


@dataclass
class DataControlSystem:
    """A complete data/control flow system Γ.

    Attributes
    ----------
    datapath:
        The data path ``D``.
    net:
        The control Petri net ``(S, T, F, M0)``.
    control:
        ``C`` — mapping from place name to the set of arc names it opens.
        Places absent from the mapping control no arcs.
    guards:
        ``G`` inverted — mapping from transition name to the set of guard
        ports; transitions absent from the mapping are unguarded (always
        may fire when enabled).
    """

    datapath: DataPath
    net: PetriNet
    control: dict[str, set[str]] = field(default_factory=dict)
    guards: dict[str, set[PortId]] = field(default_factory=dict)
    name: str = "system"
    _relations: StructuralRelations | None = field(default=None, repr=False)
    _coexistence: tuple[frozenset[frozenset[str]], bool] | None = field(
        default=None, repr=False)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def set_control(self, place: str, arcs: Iterable[str]) -> None:
        """Define ``C(place)`` (replacing any previous mapping)."""
        if place not in self.net.places:
            raise DefinitionError(f"unknown control state {place!r}")
        arc_set = set(arcs)
        for arc in arc_set:
            if arc not in self.datapath.arcs:
                raise DefinitionError(
                    f"control state {place!r} maps to unknown arc {arc!r}"
                )
        if arc_set:
            self.control[place] = arc_set
        else:
            self.control.pop(place, None)

    def add_control(self, place: str, *arcs: str) -> None:
        """Add arcs to ``C(place)``."""
        current = set(self.control.get(place, set()))
        current.update(arcs)
        self.set_control(place, current)

    def set_guard(self, transition: str, ports: Iterable[PortId | str]) -> None:
        """Define the guard set of a transition (replacing any previous).

        Multiple guard ports are OR-ed at firing time (Definition 3.1(4)).
        """
        if transition not in self.net.transitions:
            raise DefinitionError(f"unknown transition {transition!r}")
        resolved: set[PortId] = set()
        for port in ports:
            pid = PortId.parse(port) if isinstance(port, str) else port
            vertex = self.datapath.vertex(pid.vertex)
            if pid.port not in vertex.out_ports:
                raise DefinitionError(
                    f"guard {pid} of transition {transition!r} is not an "
                    "output port (G : O → 2^T)"
                )
            resolved.add(pid)
        if resolved:
            self.guards[transition] = resolved
        else:
            self.guards.pop(transition, None)

    def invalidate(self) -> None:
        """Drop cached relations after mutating the net or the marking."""
        self._relations = None
        self._coexistence = None

    # ------------------------------------------------------------------
    # mappings and derived sets
    # ------------------------------------------------------------------
    def control_arcs(self, place: str) -> frozenset[str]:
        """``C(S)`` — names of arcs controlled by a control state."""
        return frozenset(self.control.get(place, ()))

    def controlling_states(self, arc: str) -> frozenset[str]:
        """All control states whose ``C`` set contains the arc."""
        return frozenset(p for p, arcs in self.control.items() if arc in arcs)

    def guard_ports(self, transition: str) -> frozenset[PortId]:
        """Guard ports of a transition (empty = unguarded)."""
        return frozenset(self.guards.get(transition, ()))

    def guarded_transitions(self, port: PortId) -> frozenset[str]:
        """``G(O)`` — the paper's original direction of the guard mapping."""
        return frozenset(t for t, ports in self.guards.items() if port in ports)

    def associated_vertices(self, place: str) -> frozenset[str]:
        """Vertices *associated with* a control state (Definition 2.4).

        ``V_k`` is associated with ``S_j`` iff some arc in ``C(S_j)``
        targets an input port of ``V_k``.  Only input ports matter: an
        output port can fan out without conflict, a single input port
        cannot be driven from two sources at once.
        """
        vertices: set[str] = set()
        for arc_name in self.control.get(place, ()):
            vertices.add(self.datapath.arc(arc_name).target.vertex)
        return frozenset(vertices)

    def ass(self, place: str) -> tuple[frozenset[str], frozenset[str]]:
        """``ASS(S)`` — the active arcs and vertices (Definition 2.5).

        Returns ``(arc_names, vertex_names)``.
        """
        arcs = self.control_arcs(place)
        return arcs, self.associated_vertices(place)

    def dom(self, place: str) -> frozenset[str]:
        """``dom(S)`` — vertices with an output port on a controlled arc
        (Definition 4.2)."""
        return frozenset(
            self.datapath.arc(a).source.vertex for a in self.control.get(place, ())
        )

    def cod(self, place: str) -> frozenset[str]:
        """``cod(S)`` — vertices with an input port on a controlled arc
        (Definition 4.2)."""
        return frozenset(
            self.datapath.arc(a).target.vertex for a in self.control.get(place, ())
        )

    def result_set(self, place: str) -> frozenset[str]:
        """``R(S)`` — the sequential subset of ``cod(S)`` (Definition 4.2).

        The vertices whose state is (re)written while ``S`` is active.
        """
        return frozenset(
            v for v in self.cod(place) if self.datapath.vertex(v).is_sequential
        )

    def operations_of(self, place: str) -> frozenset[str]:
        """The operation names performed on a control state (Definition 4.2):
        the operations defined on the output ports of its codomain."""
        names: set[str] = set()
        for vertex_name in self.cod(place):
            vertex = self.datapath.vertex(vertex_name)
            names.update(op.name for op in vertex.ops.values())
        return frozenset(names)

    def states_associated_with_vertex(self, vertex: str) -> frozenset[str]:
        """All control states a vertex is associated with (Definition 2.4)."""
        return frozenset(
            p for p in self.control if vertex in self.associated_vertices(p)
        )

    def external_arc_names(self) -> frozenset[str]:
        """Names of the external arcs ``A_e`` (Definition 3.3)."""
        return frozenset(a.name for a in self.datapath.external_arcs())

    def controlled_external_arcs(self, place: str) -> frozenset[str]:
        """External arcs opened by a control state — its observable window."""
        return self.control_arcs(place) & self.external_arc_names()

    # ------------------------------------------------------------------
    # structural relations (Definition 2.3), cached
    # ------------------------------------------------------------------
    @property
    def relations(self) -> StructuralRelations:
        """The ``⇒``/``α``/``∥`` relations of the control net (cached).

        Call :meth:`invalidate` after mutating the net structure.
        """
        if self._relations is None:
            self._relations = StructuralRelations(self.net)
        return self._relations

    def coexistence(self, *, max_markings: int = 100_000,
                    backend: str = "explicit"
                    ) -> tuple[frozenset[frozenset[str]], bool]:
        """Simultaneously markable place pairs (cached).

        The behavioural refinement of ``∥`` needed on cyclic nets: see
        :func:`repro.petri.reachability.coexistent_place_pairs`.
        ``backend="symbolic"`` computes the same relation through the
        frontier/unfolding engine (the cache is shared — both backends
        agree by construction, and the differential tests pin it).
        """
        if self._coexistence is None:
            from ..petri.reachability import coexistent_place_pairs

            self._coexistence = coexistent_place_pairs(
                self.net, max_markings=max_markings, backend=backend)
        return self._coexistence

    def may_coexist(self, s_1: str, s_2: str) -> bool:
        """Can the two places (or the place with itself) hold tokens at
        the same time?  Conservative (``True``) when the reachability
        budget was exhausted."""
        pairs, complete = self.coexistence()
        if not complete:
            return True
        key = frozenset((s_1, s_2))
        return key in pairs

    # ------------------------------------------------------------------
    # validation / copying
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Basic cross-reference well-formedness (not Definition 3.2)."""
        problems: list[str] = []
        for place, arcs in self.control.items():
            if place not in self.net.places:
                problems.append(f"control mapping for unknown place {place!r}")
            for arc in arcs:
                if arc not in self.datapath.arcs:
                    problems.append(
                        f"control state {place!r} maps to unknown arc {arc!r}"
                    )
        for transition, ports in self.guards.items():
            if transition not in self.net.transitions:
                problems.append(f"guard on unknown transition {transition!r}")
            for pid in ports:
                vertex = self.datapath.vertices.get(pid.vertex)
                if vertex is None or pid.port not in vertex.out_ports:
                    problems.append(
                        f"guard port {pid} of {transition!r} does not exist"
                    )
        uncontrolled = set(self.datapath.arcs) - {
            a for arcs in self.control.values() for a in arcs
        }
        for arc in sorted(uncontrolled):
            problems.append(f"arc {arc!r} is controlled by no state (never opens)")
        return problems

    def copy(self, *, name: str | None = None) -> "DataControlSystem":
        """Deep-enough copy sharing immutable vertices/arcs/elements."""
        return DataControlSystem(
            datapath=self.datapath.copy(),
            net=self.net.copy(),
            control={p: set(a) for p, a in self.control.items()},
            guards={t: set(g) for t, g in self.guards.items()},
            name=name if name is not None else self.name,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataControlSystem({self.name!r}: {self.datapath}, {self.net}, "
            f"|C|={len(self.control)}, |G|={len(self.guards)})"
        )
