"""Equivalence relations between data/control flow systems — Section 4.

Three nested notions, strongest first:

* **control-invariant equivalence** (Definition 4.6) — ``Γ'`` results from
  a legal *vertex merger* in ``Γ``'s data path (same control);
* **data-invariant equivalence** (Definition 4.5) — same data path, same
  control mapping, restructured control net preserving the relative order
  of every ``◇``-related (data-dependent) state pair;
* **semantic equivalence** (Definition 4.1) — equal external event
  structures.  Undecidable in general (the paper says so explicitly); the
  :func:`semantically_equivalent` checker here is the *bounded,
  environment-relative* version: it extracts both event structures under
  a given environment and simulation budget and compares them.  Theorems
  4.1 and 4.2 guarantee that systems related by the two structural
  equivalences pass this check for every environment — the test suite
  exercises exactly that implication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ValidationError
from .dependence import DataDependence
from .system import DataControlSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..semantics.environment import Environment


@dataclass
class EquivalenceVerdict:
    """Outcome of an equivalence check, with an explanation on failure.

    ``witness`` carries the distinguishing behaviour when the systems are
    *not* equivalent and one was observed: a JSON-safe mapping with
    ``"left"``/``"right"`` firing-step sequences (each a list of steps,
    each step a list of transition names) replayable with
    :func:`repro.petri.execution.fire_step` from the initial marking.
    ``backend`` records which engine produced the verdict
    (``"explicit"`` or ``"symbolic"``).
    """

    equivalent: bool
    relation: str
    reason: str = ""
    witness: dict | None = None
    backend: str = "explicit"

    def __bool__(self) -> bool:
        return self.equivalent

    def witness_text(self) -> str:
        """The witness rendered for humans (empty when there is none)."""
        if not self.witness:
            return ""
        lines = []
        for side in ("left", "right"):
            steps = self.witness.get(side)
            if steps is None:
                continue
            flat = " ; ".join(",".join(step) for step in steps) or "(empty)"
            lines.append(f"{side}: {flat}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Definition 4.5 — data-invariant equivalence
# ---------------------------------------------------------------------------
def ordered_dependent_pairs(system: DataControlSystem, *,
                            closure: bool = False) -> frozenset[tuple[str, str]]:
    """All ordered pairs ``(S_i, S_j)`` with ``S_i ⇒ S_j`` and dependent.

    This is the invariant of Definition 4.5: two systems over the same
    data path are data-invariantly equivalent iff these sets coincide.

    **Interpretation note.**  Definition 4.5 as printed quantifies over
    the transitive closure ``◇`` (Definition 4.4).  Because clause (e)
    makes every pair of I/O-performing states *directly* dependent, the
    closure would chain almost every state of an I/O-using design into
    one dependence class and forbid virtually all parallelization — the
    opposite of the paper's stated purpose.  The proof of Theorem 4.1
    only ever uses *direct* dependences pairwise (each recursion step
    appeals to a single ``dom``/``R`` intersection), and preserving every
    directly-dependent ordered pair automatically preserves the order
    along every dependence chain.  The default is therefore the direct
    relation ``↔``; pass ``closure=True`` for the literal reading.
    """
    relations = system.relations
    dependence = DataDependence(system)
    related = dependence.dependent if closure else dependence.direct
    pairs: set[tuple[str, str]] = set()
    for s_i, s_j in relations.precedence_pairs:
        if s_i != s_j and related(s_i, s_j):
            pairs.add((s_i, s_j))
    return frozenset(pairs)


def data_invariant_equivalent(gamma: DataControlSystem,
                              gamma_prime: DataControlSystem) -> EquivalenceVerdict:
    """Definition 4.5 check.

    Preconditions of the definition — ``Γ = (D,S,T,F,C,G,M0)`` and
    ``Γ' = (D,S,T',F',C,G,M0)`` share data path, place set, control
    mapping, guard mapping and initial marking — are verified first;
    only the transition set and flow relation may differ.
    """
    if not gamma.datapath.structure_equal(gamma_prime.datapath):
        return EquivalenceVerdict(False, "data-invariant",
                                  "data paths differ (D must be shared)")
    if set(gamma.net.places) != set(gamma_prime.net.places):
        return EquivalenceVerdict(False, "data-invariant",
                                  "place sets differ (S must be shared)")
    if gamma.net.initial != gamma_prime.net.initial:
        return EquivalenceVerdict(False, "data-invariant",
                                  "initial markings differ (M0 must be shared)")
    if {p: frozenset(a) for p, a in gamma.control.items()} != \
       {p: frozenset(a) for p, a in gamma_prime.control.items()}:
        return EquivalenceVerdict(False, "data-invariant",
                                  "control mappings differ (C must be shared)")
    # G is keyed by transitions, which may legitimately differ between the
    # two systems; Definition 4.5's requirement that G be shared is read as
    # "the same guarding conditions gate the same control decisions".  We
    # enforce the weaker, checkable condition that both systems use the
    # same set of guard ports overall.
    ports = {p for g in gamma.guards.values() for p in g}
    ports_prime = {p for g in gamma_prime.guards.values() for p in g}
    if ports != ports_prime:
        return EquivalenceVerdict(False, "data-invariant",
                                  "guard port sets differ (G must be shared)")

    pairs = ordered_dependent_pairs(gamma)
    pairs_prime = ordered_dependent_pairs(gamma_prime)
    if pairs != pairs_prime:
        missing = sorted(pairs - pairs_prime)
        added = sorted(pairs_prime - pairs)
        return EquivalenceVerdict(
            False, "data-invariant",
            f"ordered dependent pairs differ: lost={missing[:5]} "
            f"gained={added[:5]}",
        )
    return EquivalenceVerdict(True, "data-invariant")


# ---------------------------------------------------------------------------
# Definition 4.6 — control-invariant equivalence (vertex merger)
# ---------------------------------------------------------------------------
def merger_legal(gamma: DataControlSystem, v_i: str, v_j: str) -> EquivalenceVerdict:
    """Check the side conditions of Definition 4.6 for merging ``v_i`` into
    ``v_j``.

    1. both vertices exist and are distinct;
    2. same operational definition and port structure (signatures equal);
    3. every control state associated with ``v_i`` is in sequential order
       (``α``) with every state associated with ``v_j``, no state is
       associated with both, **and no such pair can be simultaneously
       marked**.  The last clause strengthens the paper's letter: on a
       cyclic net, two states of one loop body are mutually reachable
       around the back edge — ``α``-ordered — yet can hold tokens at the
       same time inside an iteration, and a merged unit would then be
       used by two activities at once (exactly what the proof of
       Theorem 4.2 assumes cannot happen).  The behavioural coexistence
       relation from reachability analysis closes the gap.

    Beyond the paper's letter (but required by its proof, which latches
    each use in its own state): state-holding vertices may only be merged
    when no state *reads* one vertex while the other could have overwritten
    the shared state in between — the library restricts Definition 4.6
    mergers to combinational vertices and offers lifetime-checked register
    sharing as an extended transformation instead.
    """
    dp = gamma.datapath
    if v_i == v_j:
        return EquivalenceVerdict(False, "control-invariant",
                                  "cannot merge a vertex with itself")
    if v_i not in dp.vertices or v_j not in dp.vertices:
        return EquivalenceVerdict(False, "control-invariant",
                                  f"unknown vertex {v_i!r} or {v_j!r}")
    vertex_i, vertex_j = dp.vertex(v_i), dp.vertex(v_j)
    if vertex_i.signature() != vertex_j.signature():
        return EquivalenceVerdict(
            False, "control-invariant",
            f"{v_i!r} and {v_j!r} differ in operational definition or "
            "port structure",
        )
    if not vertex_i.is_combinational:
        return EquivalenceVerdict(
            False, "control-invariant",
            f"{v_i!r} is state-holding; Definition 4.6 mergers are "
            "restricted to combinational vertices (use the extended "
            "register-sharing transformation for SEQ vertices)",
        )
    states_i = gamma.states_associated_with_vertex(v_i)
    states_j = gamma.states_associated_with_vertex(v_j)
    shared = states_i & states_j
    if shared:
        return EquivalenceVerdict(
            False, "control-invariant",
            f"states {sorted(shared)} are associated with both vertices",
        )
    relations = gamma.relations
    for s_a in states_i:
        for s_b in states_j:
            if not relations.sequential(s_a, s_b):
                return EquivalenceVerdict(
                    False, "control-invariant",
                    f"states {s_a!r} and {s_b!r} are parallel — the merged "
                    "vertex would be used simultaneously",
                )
            if gamma.may_coexist(s_a, s_b):
                return EquivalenceVerdict(
                    False, "control-invariant",
                    f"states {s_a!r} and {s_b!r} can be simultaneously "
                    "marked (loop-carried concurrency) — the merged vertex "
                    "would be used by two activities at once",
                )
    return EquivalenceVerdict(True, "control-invariant")


def control_invariant_equivalent(gamma: DataControlSystem,
                                 gamma_prime: DataControlSystem,
                                 v_i: str, v_j: str) -> EquivalenceVerdict:
    """Verify that ``Γ'`` is the result of the legal merger of ``v_i`` into
    ``v_j`` in ``Γ`` (Definition 4.6).

    The expected result is reconstructed with the transformation engine
    and compared structurally against ``gamma_prime``.
    """
    legality = merger_legal(gamma, v_i, v_j)
    if not legality:
        return legality
    from ..transform.datapath_tf import VertexMerger  # local: avoid cycle

    expected = VertexMerger(v_i, v_j).apply(gamma)
    if not expected.datapath.structure_equal(gamma_prime.datapath):
        return EquivalenceVerdict(False, "control-invariant",
                                  "data path is not the merger result")
    if not expected.net.structure_equal(gamma_prime.net):
        return EquivalenceVerdict(False, "control-invariant",
                                  "control net differs (must be unchanged)")
    if {p: frozenset(a) for p, a in expected.control.items()} != \
       {p: frozenset(a) for p, a in gamma_prime.control.items()}:
        return EquivalenceVerdict(False, "control-invariant",
                                  "control mapping is not the merger result")
    if {t: frozenset(g) for t, g in expected.guards.items()} != \
       {t: frozenset(g) for t, g in gamma_prime.guards.items()}:
        return EquivalenceVerdict(False, "control-invariant",
                                  "guard mapping is not the merger result")
    return EquivalenceVerdict(True, "control-invariant")


# ---------------------------------------------------------------------------
# Definition 4.1 — semantic equivalence (bounded, environment-relative)
# ---------------------------------------------------------------------------
def semantically_equivalent(gamma: DataControlSystem,
                            gamma_prime: DataControlSystem,
                            environment: "Environment | None" = None,
                            *, max_steps: int = 10_000,
                            backend: str = "explicit") -> EquivalenceVerdict:
    """Compare external event structures under a given environment.

    This is the observational check of Definition 4.1 made effective: the
    full relation is undecidable, so the result is relative to the supplied
    environment (input value sequences) and the step budget.  Both systems
    receive an independent copy of the environment.

    ``backend="symbolic"`` routes through
    :func:`repro.analysis.symbolic.symbolic_semantically_equivalent`,
    which prescreens statically and extracts the event structures through
    the compiled vector engine instead of the interpreter; the explicit
    backend remains the differential oracle.  Both record the
    distinguishing firing sequences in :attr:`EquivalenceVerdict.witness`
    on an inequivalence verdict.
    """
    if backend == "symbolic":
        from ..analysis.symbolic import symbolic_semantically_equivalent

        return symbolic_semantically_equivalent(
            gamma, gamma_prime, environment, max_steps=max_steps)
    if backend != "explicit":
        raise ValidationError(
            f"unknown equivalence backend {backend!r}: "
            "expected 'explicit' or 'symbolic'")

    from ..semantics.environment import Environment
    from ..semantics.event_structure import event_structure_from_trace
    from ..semantics.policies import MaximalStepPolicy
    from ..semantics.simulator import Simulator

    env = environment if environment is not None else Environment()
    trace_left = Simulator(gamma, env.fork(),
                           MaximalStepPolicy()).run(max_steps=max_steps)
    trace_right = Simulator(gamma_prime, env.fork(),
                            MaximalStepPolicy()).run(max_steps=max_steps)
    left = event_structure_from_trace(gamma, trace_left)
    right = event_structure_from_trace(gamma_prime, trace_right)
    if left.semantically_equal(right):
        return EquivalenceVerdict(True, "semantic")
    return EquivalenceVerdict(
        False, "semantic",
        left.explain_difference(right) or "structures differ",
        witness={"left": [list(step) for step in trace_left.steps],
                 "right": [list(step) for step in trace_right.steps]})
