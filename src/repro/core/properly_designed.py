"""The properly-designed check — Definition 3.2.

A data/control flow system is *properly designed* iff

1. parallel control states have disjoint active subgraphs:
   ``ASS(S_i) ∩ ASS(S_j) = ∅`` whenever ``S_i ∥ S_j``;
2. the control net is **safe** (never more than one token per place);
3. the net is **conflict-free**: transitions sharing an input place carry
   mutually exclusive guards;
4. no control state's associated subgraph contains a combinational loop;
5. every control state's ``ASS`` contains at least one sequential vertex.

Properly designed systems are deterministic up to firing order: every
interleaving yields the same external event structure, which is what makes
the equivalence checking of Section 4 tractable.  The library's simulator
and transformation engine only promise correct results on properly
designed systems, mirroring the paper ("From now on we only consider
properly designed systems").

Rule 3 is verified on two levels: a *static* sufficient condition —
guards are literally complementary (one guard port is the output of a
``not`` vertex fed from the other guard port), the pattern the synthesis
frontend emits for if/while branches — and an optional *dynamic* sweep
that simulates the system and reports any reachable marking where two
competing transitions are simultaneously fireable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..datapath.ports import PortId
from ..datapath.validate import combinational_cycle
from ..errors import ValidationError
from ..petri.properties import check_safety, structural_conflicts
from .system import DataControlSystem


@dataclass
class CheckResult:
    """Outcome of one of the five rules."""

    rule: str
    ok: bool
    details: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


@dataclass
class ProperDesignReport:
    """Aggregated outcome of the properly-designed verification."""

    checks: list[CheckResult]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok

    def summary(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            lines.append(f"[{status}] {check.rule}")
            for detail in check.details:
                lines.append(f"       - {detail}")
        return "\n".join(lines)


def _check_parallel_disjoint(system: DataControlSystem) -> CheckResult:
    """Rule 1: parallel states use disjoint arcs and vertices.

    "Parallel" is taken *behaviourally*: two states violate the rule when
    they share resources **and can be simultaneously marked** (the
    coexistence relation from reachability analysis).  The paper's
    structural ``∥`` (Definition 2.3(5)) mis-measures concurrency in both
    directions — it calls mutually exclusive if/else branch states
    parallel (over-approximation: they may legitimately share a resource)
    and calls same-iteration loop-body states sequential because each
    reaches the other around the back edge (under-approximation: they
    genuinely coexist).  Coexistence is exactly the "never active at the
    same time" condition the rule is meant to enforce.
    """
    details: list[str] = []
    ass_cache = {p: system.ass(p) for p in system.control}
    places = sorted(system.control)
    for s_i, s_j in combinations(places, 2):
        if not system.may_coexist(s_i, s_j):
            continue
        arcs_i, verts_i = ass_cache[s_i]
        arcs_j, verts_j = ass_cache[s_j]
        shared_arcs = arcs_i & arcs_j
        shared_verts = verts_i & verts_j
        if shared_arcs or shared_verts:
            what = []
            if shared_arcs:
                what.append(f"arcs {sorted(shared_arcs)}")
            if shared_verts:
                what.append(f"vertices {sorted(shared_verts)}")
            details.append(
                f"coexistent states {s_i!r} and {s_j!r} share "
                f"{', '.join(what)}"
            )
    return CheckResult("1: parallel states have disjoint ASS", not details, details)


def _check_safety(system: DataControlSystem, max_markings: int) -> CheckResult:
    """Rule 2: the control net is safe (1-bounded)."""
    report = check_safety(system.net, max_markings=max_markings)
    details: list[str] = []
    if not report.safe:
        details.append(
            f"unsafe marking reachable"
            + (f": {report.witness!r}" if report.witness is not None else "")
        )
    elif not report.decided:
        details.append(
            "exploration budget exhausted before safety was proven "
            f"({report.markings_explored} markings)"
        )
    return CheckResult("2: control net is safe", report.safe and report.decided, details)


def _is_complement(system: DataControlSystem, a: PortId, b: PortId) -> bool:
    """True iff port ``b`` is the output of a NOT vertex driven from ``a``."""
    vertex = system.datapath.vertex(b.vertex)
    op = vertex.ops.get(b.port)
    if op is None or op.name != "not":
        return False
    for in_port in vertex.input_ids():
        for arc in system.datapath.arcs_into(in_port):
            if arc.source == a:
                return True
    return False


def _guards_exclusive(system: DataControlSystem, t_1: str, t_2: str) -> bool:
    """Static sufficient condition for mutually exclusive guards.

    Each transition must be guarded by exactly one port, and one port must
    be the logical complement of the other (a ``not`` vertex wired from
    it).  This is exactly the branch pattern the frontend compiler emits;
    hand-built systems with richer exclusivity should be verified with the
    dynamic sweep instead.
    """
    g_1 = system.guard_ports(t_1)
    g_2 = system.guard_ports(t_2)
    if len(g_1) != 1 or len(g_2) != 1:
        return False
    (p_1,) = g_1
    (p_2,) = g_2
    return _is_complement(system, p_1, p_2) or _is_complement(system, p_2, p_1)


def _check_conflict_free(system: DataControlSystem) -> CheckResult:
    """Rule 3 (static): shared-place transitions carry exclusive guards."""
    details: list[str] = []
    for place, t_1, t_2 in structural_conflicts(system.net):
        if not _guards_exclusive(system, t_1, t_2):
            details.append(
                f"transitions {t_1!r} and {t_2!r} compete for place {place!r} "
                "without provably exclusive guards"
            )
    return CheckResult("3: net is conflict-free (static)", not details, details)


def _check_no_combinational_loops(system: DataControlSystem) -> CheckResult:
    """Rule 4: each state's active subgraph is combinational-loop-free."""
    details: list[str] = []
    for place in sorted(system.control):
        cycle = combinational_cycle(system.datapath, system.control_arcs(place))
        if cycle is not None:
            details.append(
                f"state {place!r} activates combinational loop "
                f"{' -> '.join(cycle)}"
            )
    return CheckResult("4: no combinational loop within a state", not details, details)


def _check_sequential_vertex(system: DataControlSystem) -> CheckResult:
    """Rule 5: every controlling state drives at least one sequential vertex."""
    details: list[str] = []
    for place in sorted(system.net.places):
        arcs = system.control_arcs(place)
        if not arcs:
            # A state controlling no arcs performs no operation; the rule
            # only constrains states that are mapped by C.
            continue
        vertices = system.associated_vertices(place)
        if not any(system.datapath.vertex(v).is_sequential for v in vertices):
            details.append(f"state {place!r} drives no sequential vertex")
    return CheckResult("5: every state includes a sequential vertex", not details, details)


def check_properly_designed(system: DataControlSystem, *,
                            max_markings: int = 100_000) -> ProperDesignReport:
    """Run all five rules of Definition 3.2 and return a report."""
    return ProperDesignReport([
        _check_parallel_disjoint(system),
        _check_safety(system, max_markings),
        _check_conflict_free(system),
        _check_no_combinational_loops(system),
        _check_sequential_vertex(system),
    ])


def assert_properly_designed(system: DataControlSystem, *,
                             max_markings: int = 100_000) -> None:
    """Raise :class:`~repro.errors.ValidationError` unless properly designed."""
    report = check_properly_designed(system, max_markings=max_markings)
    if not report.ok:
        raise ValidationError(
            "system is not properly designed:\n" + report.summary()
        )


def dynamic_conflict_sweep(system: DataControlSystem, *, max_steps: int = 2000):
    """Rule 3 (dynamic): simulate and report simultaneous fireable conflicts.

    Returns a list of ``(step, place, t1, t2)`` tuples — empty means no
    conflict was observed along the executed schedule.  Requires an
    environment only when the system has input vertices; in that case the
    caller should run the sweep through
    :func:`repro.semantics.event_structure.observed_conflicts` instead,
    which threads the environment through.
    """
    from ..semantics.environment import Environment
    from ..semantics.simulator import Simulator

    simulator = Simulator(system, Environment())
    return simulator.run(max_steps=max_steps).conflicts
