"""The properly-designed check — Definition 3.2.

A data/control flow system is *properly designed* iff

1. parallel control states have disjoint active subgraphs:
   ``ASS(S_i) ∩ ASS(S_j) = ∅`` whenever ``S_i ∥ S_j``;
2. the control net is **safe** (never more than one token per place);
3. the net is **conflict-free**: transitions sharing an input place carry
   mutually exclusive guards;
4. no control state's associated subgraph contains a combinational loop;
5. every control state's ``ASS`` contains at least one sequential vertex.

Properly designed systems are deterministic up to firing order: every
interleaving yields the same external event structure, which is what makes
the equivalence checking of Section 4 tractable.  The library's simulator
and transformation engine only promise correct results on properly
designed systems, mirroring the paper ("From now on we only consider
properly designed systems").

Rules 1 and 2 are *behavioural* here — they enumerate reachable markings
for an exact verdict.  Rules 3–5 are purely structural and are delegated
to the lint engine (:mod:`repro.analysis.lint`), which also offers
structural over-approximations of rules 1 and 2 (``PD001``/``PD002``)
that need no enumeration at all.  Every rule reports its findings as
:class:`~repro.diagnostics.Diagnostic` objects; :class:`CheckResult`
keeps the legacy ``details`` string list as a view over them.

Rule 3 is verified on two levels: a *static* sufficient condition —
guards are literally complementary (one guard port is the output of a
``not`` vertex fed from the other guard port), the pattern the synthesis
frontend emits for if/while branches — and an optional *dynamic* sweep
that simulates the system and reports any reachable marking where two
competing transitions are simultaneously fireable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..datapath.ports import PortId
from ..diagnostics import Diagnostic, Location
from ..errors import ValidationError
from ..petri.properties import check_safety, unsafe_witness_message
from .system import DataControlSystem


@dataclass
class CheckResult:
    """Outcome of one of the five rules.

    A thin wrapper over the rule's :class:`~repro.diagnostics.Diagnostic`
    findings: ``details`` remains the legacy list of message strings (one
    per diagnostic) so existing callers keep working, while
    ``diagnostics`` carries the structured form (rule id, severity,
    location anchors, hint).
    """

    rule: str
    ok: bool
    details: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @classmethod
    def from_diagnostics(cls, rule: str,
                         diagnostics: list[Diagnostic]) -> "CheckResult":
        """A result that passes iff the rule produced no diagnostics."""
        return cls(rule, not diagnostics,
                   [d.message for d in diagnostics], diagnostics)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


@dataclass
class ProperDesignReport:
    """Aggregated outcome of the properly-designed verification."""

    checks: list[CheckResult]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def diagnostics(self) -> list[Diagnostic]:
        """All findings across the five rules, in rule order."""
        return [d for check in self.checks for d in check.diagnostics]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok

    def summary(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            lines.append(f"[{status}] {check.rule}")
            for detail in check.details:
                lines.append(f"       - {detail}")
        return "\n".join(lines)


def _check_parallel_disjoint(system: DataControlSystem) -> CheckResult:
    """Rule 1: parallel states use disjoint arcs and vertices.

    "Parallel" is taken *behaviourally*: two states violate the rule when
    they share resources **and can be simultaneously marked** (the
    coexistence relation from reachability analysis).  The paper's
    structural ``∥`` (Definition 2.3(5)) mis-measures concurrency in both
    directions — it calls mutually exclusive if/else branch states
    parallel (over-approximation: they may legitimately share a resource)
    and calls same-iteration loop-body states sequential because each
    reaches the other around the back edge (under-approximation: they
    genuinely coexist).  Coexistence is exactly the "never active at the
    same time" condition the rule is meant to enforce.
    """
    found: list[Diagnostic] = []
    ass_cache = {p: system.ass(p) for p in system.control}
    places = sorted(system.control)
    for s_i, s_j in combinations(places, 2):
        if not system.may_coexist(s_i, s_j):
            continue
        arcs_i, verts_i = ass_cache[s_i]
        arcs_j, verts_j = ass_cache[s_j]
        shared_arcs = arcs_i & arcs_j
        shared_verts = verts_i & verts_j
        if shared_arcs or shared_verts:
            what = []
            if shared_arcs:
                what.append(f"arcs {sorted(shared_arcs)}")
            if shared_verts:
                what.append(f"vertices {sorted(shared_verts)}")
            found.append(Diagnostic(
                "PD001", "error",
                f"coexistent states {s_i!r} and {s_j!r} share "
                f"{', '.join(what)}",
                (Location("place", s_i), Location("place", s_j))
                + tuple(Location("arc", a) for a in sorted(shared_arcs))
                + tuple(Location("vertex", v) for v in sorted(shared_verts)),
                hint="serialize the states or give each its own resources "
                     "(Definition 3.2(1): ASS(S_i) ∩ ASS(S_j) = ∅)",
                system=system.name,
            ))
    return CheckResult.from_diagnostics(
        "1: parallel states have disjoint ASS", found)


def _check_safety(system: DataControlSystem, max_markings: int) -> CheckResult:
    """Rule 2: the control net is safe (1-bounded)."""
    report = check_safety(system.net, max_markings=max_markings)
    found: list[Diagnostic] = []
    if not report.safe:
        if report.violating_place is not None and report.witness is not None:
            message = ("unsafe marking reachable: "
                       + unsafe_witness_message(report.violating_place,
                                                report.witness))
            locations = (Location("place", report.violating_place),
                         Location("marking", repr(report.witness)))
        else:  # pragma: no cover - explorer always yields a witness
            message = "unsafe marking reachable"
            locations = ()
        found.append(Diagnostic(
            "PD002", "error", message, locations,
            hint="a properly designed net is 1-bounded (Definition 3.2(2))",
            system=system.name,
        ))
    elif not report.decided:
        found.append(Diagnostic(
            "PD002", "warning",
            "exploration budget exhausted before safety was proven "
            f"({report.markings_explored} markings)",
            hint="raise max_markings or restructure for invariant coverage",
            system=system.name,
        ))
    return CheckResult.from_diagnostics("2: control net is safe", found)


def _is_complement(system: DataControlSystem, a: PortId, b: PortId) -> bool:
    """Deprecated shim for :func:`repro.analysis.lint.is_complement`."""
    from ..analysis.lint import is_complement

    return is_complement(system, a, b)


def _guards_exclusive(system: DataControlSystem, t_1: str, t_2: str) -> bool:
    """Deprecated shim for :func:`repro.analysis.lint.guards_exclusive`."""
    from ..analysis.lint import guards_exclusive

    return guards_exclusive(system, t_1, t_2)


def _check_conflict_free(system: DataControlSystem) -> CheckResult:
    """Rule 3 (static): shared-place transitions carry exclusive guards."""
    from ..analysis.lint import conflict_diagnostics

    return CheckResult.from_diagnostics(
        "3: net is conflict-free (static)", conflict_diagnostics(system))


def _check_no_combinational_loops(system: DataControlSystem) -> CheckResult:
    """Rule 4: each state's active subgraph is combinational-loop-free."""
    from ..analysis.lint import combinational_loop_diagnostics

    return CheckResult.from_diagnostics(
        "4: no combinational loop within a state",
        combinational_loop_diagnostics(system))


def _check_sequential_vertex(system: DataControlSystem) -> CheckResult:
    """Rule 5: every controlling state drives at least one sequential vertex."""
    from ..analysis.lint import sequential_vertex_diagnostics

    return CheckResult.from_diagnostics(
        "5: every state includes a sequential vertex",
        sequential_vertex_diagnostics(system))


def check_properly_designed(system: DataControlSystem, *,
                            max_markings: int = 100_000) -> ProperDesignReport:
    """Run all five rules of Definition 3.2 and return a report."""
    return ProperDesignReport([
        _check_parallel_disjoint(system),
        _check_safety(system, max_markings),
        _check_conflict_free(system),
        _check_no_combinational_loops(system),
        _check_sequential_vertex(system),
    ])


def assert_properly_designed(system: DataControlSystem, *,
                             max_markings: int = 100_000) -> None:
    """Raise :class:`~repro.errors.ValidationError` unless properly designed."""
    report = check_properly_designed(system, max_markings=max_markings)
    if not report.ok:
        raise ValidationError(
            "system is not properly designed:\n" + report.summary()
        )


def dynamic_conflict_sweep(system: DataControlSystem, *, max_steps: int = 2000):
    """Rule 3 (dynamic): simulate and report simultaneous fireable conflicts.

    Returns a list of ``(step, place, t1, t2)`` tuples — empty means no
    conflict was observed along the executed schedule.  Requires an
    environment only when the system has input vertices; in that case the
    caller should run the sweep through
    :func:`repro.semantics.event_structure.observed_conflicts` instead,
    which threads the environment through.
    """
    from ..semantics.environment import Environment
    from ..semantics.simulator import Simulator

    simulator = Simulator(system, Environment())
    return simulator.run(max_steps=max_steps).conflicts
