"""Core model: the paper's primary contribution.

* :class:`~repro.core.system.DataControlSystem` — Γ (Definition 2.2) with
  the derived sets of Definitions 2.4/2.5/4.2;
* :mod:`~repro.core.properly_designed` — the five rules of Definition 3.2;
* :mod:`~repro.core.dependence` — ``↔`` and ``◇`` (Definitions 4.3/4.4);
* :mod:`~repro.core.events` — external events and event structures
  (Definitions 3.3–3.6);
* :mod:`~repro.core.equivalence` — the three equivalence relations of
  Section 4 (Definitions 4.1, 4.5, 4.6).
"""

from .dependence import (
    DataDependence,
    direct_dependence_reasons,
    directly_dependent,
    sequential_sources,
)
from .equivalence import (
    EquivalenceVerdict,
    control_invariant_equivalent,
    data_invariant_equivalent,
    merger_legal,
    ordered_dependent_pairs,
    semantically_equivalent,
)
from .events import EventKey, EventStructure, ExternalEvent, build_event_structure
from .properly_designed import (
    CheckResult,
    ProperDesignReport,
    assert_properly_designed,
    check_properly_designed,
)
from .system import DataControlSystem

__all__ = [
    "DataControlSystem",
    "CheckResult",
    "ProperDesignReport",
    "check_properly_designed",
    "assert_properly_designed",
    "DataDependence",
    "directly_dependent",
    "direct_dependence_reasons",
    "sequential_sources",
    "ExternalEvent",
    "EventStructure",
    "EventKey",
    "build_event_structure",
    "EquivalenceVerdict",
    "ordered_dependent_pairs",
    "data_invariant_equivalent",
    "merger_legal",
    "control_invariant_equivalent",
    "semantically_equivalent",
]
