"""Data dependence between control states — Definitions 4.3 and 4.4.

Two control states are **directly data dependent** (``S_i ↔ S_j``) if any
of the following hold:

(a) ``R(S_i) ∩ dom(S_j) ≠ ∅`` — ``S_j`` reads a vertex ``S_i`` writes;
(b) ``R(S_j) ∩ dom(S_i) ≠ ∅`` — ``S_i`` reads a vertex ``S_j`` writes;
(c) ``R(S_i) ∩ R(S_j) ≠ ∅``  — both write the same vertex;
(d) control dependence — the marking of one state depends on a result
    vertex of the other: a transition *adjacent to* ``S_i`` (whose firing
    changes ``M(S_i)``) **or dominating** ``S_i`` (through which every
    token reaching ``S_i`` must pass — every state of a branch arm or a
    loop body) is guarded by a port whose value derives from a vertex in
    ``R(S_j)``, or vice versa;
(e) both states control some external arc — input/output operations must
    keep their relative order, whatever data they carry.

The **data dependence relation** ``◇`` is the transitive closure of ``↔``
(Definition 4.4).  States *not* related by ``◇`` can be reordered or
parallelised freely without changing the semantics — this is the licence
the transformation engine operates under.

The closure is computed over a boolean matrix with the vectorised
repeated-squaring kernel shared with the structural relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..petri.relations import dominators, transitive_closure_bool
from .system import DataControlSystem


def sequential_sources(system: DataControlSystem, port) -> frozenset[str]:
    """Sequential vertices feeding a port through combinational logic.

    Static over-approximation: every arc is considered (whether or not its
    controlling state is active).  A guard port on a comparator output,
    say, traces back to the registers the comparison reads — which is what
    clause (d) needs, since the *result sets* ``R(S)`` contain sequential
    vertices only.
    """
    dp = system.datapath
    sources: set[str] = set()
    seen: set = set()
    stack = [port]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        vertex = dp.vertex(current.vertex)
        if vertex.is_sequential or vertex.is_input_vertex:
            sources.add(vertex.name)
            continue
        # combinational: recurse into everything feeding its input ports
        for in_port in vertex.input_ids():
            for arc in dp.arcs_into(in_port):
                stack.append(arc.source)
    return frozenset(sources)


def direct_dependence_reasons(system: DataControlSystem, s_i: str, s_j: str) -> list[str]:
    """The clauses of Definition 4.3 satisfied by the pair (may be empty)."""
    reasons: list[str] = []
    r_i, r_j = system.result_set(s_i), system.result_set(s_j)
    dom_i, dom_j = system.dom(s_i), system.dom(s_j)
    if r_i & dom_j:
        reasons.append(f"(a) R({s_i}) ∩ dom({s_j}) = {sorted(r_i & dom_j)}")
    if r_j & dom_i:
        reasons.append(f"(b) R({s_j}) ∩ dom({s_i}) = {sorted(r_j & dom_i)}")
    if r_i & r_j:
        reasons.append(f"(c) R({s_i}) ∩ R({s_j}) = {sorted(r_i & r_j)}")
    if _control_dependent(system, s_i, r_j) or _control_dependent(system, s_j, r_i):
        reasons.append("(d) control dependence through a guard")
    ext = system.external_arc_names()
    if (system.control_arcs(s_i) & ext) and (system.control_arcs(s_j) & ext):
        reasons.append("(e) both states control external arcs")
    return reasons


def _control_dependent(system: DataControlSystem, state: str,
                       results: frozenset[str]) -> bool:
    """Does ``M(state)`` depend on the given result vertices?

    True when a transition adjacent to ``state`` (feeding or draining it,
    i.e. any transition whose firing changes ``M(state)``) **or
    dominating** ``state`` (every token reaching the state passed through
    it) is guarded by a port whose value derives — through combinational
    logic — from one of the result vertices.
    """
    if not results:
        return False
    relevant = set(system.net.preset(state)) | set(system.net.postset(state))
    relevant |= {e for e in dominators(system.net).get(state, frozenset())
                 if system.net.is_transition(e)}
    for transition in relevant:
        for port in system.guard_ports(transition):
            if port.vertex in results:
                return True
            if sequential_sources(system, port) & results:
                return True
    return False


def directly_dependent(system: DataControlSystem, s_i: str, s_j: str) -> bool:
    """``S_i ↔ S_j`` (Definition 4.3)."""
    return bool(direct_dependence_reasons(system, s_i, s_j))


@dataclass
class DataDependence:
    """Precomputed ``↔`` and ``◇`` relations over all places of a system.

    Snapshot semantics: build a new instance after mutating the system.
    """

    system: DataControlSystem

    def __post_init__(self) -> None:
        self._places: list[str] = list(self.system.net.places)
        self._index = {p: i for i, p in enumerate(self._places)}
        n = len(self._places)
        direct = np.zeros((n, n), dtype=bool)
        # Pre-compute the per-state sets once — direct pair checks reuse them.
        r = {p: self.system.result_set(p) for p in self._places}
        dom = {p: self.system.dom(p) for p in self._places}
        ext = self.system.external_arc_names()
        has_ext = {p: bool(self.system.control_arcs(p) & ext) for p in self._places}
        source_cache: dict = {}

        def traced(port) -> frozenset[str]:
            if port not in source_cache:
                source_cache[port] = sequential_sources(self.system, port)
            return source_cache[port]

        dom_sets = dominators(self.system.net)
        guard_results: dict[str, set[str]] = {}
        for p in self._places:
            relevant = set(self.system.net.preset(p)) | set(self.system.net.postset(p))
            relevant |= {e for e in dom_sets.get(p, frozenset())
                         if self.system.net.is_transition(e)}
            vertices: set[str] = set()
            for t in relevant:
                for port in self.system.guard_ports(t):
                    vertices.add(port.vertex)
                    vertices.update(traced(port))
            guard_results[p] = vertices
        for i, p in enumerate(self._places):
            for j in range(i + 1, n):
                q = self._places[j]
                dependent = (
                    bool(r[p] & dom[q]) or bool(r[q] & dom[p]) or bool(r[p] & r[q])
                    or bool(guard_results[p] & r[q]) or bool(guard_results[q] & r[p])
                    or (has_ext[p] and has_ext[q])
                )
                if dependent:
                    direct[i, j] = True
                    direct[j, i] = True
        self._direct = direct
        self._closure = transitive_closure_bool(direct)

    # ------------------------------------------------------------------
    def direct(self, s_i: str, s_j: str) -> bool:
        """``S_i ↔ S_j``."""
        return bool(self._direct[self._index[s_i], self._index[s_j]])

    def dependent(self, s_i: str, s_j: str) -> bool:
        """``S_i ◇ S_j`` — transitive closure of ``↔``."""
        return bool(self._closure[self._index[s_i], self._index[s_j]])

    def independent(self, s_i: str, s_j: str) -> bool:
        """Not ``◇``-related: safe to reorder / parallelise."""
        return not self.dependent(s_i, s_j)

    @cached_property
    def dependent_pairs(self) -> frozenset[frozenset[str]]:
        """All unordered ``◇``-related place pairs."""
        pairs: set[frozenset[str]] = set()
        rows, cols = np.where(self._closure)
        for i, j in zip(rows.tolist(), cols.tolist()):
            if i < j:
                pairs.add(frozenset((self._places[i], self._places[j])))
        return frozenset(pairs)

    def matrix(self) -> np.ndarray:
        """Copy of the ``◇`` boolean matrix (row/col order = place order)."""
        return self._closure.copy()

    def place_order(self) -> list[str]:
        return list(self._places)
