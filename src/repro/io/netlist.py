"""Structural netlist backend: Γ → RTL-flavoured hardware description.

The paper's synthesis trajectory ends at "a final implementation"; this
module performs that last lowering step.  A
:class:`~repro.core.system.DataControlSystem` maps onto hardware as:

* **controller** — the safe Petri net becomes a one-hot FSM: one
  flip-flop per place (reset to ``M0``), one *fire* signal per
  transition (AND of its input places' flip-flops, AND the OR of its
  guard ports), and per-place next-state logic
  ``p' = (p ∧ ¬drained(p)) ∨ fed(p)``;
* **data path** — every vertex becomes an instance (registers with an
  enable, combinational operators as gates/ALUs, pads as module ports);
* **steering** — an input port with several drivers becomes an explicit
  multiplexer selected by the controlling places' flip-flops (this is
  where the cost model's ``mux_area`` turns into real structure);
* **enables** — a register's clock-enable is the OR of the places
  controlling its input arcs (the latch-on-departure semantics in
  synchronous form); an output pad gets a ``valid`` strobe the same way.

The emitted text is Verilog-flavoured and intended to be *read* (and
structurally checked — the test suite and :func:`lower` 's counts tie it
back to the cost model); it is not run through a Verilog simulator here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import DataControlSystem
from ..datapath.operations import OpKind
from ..datapath.ports import PortId


def _sig(name: str) -> str:
    """Sanitise an identifier for the netlist namespace."""
    return name.replace(".", "_").replace("[", "_").replace("]", "")


@dataclass
class Mux:
    """One multiplexer in front of a multi-driver input port."""

    target: PortId
    inputs: list[tuple[str, str]] = field(default_factory=list)
    # (driving signal, selecting place)


@dataclass
class Netlist:
    """Structural summary of the lowered design."""

    name: str
    module_inputs: list[str] = field(default_factory=list)
    module_outputs: list[str] = field(default_factory=list)
    registers: list[str] = field(default_factory=list)
    operators: list[tuple[str, str]] = field(default_factory=list)  # (inst, op)
    muxes: list[Mux] = field(default_factory=list)
    state_flops: list[str] = field(default_factory=list)
    fire_signals: dict[str, str] = field(default_factory=dict)
    enables: dict[str, str] = field(default_factory=dict)
    text: str = ""

    @property
    def mux_input_count(self) -> int:
        """Extra mux inputs beyond one driver per port — comparable to
        :attr:`repro.synthesis.cost.CostReport.mux_inputs`."""
        return sum(len(m.inputs) - 1 for m in self.muxes)


def _port_signal(system: DataControlSystem, port: PortId) -> str:
    """The wire carrying an output port's value."""
    vertex = system.datapath.vertex(port.vertex)
    op = vertex.operation(port.port)
    if op.kind is OpKind.INPUT:
        return _sig(f"{port.vertex}_in")
    return _sig(f"{port.vertex}_{port.port}")


def lower(system: DataControlSystem) -> Netlist:
    """Lower a data/control flow system to a structural netlist."""
    dp = system.datapath
    net = system.net
    result = Netlist(name=system.name)
    lines: list[str] = []

    # ------------------------------------------------------------------ ports
    for vertex in dp.input_vertices():
        result.module_inputs.append(_sig(f"{vertex.name}_in"))
    for vertex in dp.output_vertices():
        result.module_outputs.append(_sig(f"{vertex.name}_out"))
        result.module_outputs.append(_sig(f"{vertex.name}_valid"))

    header_ports = ["clk", "rst"] + result.module_inputs + \
        result.module_outputs
    lines.append(f"module {_sig(result.name)} (")
    lines.append("  " + ", ".join(header_ports))
    lines.append(");")

    # ------------------------------------------------------- controller FSM
    lines.append("")
    lines.append("  // one-hot controller: one flip-flop per control state")
    for place in net.places:
        flop = _sig(f"st_{place}")
        result.state_flops.append(flop)
        reset = "1'b1" if net.initial.get(place, 0) else "1'b0"
        lines.append(f"  reg {flop};  // reset to {reset}")
    lines.append("")
    lines.append("  // transition fire signals: all input states held, "
                 "guard true")
    for transition in net.transitions:
        terms = [_sig(f"st_{p}") for p in sorted(net.preset(transition))]
        guards = sorted(system.guard_ports(transition), key=str)
        if guards:
            guard_expr = " | ".join(
                f"|{_port_signal(system, g)}" for g in guards)
            terms.append(f"({guard_expr})")
        fire = _sig(f"fire_{transition}")
        expr = " & ".join(terms) if terms else "1'b1"
        result.fire_signals[transition] = expr
        lines.append(f"  wire {fire} = {expr};")
    lines.append("")
    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    for place in net.places:
        reset = "1'b1" if net.initial.get(place, 0) else "1'b0"
        lines.append(f"      {_sig('st_' + place)} <= {reset};")
    lines.append("    end else begin")
    for place in net.places:
        drains = [f"fire_{_sig(t)}" for t in sorted(net.postset(place))]
        feeds = [f"fire_{_sig(t)}" for t in sorted(net.preset(place))]
        hold = _sig(f"st_{place}")
        drained = (" | ".join(drains)) if drains else "1'b0"
        fed = (" | ".join(feeds)) if feeds else "1'b0"
        lines.append(f"      {hold} <= ({hold} & ~({drained})) | ({fed});")
    lines.append("    end")
    lines.append("  end")

    # ------------------------------------------------- steering (muxes)
    lines.append("")
    lines.append("  // data-path steering: one mux per multi-driver port")
    # group by *driving signal*: two arcs from the same source into the
    # same port are one physical wire (steered in different states), not
    # two mux inputs — matching the cost model's distinct-source count
    port_sources: dict[PortId, dict[str, set[str]]] = {}
    for arc in dp.arcs.values():
        source_signal = _port_signal(system, arc.source)
        selects = port_sources.setdefault(arc.target, {}) \
            .setdefault(source_signal, set())
        selects.update(system.controlling_states(arc.name))

    port_wire: dict[PortId, str] = {}
    for target, sources in sorted(port_sources.items(),
                                  key=lambda kv: str(kv[0])):
        wire = _sig(f"{target.vertex}_{target.port}_d")
        port_wire[target] = wire
        unique = sorted(
            (signal, " | ".join(_sig(f"st_{p}") for p in sorted(selects)))
            for signal, selects in sources.items()
        )
        if len(unique) == 1:
            lines.append(f"  wire {wire} = {unique[0][0]};")
            continue
        mux = Mux(target=target, inputs=unique)
        result.muxes.append(mux)
        arms = " : ".join(
            f"({select}) ? {signal}"
            for signal, select in unique[:-1]
        )
        lines.append(f"  wire {wire} = {arms} : {unique[-1][0]};  // mux")

    # --------------------------------------------------------- data path
    lines.append("")
    lines.append("  // data path instances")
    for vertex in dp.vertices.values():
        if vertex.is_input_vertex:
            continue
        if vertex.is_output_vertex:
            in_port = PortId(vertex.name, vertex.in_ports[0])
            wire = port_wire.get(in_port, "'bx")
            states = sorted({
                place
                for arc in dp.arcs_into(in_port)
                for place in system.controlling_states(arc.name)
            })
            valid = " | ".join(_sig(f"st_{p}") for p in states) or "1'b0"
            lines.append(f"  assign {_sig(vertex.name + '_out')} = {wire};")
            lines.append(f"  assign {_sig(vertex.name + '_valid')} = {valid};")
            result.enables[vertex.name] = valid
            continue
        if vertex.is_sequential:
            result.registers.append(vertex.name)
            in_port = PortId(vertex.name, vertex.in_ports[0])
            q_wire = _port_signal(system, PortId(vertex.name,
                                                 vertex.out_ports[0]))
            d_wire = port_wire.get(in_port, "'bx")
            states = sorted({
                place
                for arc in dp.arcs_into(in_port)
                for place in system.controlling_states(arc.name)
            })
            enable = " | ".join(_sig(f"st_{p}") for p in states) or "1'b0"
            result.enables[vertex.name] = enable
            lines.append(f"  reg [WIDTH-1:0] {q_wire};")
            lines.append(f"  always @(posedge clk) if ({enable}) "
                         f"{q_wire} <= {d_wire};")
            continue
        # combinational operator / constant
        op_names = [vertex.operation(p).name for p in vertex.out_ports]
        result.operators.append((vertex.name, ",".join(op_names)))
        out_wire = _port_signal(system, PortId(vertex.name,
                                               vertex.out_ports[0]))
        args = ", ".join(
            port_wire.get(PortId(vertex.name, p), "'bx")
            for p in vertex.in_ports
        )
        op = vertex.operation(vertex.out_ports[0])
        lines.append(f"  wire [WIDTH-1:0] {out_wire};")
        lines.append(f"  {op.name}_unit u_{_sig(vertex.name)} "
                     f"({args}{', ' if args else ''}{out_wire});")

    lines.append("")
    lines.append("endmodule")
    result.text = "\n".join(lines)
    return result


def to_verilog(system: DataControlSystem) -> str:
    """Convenience: the netlist text only."""
    return lower(system).text
