"""Plain-text tables for the benchmark harness.

The benchmarks print the series the paper's claims predict; this module
renders them uniformly so EXPERIMENTS.md can paste the output verbatim.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Fixed-width ASCII table with right-aligned numeric columns."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric(row[i]) for row in text_rows) if text_rows else False
        for i in range(len(headers))
    ]

    def render(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i]
                         else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, Any]],
                   *, title: str | None = None,
                   columns: Sequence[str] | None = None) -> str:
    """Table from a list of dicts (columns default to first record's keys)."""
    if not records:
        return title or "(no data)"
    headers = list(columns) if columns else list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows, title=title)


def _fmt(cell: Any) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    if not text:
        return False
    try:
        float(text)
        return True
    except ValueError:
        return False
