"""JSON (de)serialization of complete data/control flow systems.

Round-trips everything the model defines — vertices with operations and
initial values, arcs by name, the net's S/T/F/M0, and the C and G
mappings — so designs can be saved mid-synthesis and reloaded.  Operation
objects are serialised by *name* and reconstructed from the standard
library (constants included via their ``const[k]`` names), matching the
paper's assumption that operations come from a module library.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.system import DataControlSystem
from ..datapath.graph import DataPath
from ..datapath.operations import get_operation
from ..datapath.ports import PortId
from ..datapath.vertex import Vertex
from ..errors import DefinitionError
from ..petri.net import PetriNet
from ..values import UNDEF

FORMAT_VERSION = 1


def system_to_dict(system: DataControlSystem) -> dict[str, Any]:
    """Serialisable dict form of a system."""
    dp = system.datapath
    net = system.net
    vertices = []
    for vertex in dp.vertices.values():
        vertices.append({
            "name": vertex.name,
            "in_ports": list(vertex.in_ports),
            "out_ports": list(vertex.out_ports),
            "ops": {port: vertex.operation(port).name
                    for port in vertex.out_ports},
            "init": {port: value for port, value in vertex.init.items()
                     if value is not UNDEF},
        })
    return {
        "format": FORMAT_VERSION,
        "name": system.name,
        "datapath": {
            "name": dp.name,
            "vertices": vertices,
            "arcs": [
                {"name": arc.name, "source": str(arc.source),
                 "target": str(arc.target)}
                for arc in dp.arcs.values()
            ],
        },
        "net": {
            "name": net.name,
            "places": [{"name": p.name, "label": p.label,
                        "tokens": net.initial.get(p.name, 0)}
                       for p in net.places.values()],
            "transitions": [{"name": t.name, "label": t.label}
                            for t in net.transitions.values()],
            # sorted: net.arcs() yields in insertion order, which a
            # save/load cycle changes; keys hashed from this dict must
            # be stable across round trips
            "flow": sorted([source, target]
                           for source, target in net.arcs()),
        },
        "control": {place: sorted(arcs)
                    for place, arcs in sorted(system.control.items())},
        "guards": {transition: sorted(str(p) for p in ports)
                   for transition, ports in sorted(system.guards.items())},
    }


def system_from_dict(data: dict[str, Any]) -> DataControlSystem:
    """Inverse of :func:`system_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise DefinitionError(
            f"unsupported serialisation format {data.get('format')!r}"
        )
    dp = DataPath(name=data["datapath"]["name"])
    for entry in data["datapath"]["vertices"]:
        ops = {port: get_operation(name) for port, name in entry["ops"].items()}
        dp.add_vertex(Vertex(
            entry["name"], tuple(entry["in_ports"]), tuple(entry["out_ports"]),
            ops, dict(entry.get("init", {})),
        ))
    for entry in data["datapath"]["arcs"]:
        dp.connect(PortId.parse(entry["source"]), PortId.parse(entry["target"]),
                   name=entry["name"])
    net = PetriNet(name=data["net"]["name"])
    for entry in data["net"]["places"]:
        net.add_place(entry["name"], label=entry.get("label", ""),
                      tokens=entry.get("tokens", 0))
    for entry in data["net"]["transitions"]:
        net.add_transition(entry["name"], label=entry.get("label", ""))
    for source, target in data["net"]["flow"]:
        net.add_arc(source, target)
    system = DataControlSystem(dp, net, name=data["name"])
    for place, arcs in data["control"].items():
        system.set_control(place, arcs)
    for transition, ports in data["guards"].items():
        system.set_guard(transition, [PortId.parse(p) for p in ports])
    return system


def dumps(system: DataControlSystem, *, indent: int | None = 2) -> str:
    """Serialise a system to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent, sort_keys=True)


def loads(text: str) -> DataControlSystem:
    """Deserialise a system from a JSON string."""
    return system_from_dict(json.loads(text))


def save(system: DataControlSystem, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(system))


def load(path: str) -> DataControlSystem:
    """Read a system from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
