"""JSON (de)serialization of complete data/control flow systems.

Round-trips everything the model defines — vertices with operations and
initial values, arcs by name, the net's S/T/F/M0, and the C and G
mappings — so designs can be saved mid-synthesis and reloaded.  Operation
objects are serialised by *name* and reconstructed from the standard
library (constants included via their ``const[k]`` names), matching the
paper's assumption that operations come from a module library.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.system import DataControlSystem
from ..datapath.graph import DataPath
from ..datapath.operations import get_operation
from ..datapath.ports import PortId
from ..datapath.vertex import Vertex
from ..errors import DefinitionError, ParseError
from ..petri.net import PetriNet
from ..values import UNDEF

FORMAT_VERSION = 1

#: Keys a serialised system may carry at each level.  Unknown keys are
#: rejected loudly: a typo'd field silently ignored is a design that
#: simulates differently than its author intended.
_TOP_KEYS = {"format", "name", "datapath", "net", "control", "guards"}
_DATAPATH_KEYS = {"name", "vertices", "arcs"}
_NET_KEYS = {"name", "places", "transitions", "flow"}


def _require(data: Any, key: str, kind: type, where: str) -> Any:
    """Fetch ``data[key]`` checking presence and type; fail structurally."""
    if not isinstance(data, dict):
        raise DefinitionError(
            f"design {where}: expected an object, got "
            f"{type(data).__name__}")
    if key not in data:
        raise DefinitionError(f"design {where}: missing required key "
                              f"{key!r}")
    value = data[key]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise DefinitionError(
            f"design {where}.{key}: expected {kind.__name__}, got "
            f"{type(value).__name__}")
    return value


def _reject_unknown(data: dict, allowed: set[str], where: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise DefinitionError(
            f"design {where}: unknown key(s) {', '.join(map(repr, unknown))};"
            f" expected only {', '.join(map(repr, sorted(allowed)))}")


def system_to_dict(system: DataControlSystem) -> dict[str, Any]:
    """Serialisable dict form of a system."""
    dp = system.datapath
    net = system.net
    vertices = []
    for vertex in dp.vertices.values():
        vertices.append({
            "name": vertex.name,
            "in_ports": list(vertex.in_ports),
            "out_ports": list(vertex.out_ports),
            "ops": {port: vertex.operation(port).name
                    for port in vertex.out_ports},
            "init": {port: value for port, value in vertex.init.items()
                     if value is not UNDEF},
        })
    return {
        "format": FORMAT_VERSION,
        "name": system.name,
        "datapath": {
            "name": dp.name,
            "vertices": vertices,
            "arcs": [
                {"name": arc.name, "source": str(arc.source),
                 "target": str(arc.target)}
                for arc in dp.arcs.values()
            ],
        },
        "net": {
            "name": net.name,
            "places": [{"name": p.name, "label": p.label,
                        "tokens": net.initial.get(p.name, 0)}
                       for p in net.places.values()],
            "transitions": [{"name": t.name, "label": t.label}
                            for t in net.transitions.values()],
            # sorted: net.arcs() yields in insertion order, which a
            # save/load cycle changes; keys hashed from this dict must
            # be stable across round trips
            "flow": sorted([source, target]
                           for source, target in net.arcs()),
        },
        "control": {place: sorted(arcs)
                    for place, arcs in sorted(system.control.items())},
        "guards": {transition: sorted(str(p) for p in ports)
                   for transition, ports in sorted(system.guards.items())},
    }


def system_from_dict(data: dict[str, Any]) -> DataControlSystem:
    """Inverse of :func:`system_to_dict`.

    Validates the document's *shape* before touching the model: missing
    keys, wrong types, and unknown keys all raise a
    :class:`~repro.errors.DefinitionError` naming the offending path —
    never a bare ``KeyError``/``TypeError`` traceback.
    """
    if not isinstance(data, dict):
        raise DefinitionError(
            f"design: expected a JSON object, got {type(data).__name__}")
    if data.get("format") != FORMAT_VERSION:
        raise DefinitionError(
            f"unsupported serialisation format {data.get('format')!r}"
        )
    _reject_unknown(data, _TOP_KEYS, "top level")
    dp_data = _require(data, "datapath", dict, "top level")
    _reject_unknown(dp_data, _DATAPATH_KEYS, "datapath")
    net_data = _require(data, "net", dict, "top level")
    _reject_unknown(net_data, _NET_KEYS, "net")

    dp = DataPath(name=_require(dp_data, "name", str, "datapath"))
    for position, entry in enumerate(
            _require(dp_data, "vertices", list, "datapath")):
        where = f"datapath.vertices[{position}]"
        ops = {port: get_operation(name)
               for port, name in _require(entry, "ops", dict, where).items()}
        dp.add_vertex(Vertex(
            _require(entry, "name", str, where),
            tuple(_require(entry, "in_ports", list, where)),
            tuple(_require(entry, "out_ports", list, where)),
            ops, dict(entry.get("init", {})),
        ))
    for position, entry in enumerate(
            _require(dp_data, "arcs", list, "datapath")):
        where = f"datapath.arcs[{position}]"
        dp.connect(PortId.parse(_require(entry, "source", str, where)),
                   PortId.parse(_require(entry, "target", str, where)),
                   name=_require(entry, "name", str, where))
    net = PetriNet(name=_require(net_data, "name", str, "net"))
    for position, entry in enumerate(
            _require(net_data, "places", list, "net")):
        where = f"net.places[{position}]"
        net.add_place(_require(entry, "name", str, where),
                      label=entry.get("label", ""),
                      tokens=entry.get("tokens", 0))
    for position, entry in enumerate(
            _require(net_data, "transitions", list, "net")):
        where = f"net.transitions[{position}]"
        net.add_transition(_require(entry, "name", str, where),
                           label=entry.get("label", ""))
    for position, pair in enumerate(_require(net_data, "flow", list, "net")):
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(end, str) for end in pair)):
            raise DefinitionError(
                f"design net.flow[{position}]: expected a "
                f"[source, target] pair of names, got {pair!r}")
        net.add_arc(pair[0], pair[1])
    system = DataControlSystem(dp, net,
                               name=_require(data, "name", str, "top level"))
    for place, arcs in _require(data, "control", dict, "top level").items():
        if (not isinstance(arcs, list)
                or not all(isinstance(a, str) for a in arcs)):
            raise DefinitionError(
                f"design control[{place!r}]: expected a list of arc "
                f"names, got {arcs!r}")
        system.set_control(place, arcs)
    for transition, ports in _require(data, "guards", dict,
                                      "top level").items():
        if (not isinstance(ports, list)
                or not all(isinstance(p, str) for p in ports)):
            raise DefinitionError(
                f"design guards[{transition!r}]: expected a list of "
                f"ports, got {ports!r}")
        system.set_guard(transition, [PortId.parse(p) for p in ports])
    return system


def dumps(system: DataControlSystem, *, indent: int | None = 2) -> str:
    """Serialise a system to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent, sort_keys=True)


def loads(text: str) -> DataControlSystem:
    """Deserialise a system from a JSON string.

    Malformed JSON raises :class:`~repro.errors.ParseError` (truncated
    files included); a well-formed document with the wrong shape raises
    :class:`~repro.errors.DefinitionError`.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ParseError(f"design is not valid JSON: {error}") from None
    return system_from_dict(data)


def save(system: DataControlSystem, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(system))


def load(path: str) -> DataControlSystem:
    """Read a system from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
