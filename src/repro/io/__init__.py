"""Import/export: DOT rendering, JSON round-trips, text reports."""

from .dot import datapath_to_dot, petri_to_dot, system_to_dot
from .json_io import dumps, load, loads, save, system_from_dict, system_to_dict
from .netlist import Netlist, lower, to_verilog
from .report import format_records, format_table

__all__ = [
    "datapath_to_dot",
    "petri_to_dot",
    "system_to_dot",
    "Netlist",
    "lower",
    "to_verilog",
    "system_to_dict",
    "system_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
    "format_table",
    "format_records",
]
