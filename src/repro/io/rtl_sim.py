"""RTL co-simulation: execute the netlist *interpretation* of a design.

:mod:`repro.io.netlist` lowers a system to a one-hot FSM plus a muxed
data path.  This module executes that interpretation cycle by cycle —
an independent second semantics:

* control state lives in per-place flip-flops updated by the boolean
  equations ``p' = (p ∧ ¬drained) ∨ fed`` with ``fire_t = ⋀ preset ∧
  (⋁ guards)`` — the *hardware* reading of the token game (maximal step
  by construction, no arbitration: exactly why the model must be
  conflict-free before lowering);
* registers latch on the cycle their activation **completes**: the
  enable is the OR, over controlling places, of ``place ∧ drained`` — a
  one-cycle pulse at token departure.  A plain level enable (latch on
  every cycle the place flip-flop is set) would re-apply
  self-referencing updates (``x ← x + 1``) once per cycle while a place
  holds its token waiting at a join, where the model latches exactly
  once per activation (Definition 3.1(9));
* an input pad presents a stream value that advances on the *rising
  edge* of any place reading it; an output pad's value is sampled on the
  cycle its controlling place's token departs (``valid ∧ drained``).

:func:`simulate_rtl` returns the per-pad output streams, and
:func:`crosscheck` asserts they match the reference
:mod:`repro.semantics.simulator` — the executable proof that the netlist
lowering scheme preserves the semantics the transformations preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import DataControlSystem
from ..datapath.operations import OpKind
from ..datapath.ports import PortId
from ..datapath.validate import topological_com_order
from ..errors import ExecutionError
from ..semantics.environment import Environment
from ..values import UNDEF, Value, truthy


@dataclass
class RtlTrace:
    """Observable outcome of an RTL run."""

    outputs: dict[str, list[Value]] = field(default_factory=dict)
    inputs: dict[str, list[Value]] = field(default_factory=dict)
    cycles: int = 0
    finished: bool = False   # all state flip-flops cleared
    stalled: bool = False    # state vector stopped changing with flops set


def simulate_rtl(system: DataControlSystem, environment: Environment, *,
                 max_cycles: int = 100_000) -> RtlTrace:
    """Run the one-hot FSM / enabled-register interpretation."""
    dp = system.datapath
    net = system.net
    trace = RtlTrace()
    trace.outputs = {v.name: [] for v in dp.output_vertices()}
    trace.inputs = {v.name: [] for v in dp.input_vertices()}

    state: dict[str, bool] = {p: net.initial.get(p, 0) > 0
                              for p in net.places}
    registers: dict[PortId, Value] = {}
    for vertex in dp.vertices.values():
        for port in vertex.out_ports:
            if vertex.operation(port).kind is OpKind.SEQ:
                registers[PortId(vertex.name, port)] = \
                    vertex.initial_value(port)
    pad_value: dict[str, Value] = {v.name: UNDEF
                                   for v in dp.input_vertices()}

    # which places read each input pad / drive each register or out pad
    pad_readers: dict[str, frozenset[str]] = {}
    for vertex in dp.input_vertices():
        out = PortId(vertex.name, vertex.out_ports[0])
        places: set[str] = set()
        for arc in dp.arcs_from(out):
            places |= system.controlling_states(arc.name)
        pad_readers[vertex.name] = frozenset(places)

    previous_state = {p: False for p in net.places}

    def active_places() -> list[str]:
        return [p for p, on in state.items() if on]

    def evaluate() -> dict[PortId, Value]:
        """Combinational fixpoint under the current state vector.

        Identical shape to the model simulator's phase 1 — this is the
        part of the RTL whose muxes steer by the state flip-flops, so the
        *active-arc* view is exactly what the mux network computes.
        """
        active_arcs: set[str] = set()
        for place in active_places():
            active_arcs |= system.control_arcs(place)
        values: dict[PortId, Value] = dict(registers)
        for vertex in dp.input_vertices():
            values[PortId(vertex.name, vertex.out_ports[0])] = \
                pad_value[vertex.name]

        def resolve(port: PortId) -> Value:
            for arc in dp.arcs_into(port):
                if arc.name in active_arcs:
                    return values.get(arc.source, UNDEF)
            return UNDEF

        for name in topological_com_order(dp, active_arcs):
            vertex = dp.vertex(name)
            args = [resolve(p) for p in vertex.input_ids()]
            for port in vertex.out_ports:
                values[PortId(name, port)] = \
                    vertex.operation(port).evaluate(*args)
        values["__resolve__"] = resolve  # type: ignore[assignment]
        return values

    def flush_outputs(values, fired_drains: dict[str, bool],
                      final: bool) -> None:
        resolve = values["__resolve__"]
        for vertex in dp.output_vertices():
            in_port = PortId(vertex.name, vertex.in_ports[0])
            places = {
                place
                for arc in dp.arcs_into(in_port)
                for place in system.controlling_states(arc.name)
            }
            for place in sorted(places):
                if state[place] and (final or fired_drains.get(place, False)):
                    trace.outputs[vertex.name].append(resolve(in_port))

    for cycle in range(max_cycles):
        if not any(state.values()):
            trace.finished = True
            break

        # rising-edge input draws (a place newly reading a pad)
        for pad, readers in pad_readers.items():
            if any(state[p] and not previous_state[p] for p in readers):
                pad_value[pad] = environment.draw(pad)
                trace.inputs[pad].append(pad_value[pad])

        values = evaluate()
        resolve = values["__resolve__"]

        # fire signals (boolean, unarbitrated — maximal step in hardware)
        fire: dict[str, bool] = {}
        for transition in net.transitions:
            enabled = all(state[p] for p in net.preset(transition))
            guards = system.guard_ports(transition)
            if guards:
                enabled = enabled and any(
                    truthy(values.get(g, UNDEF)) for g in guards)
            fire[transition] = enabled

        fired_drains = {
            p: any(fire[t] for t in net.postset(p)) for p in net.places
        }

        if not any(fire.values()):
            # quiescent with flops set: sample held outputs and stop
            flush_outputs(values, fired_drains, final=True)
            trace.stalled = True
            break

        # outputs sampled at token departure
        flush_outputs(values, fired_drains, final=False)

        # register latches: on the cycle the controlling place's token
        # departs (enable = place flip-flop ∧ drained), the same instant
        # the model commits an activation's latches — a level enable held
        # over a multi-cycle window would re-apply self-referencing
        # updates (x ← x + 1) once per cycle while the place waits at a
        # join, diverging from Definition 3.1(9)'s one-latch-per-activation
        updates: dict[PortId, Value] = {}
        for vertex in dp.vertices.values():
            if not vertex.is_sequential or vertex.is_external:
                continue
            in_port = PortId(vertex.name, vertex.in_ports[0])
            enabled = any(
                state[place] and fired_drains[place]
                for arc in dp.arcs_into(in_port)
                for place in system.controlling_states(arc.name)
            )
            if not enabled:
                continue
            incoming = resolve(in_port)
            for port_name in vertex.out_ports:
                op = vertex.operation(port_name)
                if op.kind is not OpKind.SEQ:
                    continue
                port = PortId(vertex.name, port_name)
                old = registers[port]
                if op.func is None:
                    new = incoming if incoming is not UNDEF else old
                else:
                    computed = op.evaluate(old, incoming)
                    new = computed if computed is not UNDEF else old
                updates[port] = new
        registers.update(updates)

        # state flip-flop update: p' = (p & ~drained) | fed
        previous_state = dict(state)
        next_state: dict[str, bool] = {}
        for place in net.places:
            fed = any(fire[t] for t in net.preset(place))
            next_state[place] = (state[place]
                                 and not fired_drains[place]) or fed
        state = next_state
        trace.cycles = cycle + 1
    else:
        raise ExecutionError(
            f"RTL simulation did not finish within {max_cycles} cycles")

    return trace


def crosscheck(system: DataControlSystem, environment: Environment, *,
               max_cycles: int = 100_000) -> RtlTrace:
    """Run both semantics and assert the observable streams agree.

    Returns the RTL trace on success; raises ``AssertionError`` carrying
    the first differing pad otherwise.
    """
    from ..designs.base import pad_inputs, pad_outputs
    from ..semantics.simulator import simulate

    reference = simulate(system, environment.fork(), max_steps=max_cycles)
    expected_out = pad_outputs(system, reference)
    expected_in = pad_inputs(system, reference)
    rtl = simulate_rtl(system, environment.fork(), max_cycles=max_cycles)
    for pad, values in expected_out.items():
        assert rtl.outputs.get(pad, []) == values, (
            f"output pad {pad!r}: RTL {rtl.outputs.get(pad)} "
            f"vs model {values}"
        )
    for pad, values in expected_in.items():
        assert rtl.inputs.get(pad, []) == values, (
            f"input pad {pad!r}: RTL {rtl.inputs.get(pad)} "
            f"vs model {values}"
        )
    return rtl
