"""Graphviz DOT export — the paper emphasises graphical representation.

Three views: the data path alone, the control Petri net alone, and the
combined system with the ``C`` (control) and ``G`` (guard) cross edges
drawn dashed between the two halves.
"""

from __future__ import annotations

from ..core.system import DataControlSystem
from ..datapath.graph import DataPath
from ..petri.net import PetriNet


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def datapath_to_dot(dp: DataPath, *, name: str | None = None) -> str:
    """Data-path graph: boxes for vertices, labelled edges for arcs."""
    lines = [f'digraph "{_escape(name or dp.name)}" {{',
             "  rankdir=LR;",
             "  node [shape=record, fontsize=10];"]
    for vertex in dp.vertices.values():
        ops = ",".join(f"{p}:{vertex.operation(p).name}"
                       for p in vertex.out_ports)
        shape = ("invhouse" if vertex.is_input_vertex
                 else "house" if vertex.is_output_vertex
                 else "box" if vertex.is_combinational else "box3d")
        lines.append(
            f'  "{_escape(vertex.name)}" [shape={shape}, '
            f'label="{_escape(vertex.name)}\\n{_escape(ops)}"];'
        )
    for arc in dp.arcs.values():
        lines.append(
            f'  "{_escape(arc.source.vertex)}" -> "{_escape(arc.target.vertex)}" '
            f'[label="{_escape(arc.name)}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines)


def petri_to_dot(net: PetriNet, *, name: str | None = None) -> str:
    """Control net: circles for places (doubled when marked), bars for
    transitions."""
    lines = [f'digraph "{_escape(name or net.name)}" {{',
             "  rankdir=TB;",
             "  node [fontsize=10];"]
    for place in net.places.values():
        marked = net.initial.get(place.name, 0) > 0
        shape = "doublecircle" if marked else "circle"
        lines.append(f'  "{_escape(place.name)}" [shape={shape}];')
    for transition in net.transitions.values():
        lines.append(
            f'  "{_escape(transition.name)}" '
            f'[shape=box, height=0.1, style=filled, fillcolor=black, '
            f'fontcolor=white];'
        )
    for source, target in net.arcs():
        lines.append(f'  "{_escape(source)}" -> "{_escape(target)}";')
    lines.append("}")
    return "\n".join(lines)


def system_to_dot(system: DataControlSystem) -> str:
    """Combined view: both halves plus dashed C/G cross edges."""
    lines = [f'digraph "{_escape(system.name)}" {{',
             "  compound=true; fontsize=10; node [fontsize=9];",
             '  subgraph cluster_control { label="control (Petri net)";']
    net = system.net
    for place in net.places.values():
        marked = net.initial.get(place.name, 0) > 0
        shape = "doublecircle" if marked else "circle"
        lines.append(f'    "{_escape(place.name)}" [shape={shape}];')
    for transition in net.transitions.values():
        lines.append(
            f'    "{_escape(transition.name)}" [shape=box, height=0.1, '
            f'style=filled, fillcolor=black, fontcolor=white];'
        )
    for source, target in net.arcs():
        lines.append(f'    "{_escape(source)}" -> "{_escape(target)}";')
    lines.append("  }")
    lines.append('  subgraph cluster_datapath { label="data path";')
    dp = system.datapath
    for vertex in dp.vertices.values():
        shape = ("invhouse" if vertex.is_input_vertex
                 else "house" if vertex.is_output_vertex
                 else "box" if vertex.is_combinational else "box3d")
        lines.append(f'    "v_{_escape(vertex.name)}" '
                     f'[shape={shape}, label="{_escape(vertex.name)}"];')
    for arc in dp.arcs.values():
        lines.append(
            f'    "v_{_escape(arc.source.vertex)}" -> '
            f'"v_{_escape(arc.target.vertex)}" '
            f'[label="{_escape(arc.name)}", fontsize=7];'
        )
    lines.append("  }")
    # C edges: place --> controlled arc's target vertex (dashed)
    for place, arcs in sorted(system.control.items()):
        for arc_name in sorted(arcs):
            arc = dp.arc(arc_name)
            lines.append(
                f'  "{_escape(place)}" -> "v_{_escape(arc.target.vertex)}" '
                f'[style=dashed, color=blue, arrowhead=open, fontsize=7, '
                f'label="{_escape(arc_name)}"];'
            )
    # G edges: guard port's vertex --> transition (dashed)
    for transition, ports in sorted(system.guards.items()):
        for port in sorted(ports, key=str):
            lines.append(
                f'  "v_{_escape(port.vertex)}" -> "{_escape(transition)}" '
                f'[style=dashed, color=red, arrowhead=open];'
            )
    lines.append("}")
    return "\n".join(lines)
