"""The batch engine: a process-pool fleet with fault isolation.

:class:`ExecutionEngine` runs :class:`~repro.runtime.jobs.JobSpec`
batches either serially in-process (``workers=0``, also the graceful
degradation path when a pool cannot be started) or on a
``ProcessPoolExecutor`` fleet.  The parallel path provides:

* **per-job timeout** — the in-flight window never exceeds the worker
  count, so a job starts (essentially) when submitted and its deadline
  is measured from that point; an expired job is charged an attempt and
  the pool is rebuilt to reclaim the stuck worker;
* **bounded retry with full-jitter exponential backoff** — a failed
  attempt requeues the job with a delay drawn uniformly from
  ``[0, backoff · 2^(attempt-1)]`` until the attempt budget
  (``retries + 1``) is spent.  The jitter matters at fleet scale: a
  deterministic delay would march every simultaneous failure back into
  the pool in lockstep;
* **crash isolation** — a killed worker breaks the whole
  ``ProcessPoolExecutor``, which cannot tell the engine *which* job was
  guilty.  The engine therefore voids the interrupted attempts, rebuilds
  the pool, and re-runs the suspects one at a time: a job that crashes
  alone is definitively guilty and is charged (and eventually failed),
  while the innocent bystanders complete normally.  Every pool reset
  either finalises or charges at least one job out of a finite attempt
  budget, so the loop terminates — the engine never deadlocks;
* **supervision** (:mod:`repro.runtime.supervisor`) — with a
  :class:`~repro.runtime.supervisor.SupervisorConfig` attached, workers
  heartbeat to disk and a watchdog thread SIGKILLs the *hung* (not
  merely slow) ones; a key that crashes its worker N times is
  **quarantined** (finalised with its own status, reported, never
  retried again); and a :class:`~repro.runtime.supervisor.CircuitBreaker`
  degrades the whole batch to serial execution when the pool's crash
  rate says the fleet itself is sick;
* **write-ahead journal** (:mod:`repro.runtime.durable`) — with a
  :class:`~repro.runtime.durable.Journal` attached, every dispatch and
  every settle is fsynced to disk before the engine moves on, so a
  SIGKILLed batch can be resumed (``resume_from=``) without re-running
  settled jobs;
* **graceful shutdown** — ``stop_event`` (typically wired to
  SIGTERM/SIGINT via :class:`~repro.runtime.supervisor.GracefulShutdown`)
  stops dispatch at the next tick; unfinished jobs are finalised as
  ``interrupted``, the journal is already flushed per record, and the
  partial batch returns in order;
* **content-addressed caching** — with a
  :class:`~repro.runtime.cache.ResultCache` attached, jobs whose key is
  already stored are answered without any worker dispatch, and fresh
  successes are written back.

Results come back in submission order as :class:`JobResult` records
inside a :class:`BatchResult`, alongside the batch's aggregated
:class:`~repro.runtime.metrics.FleetMetrics`.
"""

from __future__ import annotations

import contextlib
import random
import shutil
import tempfile
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass
from time import monotonic, sleep
from typing import Any, Callable, Iterator, Mapping, Sequence

from .cache import ResultCache
from .durable import Journal, dispatch_record, settle_record
from .jobs import JobSpec, canonical_json, execute_job
from .metrics import FleetMetrics
from .resilience import Backoff
from .supervisor import (
    SupervisorConfig,
    Watchdog,
    start_worker_heartbeat,
)

_TICK_SECONDS = 0.05

#: Statuses that count as a successful outcome.
_OK_STATUSES = ("ok", "cached", "replayed")


def _worker_run(spec_dict: dict) -> dict:
    """Top-level worker entry point (importable, hence spawn-safe).

    Converts exceptions into error records so an ordinary job failure
    travels back as data instead of breaking the pool; only a genuine
    worker death (SIGKILL, segfault) surfaces as a broken executor.
    """
    try:
        out = execute_job(spec_dict)
        return {"status": "ok", "payload": out["payload"],
                "sim_metrics": out.get("sim_metrics")}
    except Exception as error:
        return {"status": "error",
                "error": f"{type(error).__name__}: {error}"}


@dataclass
class JobResult:
    """Outcome of one job.

    ``status`` is one of ``ok`` (executed), ``cached`` (answered from
    the result cache), ``replayed`` (answered from a journal on resume),
    ``failed`` (attempt budget exhausted), ``quarantined`` (poison key —
    crashed its worker too many times), or ``interrupted`` (batch was
    stopped before the job finished).
    """

    spec: JobSpec
    status: str
    payload: dict[str, Any] | None = None
    error: str = ""
    attempts: int = 0
    timed_out: bool = False
    queue_seconds: float = 0.0
    run_seconds: float = 0.0
    sim_metrics: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status in _OK_STATUSES

    @property
    def key(self) -> str:
        return self.spec.key

    def payload_bytes(self) -> bytes:
        """Canonical byte encoding of the deterministic payload."""
        return canonical_json(self.payload).encode("ascii")

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.spec.kind,
            "label": self.spec.label,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "payload": self.payload,
        }


@dataclass
class BatchResult:
    """All job results of one batch, in submission order, plus metrics."""

    results: list[JobResult]
    metrics: FleetMetrics

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def interrupted(self) -> bool:
        """True when the batch was stopped before every job finished."""
        return self.metrics.interrupted

    def failures(self) -> list[JobResult]:
        return [result for result in self.results if not result.ok]

    def quarantined(self) -> list[JobResult]:
        return [result for result in self.results
                if result.status == "quarantined"]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> JobResult:
        return self.results[index]


@dataclass
class _Task:
    """Engine-internal mutable state of one not-yet-finished job."""

    index: int
    spec: JobSpec
    attempts: int = 0
    timed_out: bool = False
    error: str = ""
    not_before: float = 0.0      # backoff gate (monotonic time)
    ready_since: float = 0.0     # for queue-time accounting
    queue_seconds: float = 0.0
    run_seconds: float = 0.0


class ExecutionEngine:
    """Batch runner over serial or process-pool backends.

    Parameters
    ----------
    workers:
        Pool size; ``0`` selects serial in-process execution.
    timeout:
        Per-job wall-time limit in seconds (enforced on the pool backend;
        serial execution cannot preempt a running job and ignores it).
    retries:
        Additional attempts granted after a failed/timed-out/crashed
        attempt (total attempt budget is ``retries + 1``).
    backoff:
        Backoff ceiling base: attempt ``n`` retries after a delay drawn
        uniformly from ``[0, backoff · 2^(n-1)]`` (full jitter).
    cache:
        Optional :class:`ResultCache`; hits skip dispatch entirely and
        fresh successes are stored back.
    supervisor:
        Optional :class:`~repro.runtime.supervisor.SupervisorConfig`
        enabling heartbeat/watchdog hang detection, poison-job
        quarantine, and the crash-rate circuit breaker.  When omitted, a
        default config provides quarantine and breaker with hang
        detection disabled.
    journal:
        Optional :class:`~repro.runtime.durable.Journal`; every dispatch
        and settle is durably appended, making the batch resumable after
        SIGKILL via ``run(..., resume_from=...)``.
    jitter_seed:
        Seed for the retry-jitter RNG (``None`` = nondeterministic).
        Tests pin it to make backoff schedules reproducible.
    """

    def __init__(self, *, workers: int = 0, timeout: float | None = None,
                 retries: int = 1, backoff: float = 0.05,
                 cache: ResultCache | None = None,
                 supervisor: SupervisorConfig | None = None,
                 journal: Journal | None = None,
                 jitter_seed: int | None = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.cache = cache
        self.supervisor = supervisor or SupervisorConfig()
        self.journal = journal
        self.metrics: FleetMetrics | None = None  # last batch's aggregate
        self._jitter = random.Random(jitter_seed)
        self._backoff = Backoff(backoff, cap=None, rng=self._jitter)
        self._quarantine = self.supervisor.make_quarantine()
        self._pool: ProcessPoolExecutor | None = None
        self._own_heartbeat_dir: str | None = None
        self._on_result: Callable[[JobResult], None] | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down, terminating any lingering workers."""
        self._teardown_pool()
        if self._own_heartbeat_dir is not None:
            shutil.rmtree(self._own_heartbeat_dir, ignore_errors=True)
            self._own_heartbeat_dir = None

    # ------------------------------------------------------------------
    def quarantined_keys(self) -> list[str]:
        """Keys quarantined so far (across batches run by this engine)."""
        return self._quarantine.poisoned_keys()

    def _retry_delay(self, attempts: int) -> float:
        """Full-jitter backoff: uniform over [0, backoff · 2^(n-1)]."""
        return self._backoff.delay(attempts)

    def _heartbeat_dir(self) -> str:
        if self.supervisor.heartbeat_dir is not None:
            return self.supervisor.heartbeat_dir
        if self._own_heartbeat_dir is None:
            self._own_heartbeat_dir = tempfile.mkdtemp(prefix="repro-hb-")
        return self._own_heartbeat_dir

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec], *,
            on_result: Callable[[JobResult], None] | None = None,
            stop_event: threading.Event | None = None,
            resume_from: Mapping[str, dict[str, Any] | None] | None = None
            ) -> BatchResult:
        """Execute a batch; results come back in submission order.

        ``on_result`` is invoked once per job the moment it reaches a
        final status — the streaming hook journalling callers use.
        ``stop_event`` requests a graceful stop: dispatch halts at the
        next tick and unfinished jobs finalise as ``interrupted``
        (``KeyboardInterrupt`` mid-batch behaves the same way).
        ``resume_from`` maps content-addressed keys to previously
        settled payloads (e.g. from :func:`~repro.runtime.durable.
        read_journal`); matching jobs are answered as ``replayed``
        without dispatch.
        """
        started = monotonic()
        metrics = FleetMetrics(workers=self.workers)
        results: list[JobResult | None] = [None] * len(specs)
        self._on_result = on_result
        pending: deque[_Task] = deque()
        try:
            for index, spec in enumerate(specs):
                if resume_from is not None and spec.key in resume_from:
                    self._finalize(results, index, JobResult(
                        spec, "replayed", resume_from[spec.key]))
                    continue
                if self.cache is not None:
                    payload = self.cache.get(spec.key)
                    if payload is not None:
                        self._finalize(results, index,
                                       JobResult(spec, "cached", payload))
                        continue
                pending.append(_Task(index, spec, ready_since=started))

            if pending:
                if self.workers == 0:
                    self._run_serial(pending, results, stop_event)
                elif self._ensure_pool() is None:
                    metrics.degraded_to_serial = True
                    self._run_serial(pending, results, stop_event)
                else:
                    self._run_parallel(pending, results, metrics, stop_event)
        except KeyboardInterrupt:
            metrics.interrupted = True
            self._teardown_pool()
        if stop_event is not None and stop_event.is_set():
            metrics.interrupted = True

        # finalise whatever never finished (graceful stop / interrupt)
        for index, spec in enumerate(specs):
            if results[index] is None:
                metrics.interrupted = True
                self._finalize(results, index, JobResult(
                    spec, "interrupted", None,
                    error="batch stopped before this job finished"))

        finished: list[JobResult] = [r for r in results if r is not None]
        assert len(finished) == len(specs), "engine lost a job"
        for result in finished:
            metrics.record(result)
        metrics.quarantined_keys = self._quarantine.poisoned_keys()
        metrics.wall_seconds = monotonic() - started
        self.metrics = metrics
        self._on_result = None
        return BatchResult(finished, metrics)

    # ------------------------------------------------------------------
    def _finalize(self, results: list[JobResult | None], index: int,
                  result: JobResult) -> None:
        """Commit one final status: results slot, journal, callback."""
        results[index] = result
        if self.journal is not None and not self.journal.closed:
            self.journal.append(settle_record(
                result.key, result.status, error=result.error,
                payload=result.payload if result.ok else None))
        if self._on_result is not None:
            self._on_result(result)

    def _journal_dispatch(self, task: _Task) -> None:
        if self.journal is not None and not self.journal.closed:
            self.journal.append(dispatch_record(task.spec.key, task.attempts))

    # ------------------------------------------------------------------
    # serial backend (workers=0, or degradation when the pool won't start)
    # ------------------------------------------------------------------
    def _run_serial(self, pending: deque[_Task],
                    results: list[JobResult | None],
                    stop_event: threading.Event | None = None) -> None:
        for task in pending:
            if stop_event is not None and stop_event.is_set():
                return
            if self._quarantine.is_poisoned(task.spec.key):
                self._finalize(results, task.index,
                               self._quarantined(task))
                continue
            while True:
                task.attempts += 1
                self._journal_dispatch(task)
                if (task.spec.kind == "probe"
                        and task.spec.params.get("action") == "crash"):
                    # in-process, this would kill the engine itself
                    out = {"status": "error",
                           "error": "ExecutionError: crash probe requires "
                                    "a process-pool backend (workers > 0)"}
                else:
                    attempt_started = monotonic()
                    out = _worker_run(task.spec.to_dict())
                    task.run_seconds += monotonic() - attempt_started
                if out["status"] == "ok":
                    self._finalize(results, task.index,
                                   self._success(task, out))
                    break
                task.error = out["error"]
                if task.attempts > self.retries:
                    self._finalize(results, task.index, self._failure(task))
                    break
                sleep(self._retry_delay(task.attempts))

    # ------------------------------------------------------------------
    # process-pool backend
    # ------------------------------------------------------------------
    def _run_parallel(self, pending: deque[_Task],
                      results: list[JobResult | None],
                      metrics: FleetMetrics,
                      stop_event: threading.Event | None = None) -> None:
        inflight: dict[Future, tuple[_Task, float]] = {}
        suspects: deque[_Task] = deque()  # post-crash isolation queue
        pool_dead = False
        breaker = self.supervisor.make_breaker()
        watchdog = self._start_watchdog(metrics)

        def stopped() -> bool:
            return stop_event is not None and stop_event.is_set()

        def submit(task: _Task) -> bool:
            if self._quarantine.is_poisoned(task.spec.key):
                self._finalize(results, task.index, self._quarantined(task))
                return True
            pool = self._ensure_pool()
            if pool is None:
                return False
            now = monotonic()
            task.attempts += 1
            breaker.record_attempt()
            task.queue_seconds += max(now - max(task.ready_since,
                                                task.not_before), 0.0)
            self._journal_dispatch(task)
            inflight[pool.submit(_worker_run, task.spec.to_dict())] = (task,
                                                                       now)
            return True

        def requeue(task: _Task, *, delay: float = 0.0,
                    suspect: bool = False) -> None:
            now = monotonic()
            task.ready_since = now
            task.not_before = now + delay
            (suspects if suspect else pending).append(task)

        def settle_failure(task: _Task, error: str, *, timed_out: bool = False,
                           suspect: bool = False) -> None:
            """Charge one failed attempt; retry with backoff or finalise."""
            task.error = error
            task.timed_out = task.timed_out or timed_out
            if task.attempts > self.retries:
                self._finalize(results, task.index, self._failure(task))
            else:
                requeue(task, delay=self._retry_delay(task.attempts),
                        suspect=suspect)

        def settle_crash(task: _Task, error: str) -> None:
            """A definitively guilty crash: quarantine bookkeeping first."""
            count = self._quarantine.record_crash(task.spec.key)
            if self._quarantine.is_poisoned(task.spec.key):
                task.error = (f"{error} ({count}× on this key; quarantined)")
                self._finalize(results, task.index, self._quarantined(task))
            else:
                settle_failure(task, error, suspect=True)

        def reset_pool(interrupted: list[_Task], *, crashed: bool) -> None:
            """Rebuild the pool after a crash or a timeout expiry."""
            metrics.pool_resets += 1
            self._teardown_pool()
            if crashed:
                breaker.record_crash()
            if crashed and len(interrupted) == 1:
                # a job that dies alone is definitively guilty; keep it in
                # isolation for any retry it has left
                settle_crash(interrupted[0], "worker process died")
            elif crashed:
                # guilt unknown: void the interrupted attempts and re-run
                # the suspects one at a time so the culprit self-identifies
                for task in interrupted:
                    task.attempts -= 1
                    requeue(task, suspect=True)
            else:
                for task in interrupted:  # innocent bystanders of a timeout
                    task.attempts -= 1
                    requeue(task)

        while (pending or suspects or inflight) and not pool_dead:
            if stopped():
                break
            if breaker.tripped:
                metrics.breaker_tripped = True
                pool_dead = True  # drain the remainder serially below
                continue
            now = monotonic()
            # top up the window; suspects run strictly isolated
            if suspects:
                if not inflight:
                    if suspects[0].not_before <= now:
                        task = suspects.popleft()
                        if not submit(task):
                            suspects.appendleft(task)
                            pool_dead = True
                            continue
                    else:
                        sleep(_TICK_SECONDS)
                        continue
                # else: drain the in-flight window before isolating suspects
            else:
                while pending and len(inflight) < self.workers:
                    task = self._pop_ready(pending, now)
                    if task is None:
                        break
                    if not submit(task):
                        pending.appendleft(task)
                        pool_dead = True
                        break
                if pool_dead:
                    continue
                if not inflight:
                    sleep(_TICK_SECONDS)  # every pending job is backing off
                    continue

            done, _ = wait(set(inflight), timeout=_TICK_SECONDS,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                if future not in inflight:
                    continue
                task, submitted_at = inflight.pop(future)
                try:
                    out = future.result()
                except BrokenExecutor:
                    inflight[future] = (task, submitted_at)  # keep for reset
                    broken = True
                    break
                except Exception as error:  # unpicklable result, …
                    task.run_seconds += monotonic() - submitted_at
                    settle_failure(task, f"{type(error).__name__}: {error}")
                    continue
                task.run_seconds += monotonic() - submitted_at
                if out["status"] == "ok":
                    self._finalize(results, task.index,
                                   self._success(task, out))
                else:
                    settle_failure(task, out["error"])
            if broken:
                interrupted = [task for task, _ in inflight.values()]
                inflight.clear()
                reset_pool(interrupted, crashed=True)
                continue

            if self.timeout is not None and inflight:
                now = monotonic()
                expired = [(future, task, submitted_at)
                           for future, (task, submitted_at) in inflight.items()
                           if now - submitted_at > self.timeout]
                if expired:
                    expired_futures = {future for future, _, _ in expired}
                    bystanders = [task for future, (task, _)
                                  in inflight.items()
                                  if future not in expired_futures]
                    for _, task, submitted_at in expired:
                        task.run_seconds += now - submitted_at
                        settle_failure(task,
                                       f"timed out after {self.timeout:g}s",
                                       timed_out=True)
                    inflight.clear()
                    reset_pool(bystanders, crashed=False)

        if watchdog is not None:
            metrics.hangs_detected += watchdog.hangs_detected
            watchdog.stop()

        if stopped():
            self._teardown_pool()
            return  # unfinished jobs finalise as interrupted in run()

        # the pool could not be rebuilt (or the breaker tripped): drain
        # the remainder serially, skipping quarantined keys
        leftovers: deque[_Task] = deque()
        leftovers.extend(suspects)
        leftovers.extend(sorted(pending, key=lambda t: t.index))
        if leftovers:
            metrics.degraded_to_serial = True
            self._run_serial(leftovers, results, stop_event)

    def _start_watchdog(self, metrics: FleetMetrics) -> Watchdog | None:
        if self.supervisor.hang_timeout is None:
            return None

        def pool_pids() -> list[int]:
            pool = self._pool
            if pool is None:
                return []
            return [process.pid
                    for process in (getattr(pool, "_processes", None)
                                    or {}).values()]

        watchdog = Watchdog(self._heartbeat_dir(),
                            self.supervisor.hang_timeout, pool_pids)
        watchdog.start()
        return watchdog

    @staticmethod
    def _pop_ready(queue: deque[_Task], now: float) -> _Task | None:
        """Remove and return the first task whose backoff gate is open."""
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    # ------------------------------------------------------------------
    def _success(self, task: _Task, out: dict) -> JobResult:
        payload = out["payload"]
        if self.cache is not None:
            self.cache.put(task.spec.key, task.spec.kind, payload)
        return JobResult(task.spec, "ok", payload,
                         attempts=task.attempts, timed_out=task.timed_out,
                         queue_seconds=task.queue_seconds,
                         run_seconds=task.run_seconds,
                         sim_metrics=out.get("sim_metrics"))

    @staticmethod
    def _failure(task: _Task) -> JobResult:
        return JobResult(task.spec, "failed", None, error=task.error,
                         attempts=task.attempts, timed_out=task.timed_out,
                         queue_seconds=task.queue_seconds,
                         run_seconds=task.run_seconds)

    def _quarantined(self, task: _Task) -> JobResult:
        error = task.error or (
            f"key quarantined after "
            f"{self._quarantine.crash_count(task.spec.key)} worker crash(es)")
        return JobResult(task.spec, "quarantined", None, error=error,
                         attempts=task.attempts, timed_out=task.timed_out,
                         queue_seconds=task.queue_seconds,
                         run_seconds=task.run_seconds)

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is None:
            kwargs: dict[str, Any] = {}
            if self.supervisor.hang_timeout is not None:
                kwargs = {"initializer": start_worker_heartbeat,
                          "initargs": (self._heartbeat_dir(),
                                       self.supervisor.heartbeat_interval)}
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                                 **kwargs)
            except Exception:
                self._pool = None
        return self._pool

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            with contextlib.suppress(Exception):
                process.terminate()
        with contextlib.suppress(Exception):
            pool.shutdown(wait=False, cancel_futures=True)
