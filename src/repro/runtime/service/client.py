"""HTTP client for the execution service (stdlib ``urllib`` only).

:class:`ServiceClient` speaks the ``/v1`` API of a running
``repro serve`` instance.  ``repro batch --server URL`` uses it to
submit a job file over HTTP instead of running locally, poll to
completion, and rebuild the familiar
:class:`~repro.runtime.executor.BatchResult` so reporting (and exit
codes) match the local path exactly.  Remote workers use :meth:`claim`
and :meth:`settle` through
:class:`~repro.runtime.service.worker.RemoteQueueSource`.
"""

from __future__ import annotations

import json
from time import monotonic, sleep
from typing import Any, Sequence

from ...errors import ExecutionError
from ..executor import BatchResult, JobResult
from ..jobs import JobSpec
from ..metrics import FleetMetrics


class ServiceError(ExecutionError):
    """The server answered with an error (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Thin JSON-over-HTTP client for one server."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                body: Any = None) -> tuple[int, Any]:
        """One request; returns ``(status, decoded JSON or None)``."""
        import urllib.error
        import urllib.request

        data = (json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
                return response.status, (json.loads(raw.decode("utf-8"))
                                         if raw else None)
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                decoded = None
            return error.code, decoded
        except OSError as error:
            raise ServiceError(
                f"cannot reach server at {self.base_url}: {error}") from None

    def _get(self, path: str) -> Any:
        status, body = self.request("GET", path)
        if status != 200:
            raise ServiceError(
                f"GET {path} failed with HTTP {status}: "
                f"{(body or {}).get('error', '')}", status)
        return body

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._get("/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._get("/v1/metrics")

    def queue(self) -> dict[str, Any]:
        return self._get("/v1/queue")

    def job(self, key: str) -> dict[str, Any] | None:
        status, body = self.request("GET", f"/v1/jobs/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"GET /v1/jobs/{key} failed with HTTP {status}", status)
        return body

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[JobSpec] | JobSpec, *,
               tenant: str = "default",
               priority: int = 0) -> list[dict[str, Any]]:
        """Submit specs; returns per-spec state records (incl. throttled).

        429 (everything throttled) is returned as records, not raised —
        callers decide whether to back off (see :meth:`submit_all`).
        """
        if isinstance(specs, JobSpec):
            specs = [specs]
        body = {"jobs": [spec.to_dict() for spec in specs],
                "tenant": tenant, "priority": priority}
        status, decoded = self.request("POST", "/v1/jobs", body)
        if status not in (200, 429) or not isinstance(decoded, dict):
            raise ServiceError(
                f"POST /v1/jobs failed with HTTP {status}: "
                f"{(decoded or {}).get('error', '')}", status)
        return decoded["results"]

    def submit_all(self, specs: Sequence[JobSpec], *,
                   tenant: str = "default", priority: int = 0,
                   retry_seconds: float = 0.1,
                   max_seconds: float = 300.0) -> list[dict[str, Any]]:
        """Submit, retrying throttled items until the bucket refills."""
        records: dict[str, dict[str, Any]] = {}
        remaining = list(specs)
        deadline = monotonic() + max_seconds
        while remaining:
            throttled: list[JobSpec] = []
            for spec, record in zip(remaining,
                                    self.submit(remaining, tenant=tenant,
                                                priority=priority)):
                if record["state"] == "throttled":
                    throttled.append(spec)
                else:
                    records[spec.key] = record
            if throttled and monotonic() > deadline:
                raise ServiceError(
                    f"{len(throttled)} job(s) still throttled after "
                    f"{max_seconds:g}s")
            remaining = throttled
            if remaining:
                sleep(retry_seconds)
        return [records[spec.key] for spec in specs]

    # ------------------------------------------------------------------
    def wait(self, keys: Sequence[str], *, poll: float = 0.1,
             max_seconds: float = 600.0) -> dict[str, dict[str, Any]]:
        """Poll until every key is done/failed; returns final records."""
        outstanding = set(keys)
        final: dict[str, dict[str, Any]] = {}
        deadline = monotonic() + max_seconds
        while outstanding:
            for key in sorted(outstanding):
                record = self.job(key)
                if record is not None and record["state"] in ("done",
                                                              "failed"):
                    final[key] = record
            outstanding -= set(final)
            if outstanding:
                if monotonic() > deadline:
                    raise ServiceError(
                        f"{len(outstanding)} job(s) still running after "
                        f"{max_seconds:g}s")
                sleep(poll)
        return final

    # ------------------------------------------------------------------
    def claim(self, *, shard: int | None = None,
              worker: str = "") -> dict[str, Any] | None:
        status, body = self.request("POST", "/v1/claim",
                                    {"shard": shard, "worker": worker})
        if status == 204:
            return None
        if status != 200 or not isinstance(body, dict):
            raise ServiceError(
                f"POST /v1/claim failed with HTTP {status}", status)
        return body

    def settle(self, **fields: Any) -> bool:
        status, _body = self.request("POST", "/v1/settle", fields)
        if status == 409:
            return False  # lease expired under us; the other settle won
        if status != 200:
            raise ServiceError(
                f"POST /v1/settle failed with HTTP {status}", status)
        return True

    # ------------------------------------------------------------------
    def run_batch(self, specs: Sequence[JobSpec], *,
                  tenant: str = "default", priority: int = 0,
                  poll: float = 0.1,
                  max_seconds: float = 600.0) -> BatchResult:
        """Submit + wait + rebuild a local-shaped :class:`BatchResult`.

        Statuses travel through unchanged (``ok``/``cached``/
        ``replayed``/``failed``/``quarantined``), so
        ``repro batch --server`` reports and exits exactly like the
        local path on the same outcomes.
        """
        by_key = {spec.key: spec for spec in specs}
        started = monotonic()
        self.submit_all(specs, tenant=tenant, priority=priority,
                        max_seconds=max_seconds)
        final = self.wait(list(by_key), poll=poll, max_seconds=max_seconds)
        metrics = FleetMetrics()
        results = []
        for spec in specs:
            record = final[spec.key]
            results.append(JobResult(
                spec, record.get("status", "failed"),
                record.get("payload"), error=record.get("error", ""),
                attempts=record.get("attempts", 0),
                run_seconds=record.get("run_seconds", 0.0)))
        # de-duplicated specs share one record; count each submission
        for result in results:
            metrics.record(result)
        metrics.wall_seconds = monotonic() - started
        return BatchResult(results, metrics)


def parse_server_url(url: str) -> str:
    """Normalise a ``--server`` value (bare host:port gains http://)."""
    if "://" not in url:
        return f"http://{url}"
    return url


def fetch_json(url: str, *, timeout: float = 30.0) -> Any:
    """GET one absolute URL as JSON (CI/scripting helper)."""
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def submit_job_file(client: ServiceClient, path: str, *,
                    tenant: str = "default", priority: int = 0,
                    poll: float = 0.1,
                    max_seconds: float = 600.0) -> BatchResult:
    """Load a job file and run it through :meth:`ServiceClient.run_batch`."""
    from ..jobs import load_job_file

    return client.run_batch(load_job_file(path), tenant=tenant,
                            priority=priority, poll=poll,
                            max_seconds=max_seconds)


def wait_until_healthy(base_url: str, *, max_seconds: float = 30.0,
                       poll: float = 0.1) -> dict[str, Any]:
    """Block until a just-started server answers ``/v1/healthz``."""
    client = ServiceClient(base_url, timeout=poll + 1.0)
    deadline = monotonic() + max_seconds
    while True:
        try:
            return client.healthz()
        except ServiceError:
            if monotonic() > deadline:
                raise
            sleep(poll)
