"""HTTP client for the execution service (stdlib ``urllib`` only).

:class:`ServiceClient` speaks the ``/v1`` API of a running
``repro serve`` instance.  ``repro batch --server URL`` uses it to
submit a job file over HTTP instead of running locally, poll to
completion, and rebuild the familiar
:class:`~repro.runtime.executor.BatchResult` so reporting (and exit
codes) match the local path exactly.  Remote workers use :meth:`claim`
and :meth:`settle` through
:class:`~repro.runtime.service.worker.RemoteQueueSource`.

Since the chaos hardening pass the client is *resilient by default*:

* transport failures (refused connections, resets, truncated or
  corrupted responses) and 503 load shedding are retried with the
  engine's capped full-jitter exponential backoff
  (:class:`~repro.runtime.resilience.Backoff`), honouring the server's
  ``Retry-After`` hint when one is sent;
* every logical call carries a **deadline** distinct from the
  per-attempt socket ``timeout`` — the timeout bounds one connect/read,
  the deadline bounds the whole retry loop, and the remaining budget
  travels in the ``X-Repro-Deadline`` header so the server drops
  already-hopeless requests;
* an optional shared
  :class:`~repro.runtime.supervisor.ConnectionBreaker` fails calls
  instantly while the server is known-dead instead of paying a timeout
  per call, probing recovery through half-open.

Retrying submissions is safe because job keys are content-addressed
(a duplicate submit deduplicates server-side) and settlement is
exactly-once (a duplicate settle is answered 409).
"""

from __future__ import annotations

import json
from time import monotonic, sleep
from typing import Any, Sequence

from ...errors import ExecutionError
from ..executor import BatchResult, JobResult
from ..jobs import JobSpec
from ..metrics import FleetMetrics
from ..resilience import DEADLINE_HEADER, Backoff, Deadline, parse_retry_after
from ..supervisor import ConnectionBreaker

#: Statuses that are worth retrying on an idempotent route.
_RETRIABLE_STATUSES = (503,)


class ServiceError(ExecutionError):
    """The server answered with an error (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """JSON-over-HTTP client for one server, resilient by default.

    Parameters
    ----------
    timeout:
        Per-attempt socket timeout (covers connect and read of one
        request).
    deadline:
        Default end-to-end budget for one logical call across all its
        retries; ``None`` leaves only ``timeout`` per attempt.
    retries / backoff / backoff_cap / jitter_seed:
        Retry budget for idempotent calls and the full-jitter schedule
        (attempt ``n`` waits uniformly in
        ``[0, min(cap, backoff · 2^(n-1))]``); the seed pins schedules
        in tests.  ``retries=0`` restores fail-fast behaviour.
    breaker:
        Optional :class:`ConnectionBreaker`, possibly shared with other
        clients of the same host (e.g. a
        :class:`~repro.runtime.service.store.RemoteBackend`); when the
        breaker is open, calls raise immediately instead of timing out.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 deadline: float | None = None, retries: int = 4,
                 backoff: float = 0.05, backoff_cap: float = 2.0,
                 jitter_seed: int | None = None,
                 breaker: ConnectionBreaker | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.deadline = deadline
        self.retries = retries
        self.backoff_policy = Backoff(backoff, cap=backoff_cap,
                                      seed=jitter_seed)
        self.breaker = breaker
        self.retries_performed = 0
        self.last_retry_after: float | None = None

    # ------------------------------------------------------------------
    def request(self, method: str, path: str, body: Any = None, *,
                deadline: Deadline | None = None) -> tuple[int, Any]:
        """One raw request; returns ``(status, decoded JSON or None)``.

        No retries at this layer (tests drive exact statuses through
        it); transport failures — unreachable server, resets, truncated
        or undecodable responses — raise :class:`ServiceError` with
        ``status=0``.  ``deadline`` clamps the socket timeout and is
        advertised to the server via ``X-Repro-Deadline``.
        """
        import http.client
        import urllib.error
        import urllib.request

        data = (json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None else None)
        headers = {"Content-Type": "application/json"} if data else {}
        timeout = self.timeout
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise ServiceError(
                    f"deadline exhausted before {method} {path}")
            timeout = deadline.clamp(timeout)
            if remaining != float("inf"):
                headers[DEADLINE_HEADER] = f"{remaining:.3f}"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers=headers)
        self.last_retry_after = None
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as response:
                raw = response.read()
                self.last_retry_after = parse_retry_after(
                    response.headers.get("Retry-After"))
                status = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            self.last_retry_after = parse_retry_after(
                error.headers.get("Retry-After") if error.headers else None)
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                decoded = None
            return error.code, decoded
        except (http.client.HTTPException, OSError) as error:
            # refused/reset/timeout/truncated — the transport failed
            raise ServiceError(
                f"cannot reach server at {self.base_url}: "
                f"{type(error).__name__}: {error}") from None
        if not raw:
            return status, None
        try:
            return status, json.loads(raw.decode("utf-8"))
        except ValueError as error:
            # a 200 whose body does not decode is a damaged response
            # (e.g. corrupted in flight), not a server answer
            raise ServiceError(
                f"undecodable response from {method} {path}: "
                f"{error}") from None

    def request_retry(self, method: str, path: str, body: Any = None, *,
                      idempotent: bool = True,
                      max_seconds: float | None = None) -> tuple[int, Any]:
        """:meth:`request` with backoff retries and breaker protection.

        Retries transport failures and 503 shedding (honouring
        ``Retry-After``) while the route is ``idempotent``, the retry
        budget lasts, and the deadline has not expired.  Non-idempotent
        calls get exactly one attempt.
        """
        deadline = Deadline(max_seconds if max_seconds is not None
                            else self.deadline)
        attempt = 0
        while True:
            attempt += 1
            if self.breaker is not None and not self.breaker.allow():
                raise ServiceError(
                    f"circuit breaker open for {self.base_url} "
                    f"({self.breaker.report()['consecutive_failures']} "
                    f"consecutive failures)")
            try:
                status, decoded = self.request(method, path, body,
                                               deadline=deadline)
            except ServiceError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if (not idempotent or attempt > self.retries
                        or deadline.expired):
                    raise
                self._backoff_sleep(attempt, deadline, None)
                continue
            if self.breaker is not None:
                # any HTTP answer proves the host is alive; HTTP-level
                # errors (4xx/5xx) are the application's business
                self.breaker.record_success()
            if (status in _RETRIABLE_STATUSES and idempotent
                    and attempt <= self.retries and not deadline.expired):
                self._backoff_sleep(attempt, deadline,
                                    self.last_retry_after)
                continue
            return status, decoded

    def _backoff_sleep(self, attempt: int, deadline: Deadline,
                       hint: float | None) -> None:
        delay = hint if hint is not None else \
            self.backoff_policy.delay(attempt)
        remaining = deadline.remaining()
        if remaining != float("inf"):
            delay = min(delay, max(0.0, remaining))
        self.retries_performed += 1
        if delay > 0:
            sleep(delay)

    def _get(self, path: str) -> Any:
        status, body = self.request_retry("GET", path)
        if status != 200:
            raise ServiceError(
                f"GET {path} failed with HTTP {status}: "
                f"{(body or {}).get('error', '')}", status)
        return body

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._get("/v1/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._get("/v1/metrics")

    def queue(self) -> dict[str, Any]:
        return self._get("/v1/queue")

    def job(self, key: str) -> dict[str, Any] | None:
        status, body = self.request_retry("GET", f"/v1/jobs/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"GET /v1/jobs/{key} failed with HTTP {status}", status)
        return body

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[JobSpec] | JobSpec, *,
               tenant: str = "default",
               priority: int = 0) -> list[dict[str, Any]]:
        """Submit specs; returns per-spec state records (incl. throttled).

        Content-addressed keys make resubmission idempotent, so
        transport failures and 503 shedding are retried transparently.
        429 (everything throttled) is returned as records, not raised —
        callers decide whether to back off (see :meth:`submit_all`).
        """
        if isinstance(specs, JobSpec):
            specs = [specs]
        body = {"jobs": [spec.to_dict() for spec in specs],
                "tenant": tenant, "priority": priority}
        status, decoded = self.request_retry("POST", "/v1/jobs", body,
                                             idempotent=True)
        # 429 = throttled records, 503-with-results = every item shed;
        # both are per-item refusals submit_all keeps retrying, not errors
        if (status not in (200, 429, 503) or not isinstance(decoded, dict)
                or "results" not in decoded):
            raise ServiceError(
                f"POST /v1/jobs failed with HTTP {status}: "
                f"{(decoded or {}).get('error', '')}", status)
        return decoded["results"]

    def submit_all(self, specs: Sequence[JobSpec], *,
                   tenant: str = "default", priority: int = 0,
                   retry_seconds: float = 0.1,
                   max_seconds: float = 300.0) -> list[dict[str, Any]]:
        """Submit, retrying throttled/shed items until capacity frees.

        Waits between rounds with capped full-jitter backoff seeded per
        client (N blocked clients spread out instead of re-arriving in
        lockstep when the bucket refills), honouring the server's
        ``Retry-After`` hint when one came back.
        """
        records: dict[str, dict[str, Any]] = {}
        remaining = list(specs)
        deadline = monotonic() + max_seconds
        round_index = 0
        while remaining:
            blocked: list[JobSpec] = []
            for spec, record in zip(remaining,
                                    self.submit(remaining, tenant=tenant,
                                                priority=priority)):
                if record["state"] in ("throttled", "shed"):
                    blocked.append(spec)
                else:
                    records[spec.key] = record
            if blocked and monotonic() > deadline:
                raise ServiceError(
                    f"{len(blocked)} job(s) still refused after "
                    f"{max_seconds:g}s")
            remaining = blocked
            if remaining:
                round_index += 1
                hint = self.last_retry_after
                delay = hint if hint is not None else (
                    retry_seconds / 2 + self.backoff_policy.delay(
                        min(round_index, 8), base=retry_seconds) / 2)
                sleep(min(delay, max(0.0, deadline - monotonic())))
        return [records[spec.key] for spec in specs]

    # ------------------------------------------------------------------
    def wait(self, keys: Sequence[str], *, poll: float = 0.1,
             max_seconds: float = 600.0) -> dict[str, dict[str, Any]]:
        """Poll until every key is done/failed; returns final records.

        Polling backs off with capped full jitter while no key makes
        progress (and snaps back to ``poll`` when one does), so many
        blocked clients do not hammer the server in lockstep.
        """
        outstanding = set(keys)
        final: dict[str, dict[str, Any]] = {}
        deadline = monotonic() + max_seconds
        idle_rounds = 0
        while outstanding:
            for key in sorted(outstanding):
                record = self.job(key)
                if record is not None and record["state"] in ("done",
                                                              "failed"):
                    final[key] = record
            progressed = bool(outstanding & set(final))
            outstanding -= set(final)
            idle_rounds = 0 if progressed else idle_rounds + 1
            if outstanding:
                if monotonic() > deadline:
                    raise ServiceError(
                        f"{len(outstanding)} job(s) still running after "
                        f"{max_seconds:g}s")
                delay = poll / 2 + self.backoff_policy.delay(
                    min(idle_rounds + 1, 8), base=poll) / 2
                sleep(min(delay, max(0.0, deadline - monotonic())))
        return final

    # ------------------------------------------------------------------
    def claim(self, *, shard: int | None = None,
              worker: str = "") -> dict[str, Any] | None:
        """Claim one job.  Safe to retry: an orphaned claim (response
        lost after the server recorded it) is re-queued by lease expiry.
        """
        status, body = self.request_retry("POST", "/v1/claim",
                                          {"shard": shard,
                                           "worker": worker})
        if status == 204:
            return None
        if status != 200 or not isinstance(body, dict):
            raise ServiceError(
                f"POST /v1/claim failed with HTTP {status}", status)
        return body

    def settle(self, **fields: Any) -> bool:
        """Settle one claim.  Safe to retry: a duplicate settle (first
        response lost in flight) is answered 409 — exactly-once
        settlement holds either way.
        """
        status, _body = self.request_retry("POST", "/v1/settle", fields)
        if status == 409:
            return False  # lease expired under us; the other settle won
        if status != 200:
            raise ServiceError(
                f"POST /v1/settle failed with HTTP {status}", status)
        return True

    # ------------------------------------------------------------------
    def run_batch(self, specs: Sequence[JobSpec], *,
                  tenant: str = "default", priority: int = 0,
                  poll: float = 0.1,
                  max_seconds: float = 600.0) -> BatchResult:
        """Submit + wait + rebuild a local-shaped :class:`BatchResult`.

        Statuses travel through unchanged (``ok``/``cached``/
        ``replayed``/``failed``/``quarantined``), so
        ``repro batch --server`` reports and exits exactly like the
        local path on the same outcomes.
        """
        by_key = {spec.key: spec for spec in specs}
        started = monotonic()
        self.submit_all(specs, tenant=tenant, priority=priority,
                        max_seconds=max_seconds)
        final = self.wait(list(by_key), poll=poll, max_seconds=max_seconds)
        metrics = FleetMetrics()
        results = []
        for spec in specs:
            record = final[spec.key]
            results.append(JobResult(
                spec, record.get("status", "failed"),
                record.get("payload"), error=record.get("error", ""),
                attempts=record.get("attempts", 0),
                run_seconds=record.get("run_seconds", 0.0)))
        # de-duplicated specs share one record; count each submission
        for result in results:
            metrics.record(result)
        metrics.retries += self.retries_performed
        metrics.wall_seconds = monotonic() - started
        return BatchResult(results, metrics)


def parse_server_url(url: str) -> str:
    """Normalise a ``--server`` value (bare host:port gains http://)."""
    if "://" not in url:
        return f"http://{url}"
    return url


def fetch_json(url: str, *, timeout: float = 30.0) -> Any:
    """GET one absolute URL as JSON (CI/scripting helper)."""
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def submit_job_file(client: ServiceClient, path: str, *,
                    tenant: str = "default", priority: int = 0,
                    poll: float = 0.1,
                    max_seconds: float = 600.0) -> BatchResult:
    """Load a job file and run it through :meth:`ServiceClient.run_batch`."""
    from ..jobs import load_job_file

    return client.run_batch(load_job_file(path), tenant=tenant,
                            priority=priority, poll=poll,
                            max_seconds=max_seconds)


def wait_until_healthy(base_url: str, *, max_seconds: float = 30.0,
                       poll: float = 0.1) -> dict[str, Any]:
    """Block until a just-started server answers ``/v1/healthz``."""
    client = ServiceClient(base_url, timeout=poll + 1.0, retries=0)
    deadline = monotonic() + max_seconds
    while True:
        try:
            return client.healthz()
        except ServiceError:
            if monotonic() > deadline:
                raise
            sleep(poll)
