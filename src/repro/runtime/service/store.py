"""Pluggable result-cache backends for the execution service.

The batch engine only ever asks its cache two questions — *do you have
the payload for this key?* and *store this payload under this key* — so
the contract is tiny and :class:`~repro.runtime.cache.ResultCache`
already satisfies it.  This module names that contract
(:class:`CacheBackend`) and adds two more implementations:

:class:`LocalDirBackend`
    Today's behaviour, byte-identical on-disk layout — it *is*
    :class:`~repro.runtime.cache.ResultCache`, re-exported under the
    protocol's name so service configuration reads uniformly.
:class:`RemoteBackend`
    An HTTP client for a running execution service's ``/v1/cache``
    endpoints.  A fleet of workers pointed at one server dedupes work
    globally: the first worker to finish a key publishes the payload,
    every later worker's engine sees a cache hit and dispatches nothing.
    Network and server errors degrade to misses (reads) or are dropped
    (writes) — a flaky cache must never fail a job — with
    :attr:`RemoteBackend.errors` counting the degradations.  A
    :class:`~repro.runtime.supervisor.ConnectionBreaker` turns a *dead*
    server into instant misses instead of a connect timeout per key
    (partition tolerance: jobs keep completing from local state), and a
    cheap ``/v1/healthz`` probe closes the breaker again once the server
    answers.
:class:`TieredBackend`
    Local-over-remote composition: reads check the local tier first and
    backfill it on a remote hit; writes go to both.  The local tier
    absorbs repeat reads; the remote tier is the fleet-wide rendezvous.

Every backend exposes the same ``hits`` / ``misses`` / ``writes``
counters :class:`~repro.runtime.cache.ResultCache` keeps, so fleet
metrics aggregate identically whichever backend is plugged in.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Protocol, runtime_checkable

from ..cache import ResultCache
from ..supervisor import ConnectionBreaker


@runtime_checkable
class CacheBackend(Protocol):
    """What the engine (and the service) require of a result cache."""

    hits: int
    misses: int
    writes: int

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on a miss."""
        ...  # pragma: no cover - protocol

    def put(self, key: str, kind: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key``."""
        ...  # pragma: no cover - protocol

    def __contains__(self, key: str) -> bool:
        ...  # pragma: no cover - protocol


#: Today's on-disk store, unchanged: same sharded layout, same atomic
#: durable writes, same envelope bytes.  The alias is the configuration
#: vocabulary ("local"), not a new implementation.
LocalDirBackend = ResultCache


class RemoteBackend:
    """HTTP client for a service's shared result store.

    ``base_url`` is the server root (``http://host:port``); entries live
    under ``/v1/cache/<key>``.  The server stores them through its own
    :class:`LocalDirBackend`, so the bytes on the server's disk are
    identical to a local run's.

    The breaker opens after ``failure_threshold`` consecutive transport
    failures; while open, every cache call is an instant miss/drop
    (counted in :attr:`short_circuits`) — no timeout paid, no job
    failed.  After ``recovery_seconds`` one call probes ``/v1/healthz``
    (cheap and side-effect free, unlike a data read) and a healthy
    answer closes the breaker for everyone sharing it.
    """

    def __init__(self, base_url: str, *, timeout: float = 10.0,
                 breaker: ConnectionBreaker | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.breaker = breaker if breaker is not None else \
            ConnectionBreaker()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0
        self.short_circuits = 0

    def _url(self, key: str) -> str:
        return f"{self.base_url}/v1/cache/{key}"

    def _admit(self) -> bool:
        """Breaker gate; half-open calls re-probe ``/v1/healthz`` first."""
        if self.breaker.allow():
            if self.breaker.state == "half_open" and not self._probe():
                return False
            return True
        self.short_circuits += 1
        return False

    def _probe(self) -> bool:
        """One cheap liveness check; settles the half-open breaker."""
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(f"{self.base_url}/v1/healthz",
                                        timeout=self.timeout):
                pass
        except urllib.error.HTTPError:
            pass  # any HTTP answer proves the server is back
        except OSError:
            self.breaker.record_failure()
            return False
        self.breaker.record_success()
        return True

    def get(self, key: str) -> dict[str, Any] | None:
        import urllib.error
        import urllib.request

        if not self._admit():
            self.misses += 1
            return None
        try:
            with urllib.request.urlopen(self._url(key),
                                        timeout=self.timeout) as response:
                entry = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            # an HTTP answer proves the server is alive, whatever it said
            self.breaker.record_success()
            if error.code != 404:
                self.errors += 1
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.breaker.record_failure()
            self.errors += 1
            self.misses += 1
            return None
        self.breaker.record_success()
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, kind: str, payload: dict[str, Any]) -> None:
        import urllib.error
        import urllib.request

        if not self._admit():
            return  # best-effort publish; dropped while partitioned
        body = json.dumps({"kind": kind, "payload": payload},
                          sort_keys=True).encode("utf-8")
        request = urllib.request.Request(
            self._url(key), data=body, method="PUT",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except urllib.error.HTTPError:
            self.breaker.record_success()
            self.errors += 1
            return
        except (OSError, ValueError):
            self.breaker.record_failure()
            self.errors += 1  # best-effort publish; the job still succeeded
            return
        self.breaker.record_success()
        self.writes += 1

    def report(self) -> dict[str, Any]:
        """Counters plus the breaker's view, for worker reports."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "errors": self.errors,
                "short_circuits": self.short_circuits,
                "breaker": self.breaker.report()}

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class TieredBackend:
    """Local cache over a remote one (read-through, write-through).

    ``get`` consults the local tier first; a remote hit is written back
    into the local tier so the next read never leaves the machine.
    ``put`` writes both tiers.  Counters reflect the *composite* view:
    a hit in either tier is one hit.
    """

    def __init__(self, local: CacheBackend, remote: CacheBackend) -> None:
        self.local = local
        self.remote = remote
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def get(self, key: str) -> dict[str, Any] | None:
        payload = self.local.get(key)
        if payload is not None:
            self.hits += 1
            return payload
        payload = self.remote.get(key)
        if payload is None:
            self.misses += 1
            return None
        # backfill: the kind is not recoverable from the remote payload
        # alone, so tiered entries record it as "remote" — the envelope
        # kind is advisory; key and payload are what the engine compares
        self.local.put(key, "remote", payload)
        self.hits += 1
        return payload

    def put(self, key: str, kind: str, payload: dict[str, Any]) -> None:
        self.local.put(key, kind, payload)
        self.remote.put(key, kind, payload)
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        return key in self.local or key in self.remote


def iter_keys(backend: CacheBackend) -> Iterator[str]:
    """Keys of a backend that supports enumeration (local tiers only)."""
    keys = getattr(backend, "keys", None)
    if keys is None:
        return iter(())
    return keys()
