"""Service workers: claim → execute → settle, locally or over HTTP.

A :class:`ServiceWorker` is a daemon thread owning one
:class:`~repro.runtime.executor.ExecutionEngine`.  It pulls claims from
a *job source*, runs each claim as a single-job batch through the
engine — inheriting the whole PR 2/PR 5 machinery: content-addressed
cache check before any dispatch, per-job timeout, bounded jittered
retry, crash isolation, quarantine, optional process-pool fan-out — and
settles the outcome back into the source.

Two sources exist:

* the in-process :class:`~repro.runtime.service.api.ExecutionService`
  itself (``repro serve`` runs server + workers in one process), and
* :class:`RemoteQueueSource` — the same claim/settle contract spoken
  over a running server's ``/v1/claim`` / ``/v1/settle`` endpoints, so
  extra worker processes (on this or any other machine) can attach to
  one server and drain its queue.  Pointing their engines at a shared
  :class:`~repro.runtime.service.store.RemoteBackend` (or a
  :class:`~repro.runtime.service.store.TieredBackend` over it) is what
  dedupes work fleet-wide: the second worker to see a key finds the
  payload cached and dispatches nothing.

**Per-node health** generalises PR 5's per-key quarantine to the worker
itself: ``unhealthy_after`` consecutive infrastructure failures (engine
errors, source errors — *not* ordinary job failures) mark the node
unhealthy and stop its claim loop, so one sick node degrades the fleet
by exactly its own capacity instead of poisoning the queue.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic, sleep
from typing import Any, Protocol

from ..executor import ExecutionEngine, JobResult
from ..jobs import JobSpec
from .queue import QueuedJob


class JobSource(Protocol):
    """Where a worker gets claims and returns settlements."""

    def claim_job(self, *, shard: int | None = None,
                  worker: str = "") -> QueuedJob | None:
        ...  # pragma: no cover - protocol

    def settle_job(self, job: QueuedJob, result: JobResult) -> None:
        ...  # pragma: no cover - protocol


class ServiceWorker(threading.Thread):
    """One claim→execute→settle loop (daemon thread).

    ``engine`` defaults to a fresh serial in-process engine; pass one
    configured with ``workers > 0`` to give this worker its own process
    pool, or with a cache backend to join the fleet-wide dedupe.
    ``shard`` pins the worker to one queue partition (``None`` = any).
    """

    def __init__(self, source: JobSource, *,
                 engine: ExecutionEngine | None = None,
                 name: str = "worker-0", shard: int | None = None,
                 tick: float = 0.05, unhealthy_after: int = 5) -> None:
        super().__init__(name=f"repro-{name}", daemon=True)
        self.source = source
        self.engine = engine if engine is not None else ExecutionEngine()
        self.worker_name = name
        self.shard = shard
        self.tick = tick
        self.unhealthy_after = unhealthy_after
        self.stop_event = threading.Event()
        self.healthy = True
        self.jobs_done = 0
        self.jobs_failed = 0
        self.consecutive_errors = 0
        self.last_error = ""

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via service tests
        try:
            self.work_loop()
        finally:
            self.engine.close()

    def work_loop(self) -> None:
        """The claim loop (public so tests can drive it synchronously)."""
        while not self.stop_event.is_set():
            if not self.step():
                self.stop_event.wait(self.tick)

    def step(self) -> bool:
        """Claim and run at most one job; True when one was processed."""
        try:
            job = self.source.claim_job(shard=self.shard,
                                        worker=self.worker_name)
        except Exception as error:
            self._node_error(f"claim failed: {error}")
            return False
        if job is None:
            return False
        try:
            batch = self.engine.run([job.spec])
            result = batch[0]
        except Exception as error:
            self._node_error(f"engine failed on {job.key[:10]}: {error}")
            result = JobResult(job.spec, "failed", None,
                               error=f"worker infrastructure error: {error}")
        else:
            self.consecutive_errors = 0
        if result.ok:
            self.jobs_done += 1
        else:
            self.jobs_failed += 1
        try:
            self.source.settle_job(job, result)
        except Exception as error:
            self._node_error(f"settle failed for {job.key[:10]}: {error}")
        return True

    def _node_error(self, message: str) -> None:
        self.last_error = message
        self.consecutive_errors += 1
        if self.consecutive_errors >= self.unhealthy_after:
            self.healthy = False
            self.stop_event.set()

    # ------------------------------------------------------------------
    def stop(self, *, join_timeout: float = 5.0) -> None:
        self.stop_event.set()
        if self.is_alive():
            self.join(timeout=join_timeout)

    def report(self) -> dict[str, Any]:
        """This node's health record for ``/v1/metrics``."""
        record = {
            "name": self.worker_name,
            "shard": self.shard,
            "healthy": self.healthy,
            "alive": self.is_alive(),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "consecutive_errors": self.consecutive_errors,
            "last_error": self.last_error,
        }
        # a RemoteBackend cache exposes its partition view (breaker
        # state, degradations) — surface it so /v1/metrics shows which
        # nodes are cut off from the shared store
        cache = getattr(self.engine, "cache", None)
        cache_report = getattr(cache, "report", None)
        if callable(cache_report):
            record["cache"] = cache_report()
        return record


@dataclass
class _RemoteClaim(QueuedJob):
    """A claim received over HTTP (shape-compatible with QueuedJob)."""


class RemoteQueueSource:
    """Claim/settle against a remote server's ``/v1`` endpoints.

    Wraps a :class:`~repro.runtime.service.client.ServiceClient`; the
    server enforces lease expiry (:meth:`ShardedQueue.requeue_expired`),
    so a remote worker that dies mid-claim merely delays its job.
    """

    def __init__(self, client) -> None:
        self.client = client

    def claim_job(self, *, shard: int | None = None,
                  worker: str = "") -> QueuedJob | None:
        claim = self.client.claim(shard=shard, worker=worker)
        if claim is None:
            return None
        return _RemoteClaim(JobSpec.from_dict(claim["spec"]),
                            claim.get("tenant", "default"),
                            claim.get("priority", 0),
                            claim.get("shard", 0), claim.get("seq", 0),
                            claimed_at=monotonic())

    def settle_job(self, job: QueuedJob, result: JobResult) -> None:
        self.client.settle(
            key=job.key, status=result.status,
            payload=result.payload if result.ok else None,
            error=result.error, attempts=result.attempts,
            timed_out=result.timed_out,
            queue_seconds=result.queue_seconds,
            run_seconds=result.run_seconds,
            sim_metrics=result.sim_metrics)


def attach_workers(source: JobSource, count: int, *,
                   engine_factory=None, name_prefix: str = "worker",
                   shards: int | None = None,
                   unhealthy_after: int = 5) -> list[ServiceWorker]:
    """Build (not start) ``count`` workers over one source.

    ``engine_factory()`` supplies each worker's engine (default: fresh
    serial engines).  With ``shards`` set, workers round-robin over the
    partitions so a fleet statically covers the whole keyspace.
    """
    workers = []
    for index in range(count):
        engine = engine_factory() if engine_factory is not None else None
        shard = index % shards if shards is not None else None
        workers.append(ServiceWorker(
            source, engine=engine, name=f"{name_prefix}-{index}",
            shard=shard, unhealthy_after=unhealthy_after))
    return workers


def drain(worker: ServiceWorker, *, idle_ticks: int = 3,
          max_seconds: float = 60.0) -> int:
    """Run a worker's loop inline until the source stays empty.

    Test/synchronous utility: processes jobs until ``idle_ticks``
    consecutive empty claims (or the deadline).  Returns jobs processed.
    """
    deadline = monotonic() + max_seconds
    processed = 0
    idle = 0
    while idle < idle_ticks and monotonic() < deadline:
        if worker.stop_event.is_set():
            break
        if worker.step():
            processed += 1
            idle = 0
        else:
            idle += 1
            sleep(worker.tick / 10)
    return processed
