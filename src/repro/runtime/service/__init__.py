"""repro.runtime.service — the long-lived distributed execution service.

The batch engine (:mod:`repro.runtime`) runs one batch and exits; this
package promotes it into a *service*: an HTTP/JSON API accepting the
same declarative, content-addressed job specs, a durable sharded work
queue behind it, pluggable result-cache backends so a fleet of workers
dedupes work globally, and worker loops that run server-side or attach
remotely.

:mod:`repro.runtime.service.api`
    :class:`ExecutionService` (queue + store + workers + metrics) and
    the stdlib ``ThreadingHTTPServer`` speaking ``/v1/jobs``,
    ``/v1/queue``, ``/v1/metrics``, ``/v1/healthz``, ``/v1/cache``,
    ``/v1/claim``, ``/v1/settle``.
:mod:`repro.runtime.service.queue`
    :class:`ShardedQueue` — SHA-256-partitioned, WAL-journalled
    (restart-resumable), per-tenant priority lanes and token-bucket
    rate limiting.
:mod:`repro.runtime.service.store`
    The :class:`CacheBackend` protocol with
    :class:`LocalDirBackend` (today's on-disk store, byte-identical),
    :class:`RemoteBackend` (HTTP client of a server's shared store) and
    :class:`TieredBackend` (local-over-remote).
:mod:`repro.runtime.service.worker`
    :class:`ServiceWorker` claim→execute→settle threads over the
    existing engine/supervisor, with per-node health accounting, and
    :class:`RemoteQueueSource` for workers attaching over HTTP.
:mod:`repro.runtime.service.client`
    :class:`ServiceClient` — the ``repro batch --server`` transport,
    resilient by default: capped full-jitter retries, ``Retry-After``
    honouring, per-call deadlines and a shared circuit breaker.

Overload, drain and chaos testing (the robustness layer) live in
:mod:`repro.runtime.resilience` (backoff/deadline primitives) and
:mod:`repro.runtime.chaos` (the fault-injecting TCP proxy driven by
``repro chaos``); this package's server answers 503 + ``Retry-After``
when shedding, 504 on spent deadline budgets, and counts everything in
``/v1/metrics`` under ``resilience``.

Quick tour::

    from repro.designs import ZOO
    from repro.runtime import check_job
    from repro.runtime.service import (ExecutionService, LocalDirBackend,
                                       make_server, ServiceClient)

    service = ExecutionService(store=LocalDirBackend("cache"),
                               journal_path="queue.jsonl", workers=2)
    server = make_server(service)          # port 0 = pick a free port
    host, port = server.server_address
    with service:
        import threading
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(f"http://{host}:{port}")
        batch = client.run_batch([check_job(d.build(), label=d.name)
                                  for d in ZOO.values()])
        server.shutdown()
    print(batch.metrics.summary())
"""

from .api import (
    ExecutionService,
    ServiceServer,
    make_server,
    serve_forever,
)
from .client import (
    ServiceClient,
    ServiceError,
    parse_server_url,
    submit_job_file,
    wait_until_healthy,
)
from .queue import (
    OverloadedError,
    QueuedJob,
    ShardedQueue,
    ThrottledError,
    TokenBucket,
    replay_queue_journal,
    shard_of,
)
from .store import (
    CacheBackend,
    LocalDirBackend,
    RemoteBackend,
    TieredBackend,
)
from .worker import (
    RemoteQueueSource,
    ServiceWorker,
    attach_workers,
    drain,
)

__all__ = [
    "ExecutionService",
    "ServiceServer",
    "make_server",
    "serve_forever",
    "ServiceClient",
    "ServiceError",
    "parse_server_url",
    "submit_job_file",
    "wait_until_healthy",
    "OverloadedError",
    "QueuedJob",
    "ShardedQueue",
    "ThrottledError",
    "TokenBucket",
    "replay_queue_journal",
    "shard_of",
    "CacheBackend",
    "LocalDirBackend",
    "RemoteBackend",
    "TieredBackend",
    "RemoteQueueSource",
    "ServiceWorker",
    "attach_workers",
    "drain",
]
