"""The execution service: HTTP/JSON API over the sharded queue.

:class:`ExecutionService` is the composition root — queue + store +
workers + metrics behind one thread-safe facade — and
:func:`make_server` wraps it in a stdlib ``ThreadingHTTPServer``.  The
API speaks the existing declarative job-spec JSON **verbatim**: the
body of ``POST /v1/jobs`` is exactly a :meth:`JobSpec.to_dict
<repro.runtime.jobs.JobSpec.to_dict>` document (or a job file's
``{"jobs": [...]}``), so a spec submitted over HTTP hashes to the same
content-addressed SHA-256 key as the same spec run by ``repro batch``,
and its cached payload is byte-identical on disk.

Endpoints
---------

====================  ======================================================
``POST /v1/jobs``     Submit one spec or a batch (``?tenant=``,
                      ``?priority=``); per-item states; 429 when throttled.
``GET /v1/jobs/K``    Status + result of job key ``K`` (404 unknown).
``GET /v1/queue``     Queue snapshot: shard depths, tenant lanes, pending.
``GET /v1/metrics``   Service counters, per-tenant depth/throttles, worker
                      health, aggregated FleetMetrics.
``GET /v1/healthz``   Liveness (also reports version and uptime).
``GET /v1/cache/K``   Shared-store read (the RemoteBackend wire protocol).
``PUT /v1/cache/K``   Shared-store publish.
``POST /v1/claim``    Hand one queued job to a (remote) worker.
``POST /v1/settle``   Accept a worker's final status for a claimed job.
====================  ======================================================

Durability: with a journal attached, every *accept* is fsynced before
the submit response leaves, and every *settle* before the job's state
flips — SIGKILL the server at any point, restart with ``resume=True``,
and accepted-but-unsettled work is re-queued while settled work replays
from the log (at-least-once dispatch, exactly-once settle).

Overload and failure behaviour (the chaos-hardening contract):

* **Load shedding** is deterministic, not probabilistic: the queue
  refuses past ``max_pending`` and the HTTP layer refuses mutating
  requests past ``max_inflight`` — both answer 503 with a
  ``Retry-After`` hint so resilient clients re-arrive politely.
* **Deadline budgets** travel in the ``X-Repro-Deadline`` header; a
  request whose budget is already spent (e.g. it sat in a queue or a
  slow network leg) is answered 504 before any work happens.
* **Graceful drain** (SIGTERM path): new submissions are shed with 503
  while status/metrics GETs keep answering, in-flight claims settle,
  then the WAL is fsynced and closed — no accepted job is lost, no
  result is half-written.
* Every injected fault a chaos proxy stamps into ``X-Repro-Chaos`` and
  every deduplicated resubmission is counted in ``/v1/metrics``, so a
  chaos run can *prove* faults fired and retries recovered.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, sleep
from typing import Any, Mapping

from ... import __version__
from ...errors import DefinitionError
from ..durable import Journal
from ..executor import ExecutionEngine, JobResult
from ..jobs import JobSpec
from ..metrics import FleetMetrics
from ..resilience import CHAOS_HEADER, DEADLINE_HEADER, parse_retry_after
from ..supervisor import SupervisorConfig
from .queue import OverloadedError, QueuedJob, ShardedQueue, ThrottledError
from .store import CacheBackend
from .worker import ServiceWorker, attach_workers

#: Job lifecycle states reported by ``GET /v1/jobs/{key}``.
JOB_STATES = ("queued", "running", "done", "failed")


class ExecutionService:
    """Long-lived façade: accept jobs, queue them, run them, serve results.

    Parameters
    ----------
    store:
        The result backend shared by every worker engine (default: an
        in-memory-less local dir is *not* created — pass one; the CLI
        builds a :class:`LocalDirBackend`).  ``None`` disables caching.
    journal_path / resume:
        Queue WAL.  With ``resume=True`` an existing log is replayed
        first: settled jobs come back as ``done``, accepted ones re-queue.
    shards, rate, burst:
        Queue partition count and per-tenant token-bucket rate limit.
    workers / engine_factory:
        How many in-process worker threads to run and how to build each
        one's engine (default: serial engines wired to ``store``).
    lease_seconds:
        Claims older than this are re-queued (remote-worker death
        insurance).  ``None`` disables lease expiry.
    max_pending:
        Bound on queued (unclaimed) depth; submissions past it are shed
        with 503 + ``Retry-After`` (see :class:`OverloadedError`).
    """

    def __init__(self, *, store: CacheBackend | None = None,
                 journal_path: str | None = None, resume: bool = False,
                 shards: int = 8, rate: float | None = None,
                 burst: float | None = None, workers: int = 1,
                 engine_factory=None, lease_seconds: float | None = 60.0,
                 unhealthy_after: int = 5,
                 max_pending: int | None = None) -> None:
        self.store = store
        self.journal = (Journal(journal_path, fresh=not resume)
                        if journal_path is not None else None)
        self.queue = ShardedQueue(shards=shards, journal=None,
                                  rate=rate, burst=burst,
                                  max_pending=max_pending)
        self.lease_seconds = lease_seconds
        self._lock = threading.Lock()
        self._jobs: dict[str, dict[str, Any]] = {}
        self._running: dict[str, QueuedJob] = {}
        self.fleet = FleetMetrics(workers=workers)
        self.started_at = monotonic()
        self._lease_checked = 0.0
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.replayed = 0
        self.resubmissions = 0       # dedupe hits = client retries observed
        self.deadline_rejected = 0   # requests 504ed with a spent budget
        self.chaos_observed: dict[str, int] = {}  # X-Repro-Chaos sightings
        self.draining = False
        if resume and journal_path is not None:
            settled = self.queue.resume(journal_path)
            with self._lock:
                for key, record in settled.items():
                    self.replayed += 1
                    self._jobs[key] = {
                        "key": key, "state": "done",
                        "status": "replayed",
                        "payload": record.get("payload"),
                        "error": "", "attempts": 0,
                        "tenant": "default", "kind": "", "label": "",
                    }
                for job in self.queue.pending():
                    self._jobs[job.key] = self._queued_record(job)
        self.queue.journal = self.journal  # WAL attaches after replay

        if engine_factory is None:
            def engine_factory() -> ExecutionEngine:
                return ExecutionEngine(cache=self.store,
                                       supervisor=SupervisorConfig())
        self.workers: list[ServiceWorker] = attach_workers(
            self, workers, engine_factory=engine_factory,
            unhealthy_after=unhealthy_after)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop_event.set()
        for worker in self.workers:
            worker.stop()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ExecutionService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def begin_drain(self) -> None:
        """Stop accepting new work; everything else keeps answering."""
        self.draining = True

    def drain(self, *, grace: float = 10.0, poll: float = 0.05) -> bool:
        """Wait (up to ``grace`` seconds) for accepted work to settle.

        Call after :meth:`begin_drain`.  Returns True when the queue and
        the running set emptied in time — the clean-shutdown signal the
        CLI reports.  The WAL is *not* closed here (that is
        :meth:`stop`); this only waits for the work.
        """
        deadline = monotonic() + grace
        while monotonic() < deadline:
            with self._lock:
                running = len(self._running)
            if len(self.queue) == 0 and running == 0:
                return True
            sleep(poll)
        with self._lock:
            running = len(self._running)
        return len(self.queue) == 0 and running == 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @staticmethod
    def _queued_record(job: QueuedJob) -> dict[str, Any]:
        return {"key": job.key, "state": "queued", "status": "queued",
                "payload": None, "error": "", "attempts": 0,
                "tenant": job.tenant, "kind": job.spec.kind,
                "label": job.spec.label}

    def submit(self, spec: JobSpec, *, tenant: str = "default",
               priority: int = 0) -> dict[str, Any]:
        """Accept one spec; returns its state record.

        Content addressing makes this idempotent and deduplicating:
        a key already done (or present in the store) is answered
        immediately; a key already queued/running is not re-queued.
        Raises :class:`ThrottledError` when the tenant is rate-limited.
        """
        key = spec.key
        with self._lock:
            record = self._jobs.get(key)
            if record is not None and record["state"] != "failed":
                # a key we already hold: either a duplicate spec in the
                # same batch or a client retry whose first submit *did*
                # land — the count is the server-side proof that retried
                # submissions deduplicate instead of double-executing
                self.resubmissions += 1
                return dict(record)
        if self.store is not None:
            payload = self.store.get(key)
            if payload is not None:
                with self._lock:
                    record = {
                        "key": key, "state": "done", "status": "cached",
                        "payload": payload, "error": "", "attempts": 0,
                        "tenant": tenant, "kind": spec.kind,
                        "label": spec.label,
                    }
                    self._jobs[key] = record
                    self.accepted += 1
                    self.completed += 1
                    return dict(record)
        job = self.queue.submit(spec, tenant=tenant, priority=priority)
        with self._lock:
            record = self._queued_record(job)
            self._jobs[key] = record
            self.accepted += 1
            return dict(record)

    def submit_many(self, specs, *, tenant: str = "default",
                    priority: int = 0) -> list[dict[str, Any]]:
        """Submit a batch; refused items come back as state records.

        ``state="throttled"`` (rate limit) and ``state="shed"``
        (queue at ``max_pending``) are per-item, so one refused spec
        does not fail the batch; resilient clients retry just those.
        """
        records = []
        for spec in specs:
            try:
                records.append(self.submit(spec, tenant=tenant,
                                           priority=priority))
            except ThrottledError as error:
                records.append(self._refused_record(
                    spec, "throttled", str(error), tenant))
            except OverloadedError as error:
                records.append(self._refused_record(
                    spec, "shed", str(error), tenant,
                    retry_after=error.retry_after))
        return records

    @staticmethod
    def _refused_record(spec: JobSpec, state: str, error: str,
                        tenant: str,
                        retry_after: float | None = None) -> dict[str, Any]:
        record = {"key": spec.key, "state": state, "status": state,
                  "payload": None, "error": error, "attempts": 0,
                  "tenant": tenant, "kind": spec.kind, "label": spec.label}
        if retry_after is not None:
            record["retry_after"] = retry_after
        return record

    # ------------------------------------------------------------------
    # worker side (local threads and remote HTTP workers both land here)
    # ------------------------------------------------------------------
    def claim_job(self, *, shard: int | None = None,
                  worker: str = "") -> QueuedJob | None:
        if self.lease_seconds is not None:
            now = monotonic()
            if now - self._lease_checked > self.lease_seconds / 2:
                self._lease_checked = now
                for key in self.queue.requeue_expired(self.lease_seconds):
                    with self._lock:
                        record = self._jobs.get(key)
                        if record is not None and record["state"] == "running":
                            record["state"] = "queued"
                            record["status"] = "queued"
        job = self.queue.claim(shard=shard)
        if job is None:
            return None
        with self._lock:
            self._running[job.key] = job
            record = self._jobs.get(job.key)
            if record is not None:
                record["state"] = "running"
                record["status"] = "running"
                record["worker"] = worker
        return job

    def settle_job(self, job: QueuedJob, result: JobResult) -> None:
        """Fold one worker outcome in: queue WAL, state map, metrics."""
        ok = result.ok
        self.queue.settle(job.key, result.status, error=result.error,
                          payload=result.payload if ok else None)
        with self._lock:
            self._running.pop(job.key, None)
            self._jobs[job.key] = {
                "key": job.key, "state": "done" if ok else "failed",
                "status": result.status, "payload": result.payload,
                "error": result.error, "attempts": result.attempts,
                "run_seconds": result.run_seconds,
                "tenant": job.tenant, "kind": job.spec.kind,
                "label": job.spec.label,
            }
            if ok:
                self.completed += 1
            else:
                self.failed += 1
            self.fleet.record(result)

    def settle_remote(self, key: str, *, status: str,
                      payload: Mapping[str, Any] | None = None,
                      error: str = "", attempts: int = 0,
                      timed_out: bool = False, queue_seconds: float = 0.0,
                      run_seconds: float = 0.0,
                      sim_metrics: Mapping[str, Any] | None = None) -> bool:
        """HTTP settle: reconstruct the claim, then the normal path.

        Returns False for a key this server has no outstanding claim
        for (double settle after a lease expiry — dropped, because the
        other execution's settle already won; exactly-once settlement).
        """
        with self._lock:
            job = self._running.get(key)
        if job is None:
            return False
        result = JobResult(
            job.spec, status, dict(payload) if payload is not None else None,
            error=error, attempts=attempts, timed_out=timed_out,
            queue_seconds=queue_seconds, run_seconds=run_seconds,
            sim_metrics=dict(sim_metrics) if sim_metrics else None)
        if result.ok and self.store is not None and result.payload is not None:
            # remote workers may not share the server's store; publish
            # so later submissions of the same key are cache hits
            if key not in self.store:
                self.store.put(key, job.spec.kind, result.payload)
        self.settle_job(job, result)
        return True

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def job_record(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            record = self._jobs.get(key)
            return dict(record) if record is not None else None

    def queue_snapshot(self, *, limit: int = 100) -> dict[str, Any]:
        snapshot = self.queue.stats()
        snapshot["pending"] = [job.as_dict()
                               for job in self.queue.pending()[:limit]]
        snapshot["running"] = [job.as_dict()
                               for job in self.queue.claimed()[:limit]]
        return snapshot

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            fleet = self.fleet.as_dict()
            service = {
                "accepted": self.accepted,
                "completed": self.completed,
                "failed": self.failed,
                "replayed": self.replayed,
                "running": len(self._running),
                "uptime_seconds": monotonic() - self.started_at,
                "version": __version__,
                "draining": self.draining,
            }
            resilience = {
                "resubmissions": self.resubmissions,
                "shed": self.queue.shed,
                "deadline_rejected": self.deadline_rejected,
                "chaos_observed": dict(self.chaos_observed),
            }
        throttled = 0
        queue_stats = self.queue.stats()
        for stats in queue_stats["tenants"].values():
            throttled += stats["throttled"]
        service["throttled"] = throttled
        return {
            "service": service,
            "resilience": resilience,
            "queue": queue_stats,
            "workers": [worker.report() for worker in self.workers],
            "fleet": fleet,
        }

    def observe_chaos(self, header: str | None) -> None:
        """Count fault kinds a chaos proxy stamped into the request."""
        if not header:
            return
        with self._lock:
            for kind in header.split(","):
                kind = kind.strip()
                if kind:
                    self.chaos_observed[kind] = \
                        self.chaos_observed.get(kind, 0) + 1

    def healthz(self) -> dict[str, Any]:
        return {
            "ok": all(worker.healthy for worker in self.workers),
            "version": __version__,
            "uptime_seconds": monotonic() - self.started_at,
            "workers": sum(1 for worker in self.workers if worker.is_alive()),
            "draining": self.draining,
        }


# ---------------------------------------------------------------------------
# the HTTP layer
# ---------------------------------------------------------------------------
class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the service.  One instance per request."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExecutionService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send(self, code: int, body: Mapping[str, Any] | list, *,
              retry_after: float | None = None) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(data)

    def _send_empty(self, code: int) -> None:
        self.send_response(code)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except ValueError:
            return None

    def _route(self) -> tuple[str, dict[str, str]]:
        path, _, query_text = self.path.partition("?")
        query: dict[str, str] = {}
        for pair in query_text.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value
        return path.rstrip("/") or "/", query

    # ------------------------------------------------------------------
    def _gate_mutation(self) -> bool:
        """Overload + deadline admission for POST/PUT (GETs stay free).

        Status and metrics reads must keep answering while the server
        sheds work — an operator debugging an overload needs
        ``/v1/metrics`` more than ever — so only mutations are gated.
        Returns False after answering 503 (too many in flight) or 504
        (the request's ``X-Repro-Deadline`` budget is already spent).
        """
        self.service.observe_chaos(self.headers.get(CHAOS_HEADER))
        budget = parse_retry_after(self.headers.get(DEADLINE_HEADER))
        if budget is not None and budget <= 0.0:
            with self.service._lock:
                self.service.deadline_rejected += 1
            self._send(504, {"error": "deadline budget already spent"})
            return False
        server = self.server
        if not server.try_admit():  # type: ignore[attr-defined]
            self._send(503, {"error": "too many requests in flight"},
                       retry_after=0.5)
            return False
        return True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _query = self._route()
        self.service.observe_chaos(self.headers.get(CHAOS_HEADER))
        try:
            if path == "/v1/healthz":
                self._send(200, self.service.healthz())
            elif path == "/v1/metrics":
                self._send(200, self.service.metrics())
            elif path == "/v1/queue":
                self._send(200, self.service.queue_snapshot())
            elif path.startswith("/v1/jobs/"):
                record = self.service.job_record(path[len("/v1/jobs/"):])
                if record is None:
                    self._send(404, {"error": "unknown job key"})
                else:
                    self._send(200, record)
            elif path.startswith("/v1/cache/"):
                key = path[len("/v1/cache/"):]
                store = self.service.store
                payload = store.get(key) if store is not None else None
                if payload is None:
                    self._send(404, {"error": "cache miss", "key": key})
                else:
                    self._send(200, {"key": key, "payload": payload})
            else:
                self._send(404, {"error": f"no such endpoint {path!r}"})
        except Exception as error:  # pragma: no cover - handler fail-safe
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    def do_PUT(self) -> None:  # noqa: N802
        path, _query = self._route()
        if not self._gate_mutation():
            return
        try:
            if path.startswith("/v1/cache/"):
                key = path[len("/v1/cache/"):]
                body = self._read_body()
                if (not isinstance(body, dict)
                        or not isinstance(body.get("payload"), dict)):
                    self._send(400, {"error": "body must be "
                                              '{"kind", "payload"}'})
                    return
                store = self.service.store
                if store is None:
                    self._send(503, {"error": "server has no result store"})
                    return
                store.put(key, str(body.get("kind", "remote")),
                          body["payload"])
                self._send(200, {"key": key, "stored": True})
            else:
                self._send(404, {"error": f"no such endpoint {path!r}"})
        except Exception as error:  # pragma: no cover - handler fail-safe
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            self.server.release()  # type: ignore[attr-defined]

    def do_POST(self) -> None:  # noqa: N802
        path, query = self._route()
        if not self._gate_mutation():
            return
        try:
            if path == "/v1/jobs":
                self._post_jobs(query)
            elif path == "/v1/claim":
                self._post_claim()
            elif path == "/v1/settle":
                self._post_settle()
            else:
                self._send(404, {"error": f"no such endpoint {path!r}"})
        except Exception as error:  # pragma: no cover - handler fail-safe
            self._send(500, {"error": f"{type(error).__name__}: {error}"})
        finally:
            self.server.release()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _post_jobs(self, query: dict[str, str]) -> None:
        if self.service.draining:
            self._send(503, {"error": "server is draining; "
                                      "resubmit elsewhere or later"},
                       retry_after=1.0)
            return
        body = self._read_body()
        if body is None:
            self._send(400, {"error": "request body is not valid JSON"})
            return
        tenant = query.get("tenant", "default")
        try:
            priority = int(query.get("priority", "0"))
        except ValueError:
            self._send(400, {"error": "priority must be an integer"})
            return
        if isinstance(body, dict) and "jobs" in body:
            entries = body["jobs"]
            tenant = body.get("tenant", tenant)
            priority = int(body.get("priority", priority))
        elif isinstance(body, list):
            entries = body
        elif isinstance(body, dict) and "kind" in body:
            entries = [body]
        else:
            self._send(400, {"error": "body must be a job spec, a list of "
                                      'specs, or {"jobs": [...]}'})
            return
        try:
            specs = [JobSpec.from_dict(entry) for entry in entries]
        except (DefinitionError, KeyError, TypeError) as error:
            self._send(400, {"error": f"bad job spec: {error}"})
            return
        records = self.service.submit_many(specs, tenant=tenant,
                                           priority=priority)
        throttled = sum(1 for r in records if r["state"] == "throttled")
        shed = sum(1 for r in records if r["state"] == "shed")
        retry_after = None
        if records and shed == len(records):
            # nothing got in at all: a plain 503 + Retry-After, so even
            # the dumbest client knows when to come back
            code = 503
            retry_after = max(r.get("retry_after", 1.0) for r in records)
        elif records and throttled + shed == len(records):
            code = 429
        else:
            code = 200
        self._send(code, {
            "results": records,
            "accepted": len(records) - throttled - shed,
            "throttled": throttled,
            "shed": shed,
        }, retry_after=retry_after)

    def _post_claim(self) -> None:
        body = self._read_body() or {}
        shard = body.get("shard") if isinstance(body, dict) else None
        worker = (body.get("worker", "") if isinstance(body, dict) else "")
        job = self.service.claim_job(
            shard=int(shard) if shard is not None else None,
            worker=str(worker))
        if job is None:
            self._send_empty(204)
            return
        self._send(200, {"key": job.key, "spec": job.spec.to_dict(),
                         "tenant": job.tenant, "priority": job.priority,
                         "shard": job.shard, "seq": job.seq})

    def _post_settle(self) -> None:
        body = self._read_body()
        if not isinstance(body, dict) or "key" not in body:
            self._send(400, {"error": 'body must carry "key" and "status"'})
            return
        accepted = self.service.settle_remote(
            body["key"], status=str(body.get("status", "failed")),
            payload=body.get("payload"), error=str(body.get("error", "")),
            attempts=int(body.get("attempts", 0)),
            timed_out=bool(body.get("timed_out", False)),
            queue_seconds=float(body.get("queue_seconds", 0.0)),
            run_seconds=float(body.get("run_seconds", 0.0)),
            sim_metrics=body.get("sim_metrics"))
        if not accepted:
            self._send(409, {"error": "no outstanding claim for this key "
                                      "(lease expired or double settle)"})
            return
        self._send(200, {"key": body["key"], "settled": True})


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its :class:`ExecutionService`.

    ``max_inflight`` bounds concurrently *handled* mutating requests
    (POST/PUT); excess requests are answered 503 + ``Retry-After``
    immediately instead of queueing behind the thread pool — bounded
    accept, deterministic shedding.  ``None`` is unbounded.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 service: ExecutionService, *, verbose: bool = False,
                 max_inflight: int | None = None) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.verbose = verbose
        self.max_inflight = max_inflight
        self.http_shed = 0
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def try_admit(self) -> bool:
        """Take one in-flight slot, or refuse (the caller answers 503)."""
        with self._inflight_lock:
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                self.http_shed += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1


def make_server(service: ExecutionService, *, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                max_inflight: int | None = None) -> ServiceServer:
    """Bind the HTTP server (``port=0`` picks a free port)."""
    return ServiceServer((host, port), service, verbose=verbose,
                         max_inflight=max_inflight)


def serve_forever(server: ServiceServer, *, stop_event=None,
                  poll: float = 0.2,
                  drain_grace: float | None = None) -> bool:
    """Run the accept loop until ``stop_event`` is set (or forever).

    With ``drain_grace`` set, a stop drains gracefully instead of
    slamming the door: new submissions are shed with 503 (status and
    metrics GETs keep answering — pollers see their jobs finish), then
    up to ``drain_grace`` seconds are spent settling accepted work
    before the accept loop stops.  Returns True when the queue emptied
    in time (the CLI's clean-exit signal); ``drain_grace=None``
    preserves the original immediate stop and returns True.
    """
    if stop_event is None:
        server.serve_forever(poll_interval=poll)  # pragma: no cover
        return True
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": poll},
                              name="repro-serve-accept", daemon=True)
    thread.start()
    drained = True
    try:
        while not stop_event.wait(poll):
            pass
        if drain_grace is not None:
            server.service.begin_drain()
            drained = server.service.drain(grace=drain_grace)
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
    return drained
