"""The service's durable sharded work queue.

Jobs enter the service as content-addressed
:class:`~repro.runtime.jobs.JobSpec`\\ s and park here until a worker
claims them.  Three properties make the queue a service-grade component
rather than a list:

**Sharding.**  Work is partitioned into ``shards`` independent lanes by
the stable function ``int(key, 16) % shards`` over the job's SHA-256
key.  Because the key is content-addressed, the same spec lands on the
same shard on every node and across restarts — which is what lets
workers own disjoint shards, lets per-shard claim order stay FIFO, and
makes "two workers settling distinct shards into one journal" a
well-defined (and tested) mode of operation.

**Durability.**  With a :class:`~repro.runtime.durable.Journal`
attached, every acceptance is fsynced as an ``accept`` record (carrying
the full spec — the WAL *is* the queue's persistent form) before
:meth:`submit` returns, and every completion as a standard ``settle``
record.  :meth:`ShardedQueue.resume` replays the log: accepted keys
without an ok settle are re-enqueued, settled payloads are handed back
for the result map — so a SIGKILLed server restarts with exactly the
work it had accepted and nothing re-executes that already finished
(at-least-once dispatch, exactly-once settle, same contract as PR 5's
batch engine).

**Multi-tenancy.**  Every submission names a *tenant*; each tenant gets
priority lanes (higher ``priority`` claims first, FIFO within a lane)
and an optional token-bucket rate limit: ``rate`` tokens/second with a
``burst`` ceiling, refused submissions raise :class:`ThrottledError`
(HTTP 429 at the API) and are counted per tenant for ``/v1/metrics``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic
from typing import Any, Iterable, Mapping

from ...errors import DefinitionError, ExecutionError
from ..durable import Journal, read_journal, settle_record
from ..jobs import JobSpec

#: Journal record type for one accepted job (the WAL form of the queue).
ACCEPT_RECORD = "accept"


class ThrottledError(ExecutionError):
    """A tenant's token bucket is empty; the submission was refused."""


class OverloadedError(ExecutionError):
    """The queue is at ``max_pending``; the submission was shed.

    Unlike throttling (a per-tenant fairness policy), overload is a
    whole-server health bound: accepting past it just converts fresh
    work into timeouts.  Shedding early with a ``Retry-After`` hint is
    deterministic (depth is exact, not probabilistic) and cheap — a
    refused job was never journalled, so there is nothing to undo.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def shard_of(key: str, shards: int) -> int:
    """Stable shard assignment: ``int(key, 16) % shards``."""
    return int(key, 16) % shards


def accept_record(job: "QueuedJob") -> dict[str, Any]:
    """The WAL record that makes one accepted job durable."""
    return {"type": ACCEPT_RECORD, "key": job.spec.key, "shard": job.shard,
            "tenant": job.tenant, "priority": job.priority,
            "spec": job.spec.to_dict()}


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full.  ``try_take`` is O(1) and monotonic-clock based; tests
    can pass an explicit ``now``.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise DefinitionError(
                f"token bucket rate and burst must be positive, "
                f"got rate={rate}, burst={burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated = monotonic()

    def try_take(self, now: float | None = None) -> bool:
        now = monotonic() if now is None else now
        elapsed = max(0.0, now - self._updated)  # clocks never run backwards
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class QueuedJob:
    """One accepted job waiting in (or claimed from) the queue."""

    spec: JobSpec
    tenant: str
    priority: int
    shard: int
    seq: int
    claimed_at: float | None = None

    @property
    def key(self) -> str:
        return self.spec.key

    def as_dict(self) -> dict[str, Any]:
        return {"key": self.key, "kind": self.spec.kind,
                "label": self.spec.label, "tenant": self.tenant,
                "priority": self.priority, "shard": self.shard}


@dataclass
class TenantStats:
    """Per-tenant observability for ``/v1/metrics``."""

    accepted: int = 0
    throttled: int = 0
    settled: int = 0
    depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"accepted": self.accepted, "throttled": self.throttled,
                "settled": self.settled, "depth": self.depth}


class ShardedQueue:
    """Thread-safe sharded priority queue, journal-backed when asked.

    Parameters
    ----------
    shards:
        Number of partitions; job → shard is ``int(key, 16) % shards``.
    journal:
        Optional :class:`Journal`; acceptances and settles are fsynced
        through it, making the queue crash-recoverable via
        :meth:`resume` / :func:`replay_queue_journal`.
    rate, burst:
        Optional per-tenant token-bucket rate limit (tokens/second and
        bucket capacity).  ``None`` disables throttling.
    max_pending:
        Optional bound on total queued (unclaimed) depth across all
        tenants; submissions past it raise :class:`OverloadedError`
        (HTTP 503 + ``Retry-After`` at the API).  ``None`` is unbounded.
    """

    def __init__(self, *, shards: int = 8, journal: Journal | None = None,
                 rate: float | None = None, burst: float | None = None,
                 max_pending: int | None = None) -> None:
        if shards < 1:
            raise DefinitionError(f"shards must be >= 1, got {shards}")
        if max_pending is not None and max_pending < 1:
            raise DefinitionError(
                f"max_pending must be >= 1, got {max_pending}")
        self.shards = shards
        self.journal = journal
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self.max_pending = max_pending
        self.shed = 0
        self._lock = threading.Lock()
        # shard -> priority -> FIFO of QueuedJob (priority claims high-first)
        self._lanes: list[dict[int, list[QueuedJob]]] = [
            {} for _ in range(shards)]
        self._queued: dict[str, QueuedJob] = {}
        self._claimed: dict[str, QueuedJob] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._tenants: dict[str, TenantStats] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> TenantStats:
        return self._tenants.setdefault(tenant, TenantStats())

    def _throttled(self, tenant: str) -> bool:
        if self.rate is None:
            return False
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(self.rate,
                                                         self.burst)
        return not bucket.try_take()

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, *, tenant: str = "default",
               priority: int = 0, _journal: bool = True) -> QueuedJob:
        """Accept one job; durable once this returns.

        Idempotent per key: re-submitting a queued or claimed key
        returns the existing entry without a duplicate journal record.
        Raises :class:`ThrottledError` when the tenant's bucket is empty
        and :class:`OverloadedError` when the queue is at
        ``max_pending`` (both counted, never journalled — a refused job
        was never accepted).
        """
        key = spec.key
        with self._lock:
            existing = self._queued.get(key) or self._claimed.get(key)
            if existing is not None:
                return existing
            stats = self._tenant(tenant)
            if (self.max_pending is not None
                    and len(self._queued) >= self.max_pending):
                self.shed += 1
                raise OverloadedError(
                    f"queue is at max_pending={self.max_pending}; "
                    f"submission shed",
                    retry_after=max(0.1, 0.01 * self.max_pending))
            if self._throttled(tenant):
                stats.throttled += 1
                raise ThrottledError(
                    f"tenant {tenant!r} is over its rate limit "
                    f"({self.rate:g}/s, burst {self.burst:g})")
            self._seq += 1
            job = QueuedJob(spec, tenant, priority,
                            shard_of(key, self.shards), self._seq)
            if _journal and self.journal is not None:
                self.journal.append(accept_record(job))
            self._enqueue(job)
            stats.accepted += 1
            stats.depth += 1
            return job

    def _enqueue(self, job: QueuedJob) -> None:
        self._lanes[job.shard].setdefault(job.priority, []).append(job)
        self._queued[job.spec.key] = job

    # ------------------------------------------------------------------
    def claim(self, *, shard: int | None = None) -> QueuedJob | None:
        """Pop the next job (highest priority, FIFO within a lane).

        ``shard`` restricts the claim to one partition — how a fleet
        statically partitions work; ``None`` scans all shards in order.
        The job moves to the *claimed* set until :meth:`settle` (or
        :meth:`requeue_expired`) disposes of it.
        """
        with self._lock:
            shard_range: Iterable[int] = (
                range(self.shards) if shard is None else (shard,))
            best: QueuedJob | None = None
            for index in shard_range:
                lanes = self._lanes[index]
                for priority in sorted(lanes, reverse=True):
                    lane = lanes[priority]
                    if lane:
                        candidate = lane[0]
                        if (best is None
                                or candidate.priority > best.priority
                                or (candidate.priority == best.priority
                                    and candidate.seq < best.seq)):
                            best = candidate
                        break
            if best is None:
                return None
            lane = self._lanes[best.shard][best.priority]
            lane.pop(0)
            if not lane:
                del self._lanes[best.shard][best.priority]
            del self._queued[best.key]
            best.claimed_at = monotonic()
            self._claimed[best.key] = best
            return best

    def settle(self, key: str, status: str, *, error: str = "",
               payload: Mapping[str, Any] | None = None) -> None:
        """Record a claimed job's final status (journalled durably)."""
        with self._lock:
            job = self._claimed.pop(key, None)
            if job is None:
                job = self._queued.pop(key, None)
                if job is not None:  # settled without a claim (cache hit)
                    lane = self._lanes[job.shard].get(job.priority)
                    if lane is not None and job in lane:
                        lane.remove(job)
                        if not lane:
                            del self._lanes[job.shard][job.priority]
            if job is not None:
                stats = self._tenant(job.tenant)
                stats.settled += 1
                stats.depth -= 1
            if self.journal is not None:
                self.journal.append(settle_record(
                    key, status, error=error, payload=payload))

    def requeue_expired(self, lease_seconds: float) -> list[str]:
        """Return claimed-but-unsettled jobs older than the lease.

        The at-least-once safety valve for *remote* workers: a worker
        that claimed over HTTP and then died never settles, so its
        claims eventually re-enter the queue (exactly-once settlement is
        preserved by the content-addressed cache: a re-executed job
        produces the identical payload).
        """
        now = monotonic()
        requeued: list[str] = []
        with self._lock:
            for key, job in list(self._claimed.items()):
                if (job.claimed_at is not None
                        and now - job.claimed_at > lease_seconds):
                    del self._claimed[key]
                    job.claimed_at = None
                    self._enqueue(job)
                    requeued.append(key)
        return requeued

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._queued)

    def depth(self, *, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                return len(self._queued)
            return sum(1 for job in self._queued.values()
                       if job.tenant == tenant)

    def pending(self) -> list[QueuedJob]:
        """Queued jobs in claim order (snapshot)."""
        with self._lock:
            return sorted(self._queued.values(),
                          key=lambda job: (-job.priority, job.seq))

    def claimed(self) -> list[QueuedJob]:
        with self._lock:
            return sorted(self._claimed.values(), key=lambda job: job.seq)

    def stats(self) -> dict[str, Any]:
        """Queue observability: shard depths, tenant lanes, totals."""
        with self._lock:
            shard_depths = [0] * self.shards
            for job in self._queued.values():
                shard_depths[job.shard] += 1
            return {
                "shards": self.shards,
                "depth": len(self._queued),
                "claimed": len(self._claimed),
                "shard_depths": shard_depths,
                "tenants": {tenant: stats.as_dict()
                            for tenant, stats in sorted(
                                self._tenants.items())},
                "rate": self.rate,
                "burst": self.burst,
                "max_pending": self.max_pending,
                "shed": self.shed,
            }

    # ------------------------------------------------------------------
    def resume(self, path: str | Any) -> dict[str, dict[str, Any]]:
        """Rebuild queue state from a journal written by a dead server.

        Re-enqueues every accepted job without an ok settle (in original
        acceptance order, preserving tenant and priority) and returns
        ``key -> settle record`` for the ones that did settle ok, so the
        service can repopulate its result map.  Call before attaching
        the (re-opened, ``fresh=False``) journal's first new append.
        """
        accepts, settles = replay_queue_journal(path)
        with self._lock:
            for key, record in accepts.items():
                settle = settles.get(key)
                if settle is not None and settle.get("payload") is not None:
                    continue  # finished: nothing to redo
                if (key in self._queued or key in self._claimed):
                    continue
                self._seq += 1
                job = QueuedJob(JobSpec.from_dict(record["spec"]),
                                record.get("tenant", "default"),
                                record.get("priority", 0),
                                shard_of(key, self.shards), self._seq)
                self._enqueue(job)
                stats = self._tenant(job.tenant)
                stats.accepted += 1
                stats.depth += 1
        return {key: record for key, record in settles.items()
                if record.get("payload") is not None}


def replay_queue_journal(path) -> tuple[dict[str, dict[str, Any]],
                                        dict[str, dict[str, Any]]]:
    """Scan a queue journal: ``(accepts, settles)`` keyed by job key.

    Torn tails are repaired by :func:`read_journal`; within each map the
    latest record wins (re-acceptance after requeue, re-settle after a
    duplicate execution — both benign under content addressing).
    """
    accepts: dict[str, dict[str, Any]] = {}
    settles: dict[str, dict[str, Any]] = {}
    for record in read_journal(path):
        kind = record.get("type")
        if kind == ACCEPT_RECORD and "spec" in record:
            accepts[record["key"]] = record
        elif kind == "settle":
            settles[record["key"]] = record
    return accepts, settles
