"""Shared resilience primitives: seeded backoff, deadlines, Retry-After.

The batch engine has retried with capped full-jitter exponential
backoff since PR 5 — but the formula lived inline in
:meth:`ExecutionEngine._retry_delay
<repro.runtime.executor.ExecutionEngine>`, so every other component
that needed to wait (the service client polling a queue, a worker
re-probing a dead cache server) reinvented a fixed ``sleep``.  This
module names the engine's policy so all of them share it:

:class:`Backoff`
    The engine's seeded full-jitter schedule as a value: attempt ``n``
    waits uniformly in ``[0, min(cap, base · 2^(n-1))]``.  Seeding makes
    schedules reproducible in tests; the jitter matters at fleet scale —
    N clients blocked on the same token bucket or the same 503 must not
    re-arrive in lockstep (the thundering herd).
:class:`Deadline`
    A monotonic-clock budget for one *logical* operation spanning many
    attempts.  Distinct from a connect/read timeout: the timeout bounds
    one socket wait, the deadline bounds the whole retry loop, and the
    remaining budget travels to the server in the ``X-Repro-Deadline``
    header so an already-hopeless request is rejected before any work.
:func:`parse_retry_after`
    The ``Retry-After`` header (delay-seconds form) as a float, or
    ``None`` — how a load-shedding server names the polite re-arrival
    time and clients honor it instead of guessing.
"""

from __future__ import annotations

import random
from time import monotonic

from ..errors import DefinitionError

#: Header carrying a request's remaining deadline budget (seconds, float).
DEADLINE_HEADER = "X-Repro-Deadline"

#: Header a chaos proxy stamps on requests it tampered with (csv of kinds).
CHAOS_HEADER = "X-Repro-Chaos"


class Backoff:
    """Capped full-jitter exponential backoff with a seedable RNG.

    ``delay(n)`` draws uniformly from ``[0, min(cap, base · 2^(n-1))]``
    for attempt ``n >= 1`` — the "full jitter" variant, which spreads
    retries across the whole window instead of synchronising them at its
    edge.  ``seed=None`` is nondeterministic; tests pin it.

    The engine's historical schedule (no ceiling) is ``cap=None``.
    """

    def __init__(self, base: float = 0.05, *, cap: float | None = 2.0,
                 seed: int | None = None,
                 rng: random.Random | None = None) -> None:
        if base < 0:
            raise DefinitionError(f"backoff base must be >= 0, got {base}")
        if cap is not None and cap < 0:
            raise DefinitionError(f"backoff cap must be >= 0, got {cap}")
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random(seed)

    def ceiling(self, attempt: int, *, base: float | None = None) -> float:
        """The window ceiling for attempt ``attempt`` (>= 1)."""
        if attempt < 1:
            raise DefinitionError(f"attempt must be >= 1, got {attempt}")
        raw = (self.base if base is None else base) * (2 ** (attempt - 1))
        return raw if self.cap is None else min(self.cap, raw)

    def delay(self, attempt: int, *, base: float | None = None) -> float:
        """One jittered delay for attempt ``attempt`` (consumes the RNG)."""
        return self._rng.uniform(0.0, self.ceiling(attempt, base=base))


class Deadline:
    """Remaining wall-clock budget for one logical operation.

    ``None`` seconds means unbounded (``remaining()`` is ``inf`` and
    ``expired`` is never true).  ``clock`` is injectable for tests.
    """

    def __init__(self, seconds: float | None, *, clock=monotonic) -> None:
        self._clock = clock
        self.seconds = seconds
        self._at = None if seconds is None else clock() + seconds

    def remaining(self) -> float:
        if self._at is None:
            return float("inf")
        return self._at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: float) -> float:
        """``timeout`` bounded by the remaining budget (never below 0)."""
        return max(0.0, min(timeout, self.remaining()))


def parse_retry_after(value: str | None) -> float | None:
    """``Retry-After`` delay-seconds as a float; ``None`` when absent/odd.

    Only the delay-seconds form is parsed (the HTTP-date form would need
    wall-clock arithmetic no component here wants); negative values are
    treated as "retry now" (0.0).
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except (AttributeError, ValueError):
        return None
    return max(0.0, seconds)
