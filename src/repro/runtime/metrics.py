"""Per-job and fleet-level statistics for the batch engine.

Every :class:`~repro.runtime.executor.JobResult` carries its own queue
and run wall times plus retry/timeout flags; :class:`FleetMetrics`
aggregates them across a batch — throughput, retries, timeouts, pool
resets, cache hit rate — and folds every simulate job's
:class:`~repro.semantics.profile.SimMetrics` into one fleet-wide record
(:func:`aggregate_sim_metrics`), so a zoo-wide sweep reports the same
observability a single ``simulate --profile`` run does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..semantics.profile import SimMetrics

#: SimMetrics counters summed during aggregation (wall times included:
#: the aggregate reports total simulator effort across the fleet).
_SUMMED_FIELDS = (
    "steps", "firings", "port_evaluations", "dirty_evaluations",
    "full_passes", "incremental_passes", "combinational_seconds",
    "control_seconds", "wall_seconds",
)


def aggregate_sim_metrics(records: Iterable[Mapping | SimMetrics]
                          ) -> SimMetrics:
    """Fold many per-run metrics into one fleet-wide :class:`SimMetrics`.

    Counter fields are summed, ``peak_marked_places`` is the maximum,
    cache hit/miss maps are merged key-wise, and ``fast_path`` is true
    only when every run used the fast path.
    """
    total = SimMetrics()
    seen_any = False
    for record in records:
        metrics = (record if isinstance(record, SimMetrics)
                   else SimMetrics.from_dict(dict(record)))
        if not seen_any:
            total.fast_path = metrics.fast_path
            seen_any = True
        else:
            total.fast_path = total.fast_path and metrics.fast_path
        for name in _SUMMED_FIELDS:
            setattr(total, name, getattr(total, name) + getattr(metrics, name))
        total.peak_marked_places = max(total.peak_marked_places,
                                       metrics.peak_marked_places)
        for name, count in metrics.cache_hits.items():
            total.cache_hits[name] = total.cache_hits.get(name, 0) + count
        for name, count in metrics.cache_misses.items():
            total.cache_misses[name] = total.cache_misses.get(name, 0) + count
    return total


@dataclass
class FleetMetrics:
    """What one :meth:`ExecutionEngine.run` batch did, in aggregate."""

    workers: int = 0
    jobs: int = 0
    succeeded: int = 0
    failed: int = 0
    cached: int = 0
    replayed: int = 0          # answered from a write-ahead journal
    quarantined: int = 0       # poison keys pulled out of rotation
    interrupted_jobs: int = 0  # unfinished when the batch was stopped
    dispatched: int = 0        # worker executions actually attempted
    retries: int = 0
    timeouts: int = 0
    pool_resets: int = 0       # pool rebuilds after a crash or timeout
    hangs_detected: int = 0    # workers SIGKILLed by the watchdog
    breaker_tripped: bool = False
    interrupted: bool = False  # batch stopped before every job finished
    degraded_to_serial: bool = False
    quarantined_keys: list[str] = field(default_factory=list)
    queue_seconds: float = 0.0  # summed per-job time waiting for a worker
    run_seconds: float = 0.0    # summed per-job execution wall time
    wall_seconds: float = 0.0   # end-to-end batch wall time
    sim: SimMetrics = field(default_factory=SimMetrics)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.jobs if self.jobs else 0.0

    @property
    def jobs_per_second(self) -> float:
        return self.jobs / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def record(self, result: "JobResult") -> None:
        """Fold one finished job into the aggregate."""
        self.jobs += 1
        if result.status == "cached":
            self.cached += 1
        elif result.status == "replayed":
            self.replayed += 1
        elif result.status == "ok":
            self.succeeded += 1
        elif result.status == "quarantined":
            self.quarantined += 1
        elif result.status == "interrupted":
            self.interrupted_jobs += 1
        else:
            self.failed += 1
        self.dispatched += result.attempts
        self.retries += max(result.attempts - 1, 0)
        if result.timed_out:
            self.timeouts += 1
        self.queue_seconds += result.queue_seconds
        self.run_seconds += result.run_seconds
        if result.sim_metrics:
            self.sim = aggregate_sim_metrics([self.sim, result.sim_metrics])

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "cached": self.cached,
            "replayed": self.replayed,
            "quarantined": self.quarantined,
            "interrupted_jobs": self.interrupted_jobs,
            "dispatched": self.dispatched,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_resets": self.pool_resets,
            "hangs_detected": self.hangs_detected,
            "breaker_tripped": self.breaker_tripped,
            "interrupted": self.interrupted,
            "degraded_to_serial": self.degraded_to_serial,
            "quarantined_keys": list(self.quarantined_keys),
            "cache_hit_rate": self.cache_hit_rate,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second": self.jobs_per_second,
            "sim": self.sim.as_dict(),
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Multi-line human-readable fleet report."""
        mode = ("serial (degraded)" if self.degraded_to_serial
                else "serial" if self.workers == 0
                else f"{self.workers} worker(s)")
        lines = [
            f"fleet ({mode}):",
            f"  jobs                 {self.jobs}"
            f" ({self.succeeded} ok / {self.failed} failed"
            f" / {self.cached} cached)",
            f"  worker dispatches    {self.dispatched}"
            f" ({self.retries} retried, {self.timeouts} timed out)",
            f"  pool resets          {self.pool_resets}",
        ]
        if self.replayed:
            lines.append(f"  journal replays      {self.replayed}")
        if self.quarantined:
            lines.append(f"  quarantined          {self.quarantined}"
                         f" ({', '.join(self.quarantined_keys)})")
        if self.hangs_detected:
            lines.append(f"  hung workers killed  {self.hangs_detected}")
        if self.breaker_tripped:
            lines.append("  circuit breaker      TRIPPED (degraded to serial)")
        if self.interrupted:
            lines.append(f"  INTERRUPTED          {self.interrupted_jobs}"
                         f" job(s) unfinished")
        lines += [
            f"  cache hit rate       {self.cache_hit_rate:.1%}",
            f"  queue time (sum)     {self.queue_seconds * 1e3:.2f} ms",
            f"  run time (sum)       {self.run_seconds * 1e3:.2f} ms",
            f"  batch wall time      {self.wall_seconds * 1e3:.2f} ms"
            f" ({self.jobs_per_second:.1f} jobs/s)",
        ]
        if self.sim.steps:
            lines.append("  aggregated simulation metrics:")
            lines.extend("  " + line for line in
                         self.sim.summary().splitlines()[1:])
        return "\n".join(lines)
