"""On-disk content-addressed result store.

Each entry is one file named after the job's content-addressed key
(sharded by the first two hex digits to keep directories small) holding
the canonical JSON of the job's deterministic payload plus a small
self-describing envelope.  Because the key hashes the *inputs* (engine
version, kind, canonical system, params) and the payload is a pure
function of those inputs, a hit can be returned without re-execution:
re-running a sweep with one changed design re-executes only that design.

Writes are atomic *and durable* (temp file + fsync + ``os.replace`` +
parent-directory fsync, via :func:`~repro.runtime.durable.
atomic_write_text`) so neither a killed worker nor a power cut can leave
a torn entry, and corrupt or mismatched entries are treated as misses
rather than errors.

For unattended long-running stores (the execution service's shared
backend), the cache can be **bounded**: construct with ``max_bytes``
and/or ``max_entries`` and :meth:`put` periodically evicts the
least-recently-used entries (hits refresh an entry's mtime, so recency
survives process restarts).  :meth:`prune` is also callable directly —
``repro cache prune`` — and is safe under concurrent readers and
writers: eviction is per-entry ``unlink``, which is atomic, so a racing
reader sees either the intact entry or a plain miss, never a torn file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from .durable import atomic_write_text
from .jobs import ENGINE_VERSION, canonical_json

_ENTRY_FORMAT = 1

#: With eviction limits set, every Nth write triggers an automatic prune
#: (a full scan per write would make put O(cache size)).
_AUTO_PRUNE_INTERVAL = 64


class ResultCache:
    """Content-addressed payload store rooted at ``root``.

    ``max_bytes`` / ``max_entries`` (optional) bound the store; when
    either bound is exceeded, the least-recently-used entries are
    evicted (see :meth:`prune`).  Unbounded by default.
    """

    def __init__(self, root: str | os.PathLike, *,
                 max_bytes: int | None = None,
                 max_entries: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    @property
    def bounded(self) -> bool:
        return self.max_bytes is not None or self.max_entries is not None

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="ascii") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (entry.get("format") != _ENTRY_FORMAT
                or entry.get("engine") != ENGINE_VERSION
                or entry.get("key") != key):
            self.misses += 1
            return None
        self.hits += 1
        if self.bounded:
            # refresh recency so LRU eviction spares hot entries; only
            # when bounded, so the unbounded read path stays write-free
            try:
                os.utime(path)
            except OSError:
                pass
        return entry["payload"]

    def put(self, key: str, kind: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically and durably."""
        entry = canonical_json({
            "format": _ENTRY_FORMAT,
            "engine": ENGINE_VERSION,
            "key": key,
            "kind": kind,
            "payload": payload,
        })
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, entry, encoding="ascii")
        self.writes += 1
        if self.bounded and self.writes % _AUTO_PRUNE_INTERVAL == 0:
            self.prune()

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    def _scan(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every entry; racing deletions skipped."""
        entries: list[tuple[float, int, Path]] = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def stats(self) -> dict[str, Any]:
        """Entry count and total bytes (plus the configured bounds)."""
        entries = self._scan()
        return {
            "entries": len(entries),
            "bytes": sum(size for _mtime, size, _path in entries),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def prune(self, *, max_bytes: int | None = None,
              max_entries: int | None = None) -> int:
        """Evict least-recently-used entries until under the bounds.

        Bounds default to the constructor's; explicit arguments override
        (``repro cache prune`` passes them directly).  Returns how many
        entries were removed.  Safe under concurrency: each eviction is
        one atomic ``unlink``, an entry that vanished mid-scan is simply
        skipped, and a concurrent ``put`` of an evicted key just
        recreates it.
        """
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = (max_entries if max_entries is not None
                       else self.max_entries)
        if max_bytes is None and max_entries is None:
            return 0
        entries = sorted(self._scan())  # oldest mtime first
        total_bytes = sum(size for _mtime, size, _path in entries)
        count = len(entries)
        removed = 0
        for _mtime, size, path in entries:
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            over_count = max_entries is not None and count > max_entries
            if not over_bytes and not over_count:
                break
            try:
                path.unlink()
            except OSError:
                continue  # a concurrent prune/clear got there first
            removed += 1
            total_bytes -= size
            count -= 1
        self.evictions += removed
        return removed

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
