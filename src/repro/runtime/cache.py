"""On-disk content-addressed result store.

Each entry is one file named after the job's content-addressed key
(sharded by the first two hex digits to keep directories small) holding
the canonical JSON of the job's deterministic payload plus a small
self-describing envelope.  Because the key hashes the *inputs* (engine
version, kind, canonical system, params) and the payload is a pure
function of those inputs, a hit can be returned without re-execution:
re-running a sweep with one changed design re-executes only that design.

Writes are atomic *and durable* (temp file + fsync + ``os.replace`` +
parent-directory fsync, via :func:`~repro.runtime.durable.
atomic_write_text`) so neither a killed worker nor a power cut can leave
a torn entry, and corrupt or mismatched entries are treated as misses
rather than errors.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from .durable import atomic_write_text
from .jobs import ENGINE_VERSION, canonical_json

_ENTRY_FORMAT = 1


class ResultCache:
    """Content-addressed payload store rooted at ``root``."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="ascii") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (entry.get("format") != _ENTRY_FORMAT
                or entry.get("engine") != ENGINE_VERSION
                or entry.get("key") != key):
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, kind: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically and durably."""
        entry = canonical_json({
            "format": _ENTRY_FORMAT,
            "engine": ENGINE_VERSION,
            "key": key,
            "kind": kind,
            "payload": payload,
        })
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, entry, encoding="ascii")
        self.writes += 1

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
